"""Tests for the baseline implementations (static matrix, Launois damping, landmarks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.landmark import LandmarkEmbedding
from repro.baselines.launois import LaunoisConfig, LaunoisVivaldiNode
from repro.baselines.static_matrix import StaticMatrixExperiment
from repro.core.coordinate import Coordinate
from repro.latency.matrix import LatencyMatrix
from repro.latency.topology import GeographicTopology


@pytest.fixture(scope="module")
def matrix() -> LatencyMatrix:
    return LatencyMatrix.from_topology(GeographicTopology.generate(14, seed=9))


class TestStaticMatrixExperiment:
    def test_converges_to_low_error_on_fixed_input(self, matrix):
        """The original-paper idealisation: Vivaldi works beautifully on a matrix."""
        experiment = StaticMatrixExperiment(matrix, seed=0)
        result = experiment.run(rounds=400)
        assert result.median_relative_error < 0.25
        assert result.rounds == 400

    def test_more_rounds_do_not_hurt(self, matrix):
        experiment = StaticMatrixExperiment(matrix, seed=0)
        early = experiment.run(rounds=50)
        late = experiment.evaluate() if experiment.run(rounds=350) is None else experiment.evaluate()
        assert late.median_relative_error <= early.median_relative_error * 1.5

    def test_requires_positive_rounds(self, matrix):
        with pytest.raises(ValueError):
            StaticMatrixExperiment(matrix).run(rounds=0)

    def test_evaluate_reports_percentiles(self, matrix):
        experiment = StaticMatrixExperiment(matrix, seed=1)
        experiment.run(rounds=100)
        result = experiment.evaluate()
        assert result.median_relative_error <= result.p95_relative_error


class TestLaunoisVivaldi:
    def test_damping_factor_decays_toward_zero(self):
        node = LaunoisVivaldiNode("n", LaunoisConfig(decay_constant=10.0))
        initial = node.damping_factor()
        for _ in range(100):
            node.observe("peer", Coordinate([50.0, 0.0, 0.0]), 0.5, 50.0)
        assert initial == 1.0
        assert node.damping_factor() < 0.1

    def test_updates_shrink_over_time(self):
        node = LaunoisVivaldiNode("n", LaunoisConfig(decay_constant=5.0))
        peer = Coordinate([50.0, 0.0, 0.0])
        node.observe("peer", peer, 0.5, 100.0)
        early_position = node.system_coordinate
        for _ in range(200):
            node.observe("peer", peer, 0.5, 100.0)
        before = node.system_coordinate
        node.observe("peer", peer, 0.5, 500.0)  # a big change late in life
        after = node.system_coordinate
        assert after.euclidean_distance(before) < early_position.euclidean_distance(
            Coordinate.origin(3)
        )

    def test_adapts_more_slowly_than_undamped_vivaldi(self):
        """The trade-off the paper criticises: damped nodes go stale after a route change."""
        from repro.core.vivaldi import VivaldiConfig, VivaldiState, vivaldi_update

        damped = LaunoisVivaldiNode("d", LaunoisConfig(decay_constant=20.0))
        plain = VivaldiState.initial(VivaldiConfig())
        peer = Coordinate([50.0, 0.0, 0.0])
        for _ in range(500):
            damped.observe("peer", peer, 0.2, 60.0)
            plain = vivaldi_update(plain, peer, 0.2, 60.0, VivaldiConfig())
        # The true latency doubles (a route change); both see 30 new samples.
        for _ in range(30):
            damped.observe("peer", peer, 0.2, 120.0)
            plain = vivaldi_update(plain, peer, 0.2, 120.0, VivaldiConfig())
        damped_error = abs(damped.system_coordinate.euclidean_distance(peer) - 120.0)
        plain_error = abs(plain.coordinate.euclidean_distance(peer) - 120.0)
        assert damped_error > plain_error

    def test_reset(self):
        node = LaunoisVivaldiNode("n")
        node.observe("peer", Coordinate([10.0, 0.0, 0.0]), 0.5, 10.0)
        node.reset()
        assert node.system_coordinate.is_origin()
        assert node.observation_count == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LaunoisConfig(decay_constant=0.0)


class TestLandmarkEmbedding:
    def test_fit_assigns_coordinates_to_every_node(self, matrix):
        embedding = LandmarkEmbedding(matrix, landmark_count=6, seed=0)
        coordinates = embedding.fit()
        assert set(coordinates) == set(matrix.node_ids)
        assert len(embedding.landmarks) == 6

    def test_embedding_error_is_reasonable(self, matrix):
        embedding = LandmarkEmbedding(matrix, landmark_count=8, seed=0)
        embedding.fit()
        summary = embedding.evaluate()
        assert summary["median_relative_error"] < 0.5

    def test_evaluate_requires_fit(self, matrix):
        with pytest.raises(RuntimeError):
            LandmarkEmbedding(matrix, landmark_count=6).evaluate()

    def test_landmark_count_validation(self, matrix):
        with pytest.raises(ValueError):
            LandmarkEmbedding(matrix, landmark_count=2, dimensions=3)
        with pytest.raises(ValueError):
            LandmarkEmbedding(matrix, landmark_count=1000)
