"""Tests for the per-figure experiment modules (run at tiny scale).

Each test runs the experiment at a deliberately small scale and checks the
*qualitative* property the paper's figure demonstrates, not exact numbers:
the workloads are synthetic and scaled down, so absolute values differ, but
who wins and in which direction must match the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    fig02_raw_histogram,
    fig03_single_link,
    fig04_history_size,
    fig05_filter_cdfs,
    fig06_confidence,
    fig07_drift,
    fig08_threshold_sweep,
    fig09_window_sweep,
    fig10_heuristic_compare,
    fig11_app_vs_raw,
    fig12_app_centroid,
    fig13_deployment_cdfs,
    fig14_timeseries,
    table1_ewma,
)


class TestRegistry:
    def test_every_paper_experiment_is_registered(self):
        expected = {
            "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "table1",
        }
        assert set(EXPERIMENTS) == expected

    def test_registry_entries_are_callable(self):
        assert all(callable(run) for run in EXPERIMENTS.values())


class TestFig02:
    def test_heavy_tail_fraction_matches_paper_magnitude(self):
        result = fig02_raw_histogram.run(nodes=10, duration_s=240.0, seed=1)
        assert 0.0005 < result.fraction_above_1s < 0.03
        assert result.total_samples == sum(count for _, count in result.buckets)
        assert "Figure 2" in fig02_raw_histogram.format_report(result)


class TestFig03:
    def test_single_link_outliers_spread_over_time(self):
        result = fig03_single_link.run(nodes=10, duration_s=2400.0, seed=1)
        assert result.spread_ratio > 5.0
        quarters_with_outliers = sum(1 for count in result.outliers_per_quarter if count > 0)
        assert quarters_with_outliers >= 3
        assert "Figure 3" in fig03_single_link.format_report(result)


class TestFig04:
    def test_short_histories_are_near_optimal(self):
        result = fig04_history_size.run(
            nodes=10, links=12, samples_per_link=300, history_sizes=(1, 4, 32), seed=1
        )
        medians = {h: s.median for h, s in result.summaries.items()}
        # h=1 (no real filtering) is clearly worse than h=4; h=4 is within
        # 20% of anything larger (the paper: longer histories don't help).
        assert medians[1] > medians[4]
        assert medians[4] <= medians[32] * 1.2
        assert "Figure 4" in fig04_history_size.format_report(result)


class TestFig05:
    def test_mp_filter_improves_error_and_stability(self):
        result = fig05_filter_cdfs.run(nodes=10, duration_s=600.0, seed=1)
        assert result.median_error_improvement > 0.2
        assert result.instability_improvement > 0.3
        assert result.tail_reduction_factor > 2.0
        assert "Figure 5" in fig05_filter_cdfs.format_report(result)


class TestTable1:
    def test_mp_beats_no_filter_and_large_alpha_ewma_is_worse(self):
        result = table1_ewma.run(nodes=10, duration_s=600.0, seed=1)
        mp = result.row("MP Filter")
        raw = result.row("No Filter")
        ewma_20 = result.row("EWMA a=0.20")
        assert mp.median_relative_error < raw.median_relative_error
        assert mp.instability < raw.instability
        assert ewma_20.median_relative_error > mp.median_relative_error
        assert "Table I" in table1_ewma.format_report(result)


class TestFig06:
    def test_confidence_building_keeps_confidence_high(self):
        result = fig06_confidence.run(duration_s=180.0, seed=1)
        with_margin = result.steady_state_confidence["Confidence Building"]
        without_margin = result.steady_state_confidence["No Confidence Building"]
        assert with_margin > 0.9
        assert with_margin > without_margin + 0.1
        assert "Figure 6" in fig06_confidence.format_report(result)


class TestFig07:
    def test_coordinates_keep_moving_on_a_changing_network(self):
        result = fig07_drift.run(nodes=12, duration_s=1200.0, seed=1, snapshot_interval_s=60.0)
        assert result.tracked
        assert result.mean_net_displacement() > 1.0
        assert "Figure 7" in fig07_drift.format_report(result)


class TestFig08:
    def test_stability_improves_with_threshold(self):
        result = fig08_threshold_sweep.run(
            nodes=8,
            duration_s=400.0,
            seed=1,
            window_size=8,
            energy_thresholds=(1.0, 64.0),
            relative_thresholds=(0.1, 0.9),
        )
        assert result.energy_rows[-1]["instability"] <= result.energy_rows[0]["instability"]
        assert result.relative_rows[-1]["instability"] <= result.relative_rows[0]["instability"]
        assert "Figure 8" in fig08_threshold_sweep.format_report(result)


class TestFig09:
    def test_window_sweep_produces_rows_per_size(self):
        result = fig09_window_sweep.run(
            nodes=8, duration_s=400.0, seed=1, window_sizes=(4, 16)
        )
        assert [row["window_size"] for row in result.energy_rows] == [4, 16]
        assert all(row["instability"] >= 0.0 for row in result.relative_rows)
        assert "Figure 9" in fig09_window_sweep.format_report(result)


class TestFig10:
    def test_windowless_heuristics_lose_accuracy_at_large_thresholds(self):
        result = fig10_heuristic_compare.run(
            nodes=8,
            duration_s=400.0,
            seed=1,
            window_size=8,
            ms_thresholds=(1.0, 256.0),
            energy_thresholds=(8.0,),
            relative_thresholds=(0.3,),
        )
        application = result.rows["Application"]
        # With a huge threshold the application coordinate goes stale: error rises.
        assert application[-1]["median_relative_error"] > application[0]["median_relative_error"]
        assert "Figure 10" in fig10_heuristic_compare.format_report(result)


class TestFig11:
    def test_window_heuristics_keep_accuracy_and_gain_stability(self):
        result = fig11_app_vs_raw.run(nodes=10, duration_s=600.0, seed=1)
        raw_instability = result.median_instability_by_config["Raw MP Filter"]
        energy_instability = result.median_instability_by_config["Energy+MP Filter"]
        assert energy_instability < raw_instability
        raw_error = result.median_error_by_config["Raw MP Filter"]
        energy_error = result.median_error_by_config["Energy+MP Filter"]
        assert energy_error < raw_error * 2.0
        assert "Figure 11" in fig11_app_vs_raw.format_report(result)


class TestFig12:
    def test_centroid_variant_is_more_stable_than_plain_application(self):
        result = fig12_app_centroid.run(
            nodes=8, duration_s=400.0, seed=1, thresholds=(4.0, 64.0), window_size=8
        )
        for centroid_row, application_row in zip(result.centroid_rows, result.application_rows):
            assert centroid_row["instability"] <= application_row["instability"] * 1.5
        assert "Figure 12" in fig12_app_centroid.format_report(result)


class TestFig13:
    def test_deployment_comparison_reproduces_headline_direction(self):
        result = fig13_deployment_cdfs.run(nodes=16, duration_s=1500.0, seed=1)
        assert result.fraction_error_above_1["Raw MP Filter"] <= result.fraction_error_above_1[
            "Raw No Filter"
        ]
        assert result.instability_improvement_percent > 50.0
        assert result.energy_below_raw_min_fraction > 0.5
        assert "Figure 13" in fig13_deployment_cdfs.format_report(result)


class TestFig14:
    def test_time_series_shows_convergence(self):
        result = fig14_timeseries.run(nodes=12, duration_s=1500.0, interval_s=300.0, seed=1)
        series = result.series["Energy+MP Filter"]
        assert len(series) == 5
        finite = [row["median_relative_error"] for row in series if np.isfinite(row["median_relative_error"])]
        # Error in the final interval is no worse than in the first.
        assert finite[-1] <= finite[0] * 1.5
        assert "Figure 14" in fig14_timeseries.format_report(result)
