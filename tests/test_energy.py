"""Tests for the Szekely-Rizzo energy distance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinate import Coordinate
from repro.core.energy import (
    energy_distance,
    energy_distance_arrays,
    energy_distance_coordinates_naive,
    energy_test_statistic,
    pairwise_mean_distance,
)

points_3d = st.lists(
    st.lists(
        st.floats(min_value=-1000, max_value=1000, allow_nan=False), min_size=3, max_size=3
    ),
    min_size=2,
    max_size=12,
)


def _coords(points):
    return [Coordinate(p) for p in points]


class TestPairwiseMeanDistance:
    def test_single_point_is_zero(self):
        assert pairwise_mean_distance([Coordinate([1.0, 2.0])]) == 0.0

    def test_two_points(self):
        points = [Coordinate([0.0, 0.0]), Coordinate([3.0, 4.0])]
        # n^2 = 4 ordered pairs: two zero self-pairs and two pairs at distance 5.
        assert pairwise_mean_distance(points) == pytest.approx(10.0 / 4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pairwise_mean_distance([])


class TestEnergyDistance:
    def test_identical_samples_have_zero_distance(self):
        sample = _coords([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [2.0, 0.0, 1.0]])
        assert energy_distance(sample, sample) == pytest.approx(0.0, abs=1e-9)

    def test_separated_clusters_have_large_distance(self):
        near = _coords([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        far = _coords([[100.0, 100.0, 100.0], [101.0, 100.0, 100.0], [100.0, 101.0, 100.0]])
        assert energy_distance(near, far) > 100.0

    def test_distance_grows_with_separation(self):
        base = _coords([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        closer = _coords([[5.0, 0.0, 0.0], [6.0, 0.0, 0.0]])
        farther = _coords([[50.0, 0.0, 0.0], [51.0, 0.0, 0.0]])
        assert energy_distance(base, farther) > energy_distance(base, closer)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            energy_distance([], _coords([[0.0, 0.0, 0.0]]))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            energy_distance(_coords([[0.0, 0.0]]), _coords([[0.0, 0.0, 0.0]]))

    def test_matches_naive_reference_implementation(self):
        rng = np.random.default_rng(3)
        a = _coords(rng.normal(size=(8, 3)).tolist())
        b = _coords(rng.normal(loc=2.0, size=(6, 3)).tolist())
        assert energy_distance(a, b) == pytest.approx(
            energy_distance_coordinates_naive(a, b), rel=1e-9
        )

    def test_array_and_coordinate_versions_agree(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(10, 3))
        b = rng.normal(loc=1.0, size=(7, 3))
        from_arrays = energy_distance_arrays(a, b)
        from_coords = energy_distance(_coords(a.tolist()), _coords(b.tolist()))
        assert from_arrays == pytest.approx(from_coords, rel=1e-9)

    def test_one_dimensional_arrays_accepted(self):
        a = np.array([0.0, 1.0, 2.0])
        b = np.array([10.0, 11.0, 12.0])
        assert energy_distance_arrays(a, b) > 0.0

    @given(points_3d, points_3d)
    @settings(max_examples=40, deadline=None)
    def test_non_negative(self, a, b):
        assert energy_distance(_coords(a), _coords(b)) >= 0.0

    @given(points_3d, points_3d)
    @settings(max_examples=40, deadline=None)
    def test_symmetric(self, a, b):
        ca, cb = _coords(a), _coords(b)
        assert energy_distance(ca, cb) == pytest.approx(energy_distance(cb, ca), rel=1e-6, abs=1e-6)

    @given(points_3d)
    @settings(max_examples=30, deadline=None)
    def test_translation_invariant(self, a):
        ca = _coords(a)
        shifted = [Coordinate([x + 17.0 for x in p]) for p in a]
        other = _coords([[0.0, 0.0, 0.0], [5.0, 5.0, 5.0]])
        shifted_other = [Coordinate([x + 17.0 for x in p.components]) for p in other]
        assert energy_distance(ca, other) == pytest.approx(
            energy_distance(shifted, shifted_other), rel=1e-6, abs=1e-6
        )

    @given(points_3d, points_3d, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_scales_linearly_with_the_space(self, a, b, scale):
        """Energy distance is homogeneous of degree 1 in the coordinates."""
        ca, cb = _coords(a), _coords(b)
        scaled_a = [Coordinate([x * scale for x in p]) for p in a]
        scaled_b = [Coordinate([x * scale for x in p]) for p in b]
        assert energy_distance(scaled_a, scaled_b) == pytest.approx(
            scale * energy_distance(ca, cb), rel=1e-6, abs=1e-6
        )


class TestEnergyTestStatistic:
    def test_unnormalised_equals_energy_distance(self):
        a = _coords([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        b = _coords([[10.0, 0.0, 0.0], [11.0, 0.0, 0.0]])
        assert energy_test_statistic(a, b) == pytest.approx(energy_distance(a, b))

    def test_normalised_is_scale_free(self):
        a = _coords([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        b = _coords([[10.0, 0.0, 0.0], [11.0, 0.0, 0.0], [10.0, 1.0, 0.0]])
        scaled_a = [Coordinate([x * 7 for x in p.components]) for p in a]
        scaled_b = [Coordinate([x * 7 for x in p.components]) for p in b]
        assert energy_test_statistic(a, b, normalise=True) == pytest.approx(
            energy_test_statistic(scaled_a, scaled_b, normalise=True), rel=1e-6
        )

    def test_normalised_handles_degenerate_spread(self):
        a = _coords([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        b = _coords([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        assert energy_test_statistic(a, b, normalise=True) == 0.0
