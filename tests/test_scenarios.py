"""Tests for the declarative scenario layer (spec, grid, registry, library).

Includes the equivalence suite pinning the ported scenarios to their
legacy experiment paths: the same universe and configuration must produce
the same numbers whether driven by a ``fig*`` module or by a spec.
"""

from __future__ import annotations

import re
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.analysis.experiments import EXPERIMENTS, fig07_drift, fig13_deployment_cdfs
from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
from repro.engine import run_scenario
from repro.netsim.churn import ChurnConfig
from repro.netsim.runner import SimulationConfig, run_simulation
from repro.scenarios import (
    ChurnSpec,
    NetworkSpec,
    ScenarioError,
    ScenarioGrid,
    ScenarioSpec,
    WorkloadSpec,
    get_scenario,
    iter_scenarios,
    scenario_names,
)


def _with(spec: ScenarioSpec, **overrides) -> ScenarioSpec:
    """A copy of ``spec`` with top-level fields overridden."""
    return ScenarioSpec.from_dict({**spec.to_dict(), **overrides})


def _scaled(spec: ScenarioSpec, nodes: int, duration_s: float) -> ScenarioSpec:
    payload = spec.to_dict()
    payload["network"] = {**payload["network"], "nodes": nodes}
    payload["duration_s"] = duration_s
    return ScenarioSpec.from_dict(payload)


class TestScenarioSpecValidation:
    def test_valid_spec_constructs(self):
        spec = ScenarioSpec(name="ok", duration_s=100.0)
        assert spec.resolved_measurement_start_s() == 50.0

    def test_reports_all_errors_at_once_with_name(self):
        with pytest.raises(ScenarioError) as excinfo:
            ScenarioSpec(
                name="broken",
                mode="teleport",
                duration_s=-1.0,
                network=NetworkSpec(nodes=1),
            )
        message = str(excinfo.value)
        assert "scenario 'broken'" in message
        assert "mode must be" in message
        assert "duration_s must be positive" in message
        assert "network.nodes must be >= 2" in message

    def test_churn_requires_simulate_mode(self):
        with pytest.raises(ScenarioError, match="churn requires mode='simulate'"):
            ScenarioSpec(name="x", mode="replay", churn=ChurnSpec())

    def test_drift_workload_requires_replay(self):
        with pytest.raises(ScenarioError, match="drift workload requires mode='replay'"):
            ScenarioSpec(name="x", mode="simulate", workload=WorkloadSpec(kind="drift"))

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ScenarioError, match="workload.kind"):
            ScenarioSpec(name="x", workload=WorkloadSpec(kind="rendering"))

    def test_unknown_workload_param_rejected(self):
        with pytest.raises(ScenarioError, match="unknown parameters"):
            ScenarioSpec(name="x", workload=WorkloadSpec(kind="knn", params={"kk": 3}))

    def test_preset_or_explicit_config_required(self):
        with pytest.raises(ScenarioError, match="either a preset"):
            ScenarioSpec(name="x", preset=None)

    def test_unknown_heavy_tail_parameter_rejected(self):
        with pytest.raises(ScenarioError, match="heavy_tail"):
            ScenarioSpec(name="x", network=NetworkSpec(heavy_tail={"tail": 1.0}))


class TestScenarioSpecSerialisation:
    def test_round_trip(self):
        spec = get_scenario("churn-ablation-warmup2")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ScenarioError, match="unknown fields"):
            ScenarioSpec.from_dict({"name": "x", "velocity": 3})

    def test_hash_ignores_name_description_and_seed(self):
        spec = ScenarioSpec(name="a", description="one", seed=1)
        other = ScenarioSpec(name="b", description="two", seed=2)
        assert spec.spec_hash() == other.spec_hash()

    def test_hash_changes_with_content(self):
        spec = ScenarioSpec(name="a")
        other = _with(spec, duration_s=spec.duration_s + 1.0)
        assert spec.spec_hash() != other.spec_hash()

    def test_node_config_preset_with_overrides(self):
        spec = ScenarioSpec(
            name="x",
            preset="mp_energy",
            heuristic_kind="energy",
            heuristic_params={"threshold": 4.0, "window_size": 16},
        )
        config = spec.node_config()
        assert config.filter.kind == "mp"
        assert config.heuristic.params["threshold"] == 4.0

    def test_resolved_expands_preset(self):
        resolved = get_scenario("fig07-drift").resolved()
        assert resolved.preset is None
        assert resolved.filter_kind == "mp"
        assert resolved.node_config() == get_scenario("fig07-drift").node_config()


class TestScenarioGrid:
    def test_cartesian_expansion_and_naming(self):
        base = ScenarioSpec(name="base", preset="mp_energy")
        cells = ScenarioGrid(base).sweep(window=(16, 32), threshold=(4.0, 8.0))
        assert [cell.name for cell in cells] == [
            "base[window=16,threshold=4]",
            "base[window=16,threshold=8]",
            "base[window=32,threshold=4]",
            "base[window=32,threshold=8]",
        ]
        assert {cell.heuristic_params["window_size"] for cell in cells} == {16, 32}
        # Sweeping heuristic params resolves the preset but keeps its filter.
        assert all(cell.filter_kind == "mp" for cell in cells)

    def test_dotted_paths_and_scalar_values(self):
        base = ScenarioSpec(name="base")
        cells = ScenarioGrid(base).sweep(**{"network.nodes": (8, 16), "duration": 300.0})
        assert [cell.network.nodes for cell in cells] == [8, 16]
        assert all(cell.duration_s == 300.0 for cell in cells)

    def test_fixed_seed_policy_shares_the_universe(self):
        base = ScenarioSpec(name="base", seed=7)
        cells = ScenarioGrid(base).sweep(window=(16, 32))
        assert [cell.seed for cell in cells] == [7, 7]

    def test_per_cell_seed_policy_derives_distinct_seeds(self):
        base = ScenarioSpec(name="base", seed=7, seed_policy="per_cell")
        cells = ScenarioGrid(base).sweep(window=(16, 32))
        assert cells[0].seed != cells[1].seed
        # ... deterministically.
        again = ScenarioGrid(base).sweep(window=(16, 32))
        assert [c.seed for c in again] == [c.seed for c in cells]

    def test_invalid_axis_path_is_readable(self):
        base = ScenarioSpec(name="base")
        with pytest.raises(ScenarioError, match="churn.*not a nested mapping"):
            ScenarioGrid(base).sweep(churning_fraction=(0.1, 0.2))

    def test_empty_axis_rejected(self):
        with pytest.raises(ScenarioError, match="no values"):
            ScenarioGrid(ScenarioSpec(name="base")).sweep(window=())

    def test_no_axes_returns_base(self):
        base = ScenarioSpec(name="base")
        assert ScenarioGrid(base).sweep() == [base]


class TestRegistry:
    def test_library_scenarios_registered(self):
        names = scenario_names()
        for expected in (
            "fig07-drift",
            "fig13-deployment-mp-energy",
            "churn-ablation-warmup1",
            "churn-ablation-warmup2",
            "planetlab-churn-30pct",
        ):
            assert expected in names

    def test_unknown_scenario_error_lists_known(self):
        with pytest.raises(ScenarioError, match="unknown scenario 'nope'; known:"):
            get_scenario("nope")

    def test_every_registered_scenario_builds_and_validates(self):
        for name, spec in iter_scenarios():
            assert spec.name == name
            spec.node_config()  # resolvable configuration
            assert spec.spec_hash()


class TestBenchmarkRegistryCompleteness:
    """Every ``benchmarks/bench_fig*.py`` maps to a registered experiment."""

    def test_every_fig_benchmark_has_a_registered_experiment(self):
        benchmarks_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        bench_files = sorted(benchmarks_dir.glob("bench_fig*.py"))
        assert bench_files, "expected bench_fig*.py modules in benchmarks/"
        for bench in bench_files:
            match = re.match(r"bench_(fig\d+)_", bench.name)
            assert match is not None, f"unparseable benchmark name {bench.name}"
            experiment_id = match.group(1)
            assert experiment_id in EXPERIMENTS, (
                f"{bench.name} has no registered experiment {experiment_id!r} "
                "in repro.analysis.experiments"
            )


class TestLegacyEquivalence:
    """Ported scenarios reproduce the legacy experiment paths exactly."""

    NODES = 12
    DURATION_S = 600.0

    def test_fig07_drift_scenario_matches_legacy(self):
        legacy = fig07_drift.run(
            nodes=self.NODES,
            duration_s=self.DURATION_S,
            ping_interval_s=2.0,
            seed=0,
            snapshot_interval_s=60.0,
        )
        spec = _scaled(get_scenario("fig07-drift"), self.NODES, self.DURATION_S)
        run = run_scenario(spec)
        tracked = run.result.workload["tracked"]
        assert len(tracked) == len(legacy.tracked)
        for scenario_drift, legacy_drift in zip(tracked, legacy.tracked):
            assert scenario_drift["node_id"] == legacy_drift.node_id
            assert scenario_drift["region"] == legacy_drift.region
            assert scenario_drift["net_displacement_ms"] == legacy_drift.net_displacement_ms
            assert scenario_drift["path_length_ms"] == legacy_drift.path_length_ms
            assert scenario_drift["consistency"] == legacy_drift.consistency
        assert (
            run.result.metrics["drift_mean_net_displacement_ms"]
            == legacy.mean_net_displacement()
        )

    @pytest.mark.parametrize(
        "preset,label",
        [("raw", "Raw No Filter"), ("mp_energy", "Energy+MP Filter")],
    )
    def test_fig13_deployment_scenario_matches_legacy(self, preset, label):
        legacy = fig13_deployment_cdfs.run(
            nodes=self.NODES, duration_s=self.DURATION_S, seed=0
        )
        spec = _scaled(
            get_scenario(f"fig13-deployment-{preset.replace('_', '-')}"),
            self.NODES,
            self.DURATION_S,
        )
        run = run_scenario(spec)
        assert (
            sorted(run.result.per_node["p95_application_error"].values())
            == legacy.p95_error[label]
        )
        assert (
            sorted(run.result.per_node["application_instability"].values())
            == legacy.node_instability[label]
        )

    def test_churn_ablation_scenario_matches_legacy(self):
        # The legacy path: a hand-built SimulationConfig, exactly as
        # benchmarks/bench_ablation_churn.py constructs it.
        node_config = NodeConfig(
            filter=FilterConfig("mp", {"history": 4, "percentile": 25.0, "warmup": 2}),
            heuristic=HeuristicConfig("energy", {"threshold": 8.0, "window_size": 32}),
        )
        legacy = run_simulation(
            SimulationConfig(
                nodes=self.NODES,
                duration_s=self.DURATION_S,
                node_config=node_config,
                churn=ChurnConfig(
                    churning_fraction=0.3, mean_session_s=400.0, mean_downtime_s=120.0
                ),
                seed=12,
            )
        )
        spec = _scaled(
            get_scenario("churn-ablation-warmup2"), self.NODES, self.DURATION_S
        )
        run = run_scenario(spec)
        assert run.result.metrics["churn_transitions"] == float(legacy.churn_transitions)
        assert run.result.metrics["churn_transitions"] > 0
        legacy_snapshot = asdict(legacy.collector.system_snapshot())
        for key, value in legacy_snapshot.items():
            assert run.result.metrics[key] == value, key
