"""Tests for coordinate-health observability (:mod:`repro.obs.health`).

The load-bearing guarantees:

* the health tracker is a pure function of the epoch stream: same seeded
  publishes, byte-identical snapshots, summaries and Prometheus text;
* corruption shows up where it must -- zeroing a few percent of rows
  blows up the *mean* and *p95* relative error (the median alone would
  sleep through it) -- and the accuracy gate fails on exactly that;
* the structured event log is bounded, ordered and deterministic;
* the sim integration observes published epochs without perturbing the
  simulation result.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.config import NodeConfig
from repro.latency.planetlab import PlanetLabDataset
from repro.netsim.batch import run_batch_simulation
from repro.netsim.runner import SimulationConfig
from repro.obs.events import EVENT_KINDS, EventLog
from repro.obs.health import (
    DISPLACEMENT_SCHEME,
    ERROR_SCHEME,
    HealthSnapshot,
    HealthTracker,
)
from repro.obs.registry import TelemetryRegistry
from repro.obs.regression import (
    AccuracyThresholds,
    collect_health_sections,
    compare_health,
    compare_health_payloads,
)


def make_epochs(n=60, d=3, epochs=5, seed=7, step=2.0):
    """A deterministic epoch stream: pure translations of one universe."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(-80.0, 80.0, size=(n, d))
    node_ids = [f"h{i:03d}" for i in range(n)]
    return node_ids, [base + epoch * step for epoch in range(epochs)]


# ----------------------------------------------------------------------
# The event log
# ----------------------------------------------------------------------
class TestEventLog:
    def test_emit_assigns_stream_order_sequence_numbers(self):
        log = EventLog()
        for index in range(5):
            event = log.emit("epoch_published", version=index)
        assert event["seq"] == 4
        tail = log.tail()
        assert [event["seq"] for event in tail] == list(range(5))
        assert [event["version"] for event in tail] == list(range(5))
        assert all(event["kind"] == "epoch_published" for event in tail)

    def test_bounded_ring_drops_oldest_and_counts(self):
        log = EventLog(capacity=3)
        for index in range(10):
            log.emit("health_snapshot", epoch=index)
        assert log.emitted == 10 and log.dropped == 7
        tail = log.tail()
        assert [event["epoch"] for event in tail] == [7, 8, 9]
        # Sequence numbers keep counting across drops.
        assert [event["seq"] for event in tail] == [7, 8, 9]
        assert log.stats() == {
            "emitted": 10,
            "retained": 3,
            "dropped": 7,
            "capacity": 3,
        }

    def test_tail_limit_returns_newest_oldest_first(self):
        log = EventLog()
        for index in range(6):
            log.emit("generation_swapped", version=index)
        assert [event["version"] for event in log.tail(2)] == [4, 5]
        assert log.tail(0) == []

    def test_reserved_fields_and_empty_kind_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="kind"):
            log.emit("")
        with pytest.raises(ValueError, match="reserved"):
            log.emit("shard_error", seq=3)
        with pytest.raises(ValueError, match="reserved"):
            log.emit("shard_error", kind="other")

    def test_jsonl_rendering_is_sorted_and_newline_terminated(self, tmp_path):
        log = EventLog()
        log.emit("epoch_published", zulu=1, alpha=2)
        text = log.to_jsonl()
        assert text.endswith("\n")
        (line,) = text.splitlines()
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )
        assert list(json.loads(line)) == sorted(json.loads(line))
        path = tmp_path / "deep" / "events.jsonl"
        path.parent.mkdir(parents=True)
        log.write_jsonl(path)
        assert path.read_text() == text

    def test_no_wall_clock_unless_injected(self):
        assert "ts" not in EventLog().emit("epoch_published")
        stamped = EventLog(clock=lambda: 12.5).emit("epoch_published")
        assert stamped["ts"] == 12.5

    def test_known_kinds_cover_the_emitters(self):
        assert set(EVENT_KINDS) == {
            "epoch_published",
            "generation_swapped",
            "admission_shed",
            "shard_error",
            "health_snapshot",
            "fault_injected",
            "fault_cleared",
            "shard_killed",
            "shard_restarted",
            "publish_dropped",
            "publish_stalled",
        }


# ----------------------------------------------------------------------
# The health tracker
# ----------------------------------------------------------------------
class TestHealthTracker:
    def observe_all(self, tracker, node_ids, epochs, dt=None):
        snapshot = None
        for index, components in enumerate(epochs):
            snapshot = tracker.observe_epoch(
                node_ids,
                components,
                np.zeros(len(node_ids)),
                version=index + 1,
                time_s=None if dt is None else index * dt,
            )
        return snapshot

    def test_deterministic_across_runs(self):
        node_ids, epochs = make_epochs()

        def run():
            registry = TelemetryRegistry()
            events = EventLog()
            tracker = HealthTracker(seed=3, registry=registry, events=events)
            self.observe_all(tracker, node_ids, epochs)
            snapshots = json.dumps(
                [snapshot.to_dict() for snapshot in tracker.snapshots],
                sort_keys=True,
            )
            return snapshots, registry.render_prometheus(), events.to_jsonl()

        assert run() == run()

    def test_translation_keeps_error_zero_and_measures_drift(self):
        node_ids, epochs = make_epochs(d=3, step=2.0)
        tracker = HealthTracker(seed=1)
        last = self.observe_all(tracker, node_ids, epochs)
        assert isinstance(last, HealthSnapshot)
        # Distance-preserving epochs: self-referenced error is fp noise.
        assert last.relative_error_p95 < 1e-9
        assert last.relative_error_median < 1e-9
        # Centroid moves 2.0 per component per epoch (dt = 1/epoch).
        assert last.drift_velocity == pytest.approx(2.0 * math.sqrt(3.0))
        # Every node moves by exactly the same translation.
        assert last.displacement_median == pytest.approx(2.0 * math.sqrt(3.0))
        assert last.neighbor_churn == 0.0

    def test_time_scaled_drift_velocity(self):
        node_ids, epochs = make_epochs(d=2, step=3.0)
        tracker = HealthTracker(seed=1)
        # 10 simulated seconds between epochs: velocity is ms per second.
        last = self.observe_all(tracker, node_ids, epochs, dt=10.0)
        assert last.drift_velocity == pytest.approx(3.0 * math.sqrt(2.0) / 10.0)

    def test_oracle_mode_measures_true_relative_error(self):
        n = 40
        rng = np.random.default_rng(5)
        base = rng.uniform(-50.0, 50.0, size=(n, 2))
        node_ids = [f"h{i:03d}" for i in range(n)]
        index = {node_id: row for row, node_id in enumerate(node_ids)}

        def true_rtt(a, b, time_s):
            # The truth is exactly half of every predicted distance, so
            # each pair's relative error is |pred - true| / true = 1.0.
            return 0.5 * float(
                np.linalg.norm(base[index[a]] - base[index[b]])
            )

        tracker = HealthTracker(seed=2, true_rtt=true_rtt)
        snapshot = tracker.observe_epoch(node_ids, base, np.zeros(n))
        assert tracker.summary()["mode"] == "oracle"
        assert snapshot.relative_error_median == pytest.approx(1.0)
        assert snapshot.relative_error_p95 == pytest.approx(1.0)

    def test_corruption_moves_mean_and_p95_not_median(self):
        node_ids, epochs = make_epochs(n=200, epochs=4, seed=11)
        corrupted = [components.copy() for components in epochs]
        rows = np.random.default_rng(99).choice(200, size=10, replace=False)
        for components in corrupted[1:]:
            components[rows] = 0.0

        clean_tracker = HealthTracker(seed=4)
        clean = self.observe_all(clean_tracker, node_ids, epochs)
        corrupt_tracker = HealthTracker(seed=4)
        corrupt = self.observe_all(corrupt_tracker, node_ids, corrupted)

        # 5% of rows touches ~10% of sampled pairs: the median sleeps
        # through it, the mean and p95 do not -- which is exactly why
        # the accuracy gate watches all three.
        assert corrupt.relative_error_median < 1e-9
        assert corrupt.relative_error_mean > 0.01
        assert corrupt.relative_error_p95 > 0.01
        assert clean.relative_error_mean < 1e-9

    def test_churn_detects_neighborhood_reshuffle(self):
        n = 80
        rng = np.random.default_rng(13)
        first = rng.uniform(-60.0, 60.0, size=(n, 3))
        second = rng.uniform(-60.0, 60.0, size=(n, 3))  # unrelated geometry
        node_ids = [f"h{i:03d}" for i in range(n)]
        tracker = HealthTracker(seed=6)
        tracker.observe_epoch(node_ids, first, np.zeros(n))
        snapshot = tracker.observe_epoch(node_ids, second, np.zeros(n))
        assert snapshot.neighbor_churn is not None
        assert snapshot.neighbor_churn > 0.5

    def test_sharded_displacement_histograms_merge_to_single(self):
        node_ids, epochs = make_epochs(n=64, epochs=4)
        single = HealthTracker(seed=8)
        self.observe_all(single, node_ids, epochs)

        # Partition the node population into 4 disjoint trackers and
        # fold their displacement histograms back together.
        parts = [slice(0, 16), slice(16, 32), slice(32, 48), slice(48, 64)]
        shard_trackers = []
        for part in parts:
            tracker = HealthTracker(seed=8)
            for components in epochs:
                tracker.observe_epoch(
                    node_ids[part], components[part], np.zeros(16)
                )
            shard_trackers.append(tracker)
        merged = HealthTracker.merged_displacement(shard_trackers)
        assert merged.scheme == DISPLACEMENT_SCHEME
        assert merged.count == single.displacement_histogram.count
        assert (
            merged.bucket_counts()
            == single.displacement_histogram.bucket_counts()
        )
        assert merged.sum == pytest.approx(
            single.displacement_histogram.sum, rel=1e-12
        )

    def test_metrics_summary_and_instruments(self):
        node_ids, epochs = make_epochs(epochs=3)
        registry = TelemetryRegistry()
        tracker = HealthTracker(seed=9, registry=registry)
        self.observe_all(tracker, node_ids, epochs)
        summary = tracker.metrics_summary()
        assert set(summary) == {
            "health_epochs",
            "health_relative_error_median",
            "health_relative_error_p95",
            "health_drift_velocity",
            "health_drift_mean_velocity",
            "health_displacement_p95",
            "health_neighbor_churn",
        }
        assert summary["health_epochs"] == 3.0
        text = registry.render_prometheus()
        assert "health_relative_error_median" in text
        assert "health_epochs_total 3" in text
        histogram = tracker.error_histogram
        assert histogram.scheme == ERROR_SCHEME

    def test_snapshot_event_emission(self):
        node_ids, epochs = make_epochs(epochs=2)
        events = EventLog()
        tracker = HealthTracker(seed=1, events=events)
        self.observe_all(tracker, node_ids, epochs)
        kinds = [event["kind"] for event in events.tail()]
        assert kinds == ["health_snapshot", "health_snapshot"]
        assert events.tail()[-1]["epoch"] == 2

    def test_validation(self):
        tracker = HealthTracker(seed=0)
        with pytest.raises(ValueError, match="components"):
            tracker.observe_epoch(["a", "b"], np.zeros((3, 2)), np.zeros(3))
        with pytest.raises(ValueError, match="heights"):
            tracker.observe_epoch(["a", "b"], np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError, match="sample_pairs"):
            HealthTracker(sample_pairs=0)
        with pytest.raises(ValueError, match="window"):
            HealthTracker(window=0)


# ----------------------------------------------------------------------
# The accuracy regression gate
# ----------------------------------------------------------------------
def health_section(median=0.0, p95=0.0, mean=0.0, velocity=1.0):
    return {
        "relative_error": {"median": median, "p95": p95, "mean": mean},
        "drift": {"mean_velocity": velocity},
    }


class TestAccuracyGate:
    def test_identical_payload_passes(self):
        section = health_section(0.1, 0.3, 0.15)
        assert compare_health(section, section, context="t") == []

    def test_improvement_never_fails(self):
        baseline = health_section(0.2, 0.5, 0.3, velocity=4.0)
        improved = health_section(0.05, 0.1, 0.06, velocity=1.0)
        assert compare_health(baseline, improved, context="t") == []

    def test_degradation_beyond_limit_fails_per_metric(self):
        baseline = health_section(0.1, 0.3, 0.15)
        worse = health_section(0.2, 0.31, 0.15)  # median 2x, p95 within 1.5x
        findings = compare_health(baseline, worse, context="ctx")
        assert len(findings) == 1
        assert "median relative error" in findings[0]
        assert "ctx" in findings[0]

    def test_atol_floor_for_near_zero_baselines(self):
        # A 1e-16 self-reference baseline must not fail on 1e-15 noise,
        # but must fail on genuine degradation.
        baseline = health_section(1e-16, 1e-16, 1e-16)
        noise = health_section(9e-16, 9e-16, 9e-16)
        assert compare_health(baseline, noise, context="t") == []
        corrupt = health_section(1e-16, 0.1, 0.08)
        findings = compare_health(baseline, corrupt, context="t")
        assert len(findings) == 2

    def test_custom_thresholds(self):
        baseline = health_section(0.1, 0.1, 0.1)
        worse = health_section(0.13, 0.1, 0.1)
        strict = AccuracyThresholds(degradation_limit=1.2, atol=1e-9)
        assert compare_health(baseline, worse, context="t") == []
        assert len(compare_health(baseline, worse, context="t", thresholds=strict)) == 1

    def test_none_and_nan_metrics_are_skipped(self):
        baseline = health_section(None, float("nan"), 0.1)
        current = health_section(5.0, 5.0, 0.1)
        assert compare_health(baseline, current, context="t") == []

    def test_collect_walks_nested_documents(self):
        document = {
            "ingest": {"health": health_section(0.1, 0.2, 0.1)},
            "legs": [
                {"health": health_section(0.0, 0.0, 0.0)},
                {"no_health": True},
            ],
            "health": {"not_a_section": True},  # no relative_error mapping
        }
        sections = collect_health_sections(document)
        assert sorted(sections) == ["ingest", "legs[0]"]

    def test_payload_comparison_is_vacuous_without_shared_sections(self):
        findings, compared = compare_health_payloads({"a": 1}, {"b": 2})
        assert findings == [] and compared == 0

    def test_payload_comparison_matches_sections_by_path(self):
        baseline = {"ingest": {"health": health_section(1e-16, 1e-16, 1e-16)}}
        corrupt = {"ingest": {"health": health_section(1e-16, 0.11, 0.08)}}
        findings, compared = compare_health_payloads(baseline, corrupt)
        assert compared == 1
        assert len(findings) == 2
        assert all("ingest" in finding for finding in findings)


# ----------------------------------------------------------------------
# Simulation integration
# ----------------------------------------------------------------------
class TestBatchSimHealth:
    def make_config(self, **overrides):
        parameters = {
            "nodes": 16,
            "duration_s": 100.0,
            "node_config": NodeConfig.preset("mp"),
            "seed": 3,
        }
        parameters.update(overrides)
        return SimulationConfig(**parameters)

    def test_health_observes_published_epochs_without_perturbing_sim(self):
        from repro.service.snapshot import SnapshotStore

        config = self.make_config()
        dataset = PlanetLabDataset.generate(
            config.nodes, seed=config.seed, parameters=config.dataset
        )
        plain = run_batch_simulation(config, backend="vectorized", dataset=dataset)

        store = SnapshotStore(index_kind="dense", history=32)
        tracker = HealthTracker(seed=config.seed, true_rtt=dataset.true_rtt_ms)
        observed = run_batch_simulation(
            config,
            backend="vectorized",
            dataset=dataset,
            publish_store=store,
            publish_every_ticks=5,
            health=tracker,
            collect_profile=True,
        )
        # 20 ticks -> 4 interval epochs + the final publish.  The final
        # publish lands on tick 20, which the interval already observed,
        # so the tracker deduplicates it (same tick, same arrays).
        assert observed.snapshots_published == 5
        assert tracker.epochs == 4
        assert tracker.summary()["mode"] == "oracle"
        assert tracker.last.relative_error_median is not None
        assert "health_s" in observed.profile
        # Observation is read-only: the simulated coordinates are
        # byte-identical with and without the tracker attached.
        for a, b in zip(plain.final_application, observed.final_application):
            assert a == b

    def test_health_every_ticks_without_store(self):
        config = self.make_config()
        tracker = HealthTracker(seed=config.seed)
        run_batch_simulation(
            config,
            backend="vectorized",
            health=tracker,
            health_every_ticks=5,
        )
        # Every 5th of 20 ticks; the final-tick observation coincides
        # with the interval one and is deduplicated.
        assert tracker.epochs == 4

    def test_health_jsonl_is_deterministic_across_runs(self):
        def run():
            events = EventLog()
            tracker = HealthTracker(seed=5, events=events)
            run_batch_simulation(
                self.make_config(),
                backend="vectorized",
                health=tracker,
                health_every_ticks=4,
            )
            return events.to_jsonl()

        first = run()
        assert first == run()
        assert all(
            json.loads(line)["kind"] == "health_snapshot"
            for line in first.splitlines()
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="health_every_ticks"):
            run_batch_simulation(
                self.make_config(), backend="vectorized", health_every_ticks=4
            )
        tracker = HealthTracker(seed=1)
        with pytest.raises(ValueError, match="health_every_ticks"):
            run_batch_simulation(
                self.make_config(),
                backend="vectorized",
                health=tracker,
                health_every_ticks=0,
            )


class TestScenarioHealth:
    def test_vectorized_scenario_carries_health_metrics(self):
        from repro.engine.kernel import run_scenario
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec.from_dict(
            {
                "name": "health-test",
                "mode": "simulate",
                "network": {"nodes": 24},
                "preset": "mp",
                "duration_s": 120.0,
                "backend": "vectorized",
                "seed": 9,
            }
        )
        first = run_scenario(spec)
        metrics = first.result.metrics
        assert metrics["health_epochs"] >= 1.0
        assert metrics["health_relative_error_median"] is not None
        health = first.result.workload["health"]
        assert health["relative_error"]["count"] > 0
        assert health["mode"] == "oracle"
        # The health section is part of the deterministic result.
        second = run_scenario(spec)
        assert first.result.canonical_json() == second.result.canonical_json()
