"""Incremental epoch publish: the EpochPublisher protocol and delta path.

The load-bearing guarantee under test: a delta-published generation is
**byte-identical** -- coordinates, query results including tie order,
health snapshots -- to publishing the same final population from
scratch.  The sweep drives both a delta-fed store and a full-rebuild
store through the same epoch sequence and compares everything after
every epoch, across all index kinds, including the overlay-compaction
boundary cases (0 changed rows, all rows changed, removals, additions).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.coordinate import Coordinate
from repro.netsim.batch import run_batch_simulation
from repro.netsim.runner import NodeConfig, SimulationConfig
from repro.server.client import AsyncCoordinateClient
from repro.server.daemon import CoordinateServer
from repro.server.protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    request_to_publish,
    request_to_query,
    request_version,
)
from repro.server.sharding import HEALTH_SECTIONS, ShardedCoordinateStore
from repro.service.index import INDEX_KINDS
from repro.service.planner import Query
from repro.service.publish import EpochDelta, EpochPublisher
from repro.service.snapshot import SnapshotStore


# ----------------------------------------------------------------------
# Deterministic epoch-sequence generator (tie-heavy by construction)
# ----------------------------------------------------------------------
def _initial_population(n: int, dims: int, seed: int):
    rng = np.random.default_rng(seed)
    node_ids = [f"node{index:05d}" for index in range(n)]
    # Quantised to a coarse lattice so distance ties are common and the
    # (distance, insertion-seq) tie-break is genuinely exercised.
    components = np.round(rng.normal(scale=20.0, size=(n, dims)) / 5.0) * 5.0
    heights = np.round(rng.uniform(0.0, 4.0, size=n))
    return node_ids, components, heights


def _epoch_deltas(node_ids, components, heights, *, epochs, churn, removals, seed):
    """Yield (delta, final_ids, final_components, final_heights) per epoch.

    The finals are what a from-scratch publish after this delta must
    hold -- the oracle the delta-fed store is compared against.
    """
    rng = np.random.default_rng(seed + 1)
    ids = list(node_ids)
    comps = components.copy()
    hts = heights.copy()
    fresh = 0
    for epoch in range(epochs):
        n = len(ids)
        changed_count = int(round(n * churn))
        if churn > 0.0 and changed_count == 0:
            changed_count = 1
        rows = (
            np.sort(rng.choice(n, size=changed_count, replace=False))
            if changed_count
            else np.empty(0, dtype=np.int64)
        )
        new_comps = np.round(rng.normal(scale=20.0, size=(changed_count, comps.shape[1])) / 5.0) * 5.0
        new_hts = np.round(rng.uniform(0.0, 4.0, size=changed_count))
        changed_ids = [ids[row] for row in rows]
        removed_ids = []
        if removals and epoch % 2 == 1 and n > changed_count + 2:
            victims = [i for i in range(n) if i not in set(rows.tolist())][:2]
            removed_ids = [ids[i] for i in victims]
        added_ids = []
        if removals and epoch % 2 == 0 and epoch > 0:
            added_ids = [f"late{seed}-{fresh}", f"late{seed}-{fresh + 1}"]
            fresh += 2
        all_changed = changed_ids + added_ids
        add_comps = np.round(rng.normal(scale=20.0, size=(len(added_ids), comps.shape[1])) / 5.0) * 5.0
        add_hts = np.round(rng.uniform(0.0, 4.0, size=len(added_ids)))
        delta = EpochDelta(
            all_changed,
            np.concatenate([new_comps, add_comps]) if all_changed else np.empty((0, comps.shape[1])),
            np.concatenate([new_hts, add_hts]) if all_changed else np.empty(0),
            removed_ids=tuple(removed_ids),
            source=f"epoch{epoch + 1}",
            epoch=epoch + 1,
        )
        # Apply to the reference population exactly as documented:
        # update in place, compact removals, append additions.
        if changed_count:
            comps[rows] = new_comps
            hts[rows] = new_hts
        if removed_ids:
            keep = [i for i, node_id in enumerate(ids) if node_id not in set(removed_ids)]
            ids = [ids[i] for i in keep]
            comps = comps[keep]
            hts = hts[keep]
        if added_ids:
            ids = ids + added_ids
            comps = np.concatenate([comps, add_comps])
            hts = np.concatenate([hts, add_hts])
        yield delta, list(ids), comps.copy(), hts.copy()


def _assert_index_identical(derived, rebuilt, node_ids, dims, rng):
    """Query both indexes identically; results must match bit for bit."""
    probes = [
        Coordinate((np.round(rng.normal(scale=20.0, size=dims) / 5.0) * 5.0).tolist(), float(np.round(rng.uniform(0.0, 4.0))))
        for _ in range(4)
    ]
    member_targets = [node_ids[0], node_ids[len(node_ids) // 2], node_ids[-1]]
    for target_id in member_targets:
        a = derived.coordinate_of(target_id)
        b = rebuilt.coordinate_of(target_id)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.components == b.components and a.height == b.height
            probes.append(a)
    for probe in probes:
        assert derived.nearest(probe, k=5) == rebuilt.nearest(probe, k=5)
        assert derived.within(probe, 25.0) == rebuilt.within(probe, 25.0)
    if len(probes) >= 2:
        assert derived.min_cost_host(probes[:2]) == rebuilt.min_cost_host(probes[:2])
    assert len(derived) == len(rebuilt)
    assert sorted(derived.node_ids()) == sorted(rebuilt.node_ids())


class TestDeltaEquivalenceSweep:
    """Delta-published stores are byte-identical to full rebuilds."""

    @pytest.mark.parametrize("index_kind", INDEX_KINDS)
    @pytest.mark.parametrize(
        "n,dims,churn,removals",
        [
            (40, 2, 0.0, False),    # empty deltas: version lockstep only
            (40, 2, 1.0, False),    # all rows changed: always compacts
            (40, 3, 0.2, True),     # small population: over budget, compacts
            (300, 2, 0.05, False),  # overlay survives (budget = 75)
            (300, 2, 0.05, True),   # overlay + removals + additions
            (300, 4, 0.3, False),   # crosses the compaction boundary mid-run
        ],
    )
    def test_snapshot_store_equivalence(self, index_kind, n, dims, churn, removals):
        node_ids, components, heights = _initial_population(n, dims, seed=7)
        delta_store = SnapshotStore(index_kind=index_kind, history=64)
        full_store = SnapshotStore(index_kind=index_kind, history=64)
        delta_store.publish_epoch(node_ids, components.copy(), heights.copy(), source="epoch0")
        full_store.publish_epoch(node_ids, components.copy(), heights.copy(), source="epoch0")
        # Build the base index first so every delta has something to
        # derive from (matches the serving pattern: publish, then query).
        delta_store.index_for()
        rng = np.random.default_rng(1234)
        for delta, final_ids, final_comps, final_hts in _epoch_deltas(
            node_ids, components, heights, epochs=5, churn=churn, removals=removals, seed=7
        ):
            delta_snapshot = delta_store.publish_delta(delta)
            full_snapshot = full_store.publish_epoch(
                final_ids, final_comps, final_hts, source=delta.source
            )
            assert delta_snapshot.version == full_snapshot.version
            assert delta_snapshot.source == full_snapshot.source
            d_ids, d_comps, d_hts = delta_snapshot.arrays()
            f_ids, f_comps, f_hts = full_snapshot.arrays()
            assert d_ids == f_ids == final_ids
            assert d_comps.tobytes() == f_comps.tobytes()
            assert d_hts.tobytes() == f_hts.tobytes()
            derived = delta_store.index_for(delta_snapshot)
            rebuilt = full_store.index_for(full_snapshot)
            _assert_index_identical(derived, rebuilt, d_ids, dims, rng)

    @pytest.mark.parametrize("index_kind", ["vptree", "grid", "dense"])
    def test_sharded_store_equivalence_with_health(self, index_kind):
        n, dims = 120, 2
        node_ids, components, heights = _initial_population(n, dims, seed=3)
        delta_store = ShardedCoordinateStore(3, index_kind=index_kind, history=64)
        full_store = ShardedCoordinateStore(3, index_kind=index_kind, history=64)
        delta_store.publish_epoch(node_ids, components.copy(), heights.copy(), source="epoch0")
        full_store.publish_epoch(node_ids, components.copy(), heights.copy(), source="epoch0")
        for delta, final_ids, final_comps, final_hts in _epoch_deltas(
            node_ids, components, heights, epochs=4, churn=0.1, removals=True, seed=3
        ):
            delta_generation = delta_store.publish_delta(delta)
            full_generation = full_store.publish_epoch(
                final_ids, final_comps, final_hts, source=delta.source
            )
            assert delta_generation.version == full_generation.version
            assert delta_generation.node_order == full_generation.node_order
            d_ids, d_comps, d_hts = delta_generation.snapshot.arrays()
            f_ids, f_comps, f_hts = full_generation.snapshot.arrays()
            assert d_ids == f_ids
            assert np.asarray(d_comps).tobytes() == np.asarray(f_comps).tobytes()
            assert np.asarray(d_hts).tobytes() == np.asarray(f_hts).tobytes()
            for query in (
                Query.knn(d_ids[0], k=7),
                Query.range(d_ids[-1], 30.0),
                Query.nearest(d_ids[len(d_ids) // 2]),
                Query.pairwise(d_ids[0], d_ids[1]),
                Query.centroid((d_ids[0], d_ids[2], d_ids[4])),
            ):
                d_payload, d_version, _ = delta_store.serve(query)
                f_payload, f_version, _ = full_store.serve(query)
                assert d_payload == f_payload
                assert d_version == f_version
        deterministic = tuple(s for s in HEALTH_SECTIONS if s != "staleness")
        assert delta_store.health(deterministic) == full_store.health(deterministic)

    def test_empty_base_delta_bootstraps_population(self):
        store = SnapshotStore(index_kind="dense")
        delta = EpochDelta(
            ["a", "b"], np.asarray([[1.0, 2.0], [3.0, 4.0]]), np.asarray([0.5, 0.0])
        )
        snapshot = store.publish_delta(delta)
        assert snapshot.version == 1
        assert snapshot.node_ids() == ["a", "b"]

    def test_epoch_published_event_carries_changed_count_and_mode(self):
        store = ShardedCoordinateStore(2, index_kind="dense")
        node_ids, components, heights = _initial_population(30, 2, seed=9)
        store.publish_epoch(node_ids, components, heights, source="e0")
        store.publish_delta(
            EpochDelta(
                node_ids[:3],
                components[:3] + 1.0,
                heights[:3],
                removed_ids=(node_ids[-1],),
                source="e1",
            )
        )
        published = [
            event for event in store.events.tail() if event["kind"] == "epoch_published"
        ]
        assert published[0]["mode"] == "full"
        assert published[0]["changed_count"] == 30
        assert published[1]["mode"] == "delta"
        assert published[1]["changed_count"] == 4
        assert published[1]["nodes"] == 29


class TestEpochDeltaValidation:
    def test_rejects_overlapping_changed_and_removed(self):
        with pytest.raises(ValueError, match="both changed and removed"):
            EpochDelta(["a"], np.asarray([[1.0]]), removed_ids=("a",))

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ValueError, match="must match"):
            EpochDelta(["a", "b"], np.asarray([[1.0]]))

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="unique"):
            EpochDelta(["a", "a"], np.asarray([[1.0], [2.0]]))

    def test_from_coordinates_round_trip(self):
        delta = EpochDelta.from_coordinates(
            {"x": Coordinate([1.0, 2.0], 0.5)}, removed_ids=("y",), source="s", epoch=4
        )
        assert delta.node_ids == ["x"]
        assert delta.components.tolist() == [[1.0, 2.0]]
        assert delta.heights.tolist() == [0.5]
        assert delta.removed_ids == ("y",)
        assert delta.changed_count == 2

    def test_dimensionality_mismatch_is_actionable(self):
        store = SnapshotStore(index_kind="linear")
        store.publish_epoch(["a"], np.asarray([[1.0, 2.0]]), np.asarray([0.0]))
        with pytest.raises(ValueError, match="dimensionality"):
            store.publish_delta(EpochDelta(["a"], np.asarray([[1.0, 2.0, 3.0]])))

    def test_publish_delta_rejects_non_delta(self):
        for store in (SnapshotStore(), ShardedCoordinateStore(2)):
            with pytest.raises(TypeError, match="EpochDelta"):
                store.publish_delta({"node_ids": []})


class TestPublisherProtocol:
    def test_all_three_publishers_satisfy_the_protocol(self):
        assert isinstance(SnapshotStore(), EpochPublisher)
        assert isinstance(ShardedCoordinateStore(2), EpochPublisher)
        from repro.server.live import LiveServingHarness

        assert hasattr(LiveServingHarness, "publish_epoch")
        assert hasattr(LiveServingHarness, "publish_delta")

    def test_deprecated_shims_warn_and_delegate(self):
        ids = ["a", "b"]
        comps = np.asarray([[0.0, 0.0], [3.0, 4.0]])
        hts = np.asarray([0.0, 1.0])
        store = SnapshotStore(index_kind="dense")
        with pytest.deprecated_call():
            snapshot = store.publish_arrays(ids, comps.copy(), hts.copy(), source="s")
        assert snapshot.version == 1 and snapshot.node_ids() == ids
        sharded = ShardedCoordinateStore(2, index_kind="dense")
        with pytest.deprecated_call():
            generation = sharded.publish_arrays(ids, comps.copy(), hts.copy(), source="s")
        assert generation.version == 1
        with pytest.deprecated_call():
            generation = sharded.publish_coordinates({"c": Coordinate([1.0, 1.0])})
        assert generation.version == 2 and "c" in generation.global_seq

    def test_batch_simulation_rejects_non_publisher(self):
        config = SimulationConfig(
            nodes=8, duration_s=20.0, node_config=NodeConfig.preset("mp"), seed=1
        )
        with pytest.raises(TypeError, match="EpochPublisher"):
            run_batch_simulation(config, publish_store=object())

    def test_publish_every_ticks_error_names_both_parameters(self):
        config = SimulationConfig(
            nodes=8, duration_s=20.0, node_config=NodeConfig.preset("mp"), seed=1
        )
        with pytest.raises(ValueError) as excinfo:
            run_batch_simulation(config, publish_every_ticks=5)
        message = str(excinfo.value)
        assert "publish_every_ticks" in message and "publish_store" in message
        with pytest.raises(ValueError, match=">= 1"):
            run_batch_simulation(
                config, publish_store=SnapshotStore(), publish_every_ticks=0
            )
        with pytest.raises(ValueError, match="publish_mode"):
            run_batch_simulation(
                config, publish_store=SnapshotStore(), publish_mode="bogus"
            )

    def test_batch_delta_mode_matches_full_mode_byte_identically(self):
        config = SimulationConfig(
            nodes=16, duration_s=100.0, node_config=NodeConfig.preset("mp"), seed=3
        )
        delta_store = SnapshotStore(index_kind="dense", history=32)
        full_store = SnapshotStore(index_kind="dense", history=32)
        delta_sim = run_batch_simulation(
            config,
            publish_store=delta_store,
            publish_every_ticks=5,
            publish_mode="delta",
            collect_profile=True,
        )
        full_sim = run_batch_simulation(
            config,
            publish_store=full_store,
            publish_every_ticks=5,
            publish_mode="full",
            collect_profile=True,
        )
        assert delta_sim.snapshots_published == full_sim.snapshots_published
        assert delta_store.version == full_store.version
        for version in range(1, delta_store.version + 1):
            d_ids, d_comps, d_hts = delta_store.at(version).arrays()
            f_ids, f_comps, f_hts = full_store.at(version).arrays()
            assert d_ids == f_ids
            assert d_comps.tobytes() == f_comps.tobytes()
            assert d_hts.tobytes() == f_hts.tobytes()
        # Delta epochs after the first carry only the churned rows.
        assert "delta_rows_published" in delta_sim.profile
        total = delta_sim.profile["delta_rows_published"]
        assert total <= config.nodes * (delta_sim.snapshots_published - 1)


class TestWireProtocolVersioning:
    def test_request_version_parsing(self):
        assert request_version({}) == 1
        assert request_version({"version": 2}) == 2
        with pytest.raises(ProtocolError, match="integer"):
            request_version({"version": "2"})
        with pytest.raises(ProtocolError, match="newer"):
            request_version({"version": PROTOCOL_VERSION + 1})
        with pytest.raises(ProtocolError, match="not valid"):
            request_version({"version": 0})

    def test_delta_publish_requires_version_2(self):
        request = {
            "op": "publish",
            "delta": True,
            "nodes": ["a"],
            "components": [[1.0]],
        }
        with pytest.raises(ProtocolError, match="version 2"):
            request_to_publish(request)
        mode, delta = request_to_publish({**request, "version": 2})
        assert mode == "delta" and isinstance(delta, EpochDelta)

    def test_versionless_full_publish_parses(self):
        mode, parsed = request_to_publish(
            {"op": "publish", "nodes": ["a"], "components": [[1.0, 2.0]], "source": "s"}
        )
        assert mode == "full"
        node_ids, components, heights, source = parsed
        assert node_ids == ["a"] and heights is None and source == "s"
        assert components.tolist() == [[1.0, 2.0]]

    def test_full_publish_rejects_delta_only_fields(self):
        from repro.service.planner import QueryError

        with pytest.raises(QueryError, match="delta"):
            request_to_publish(
                {"op": "publish", "nodes": ["a"], "components": [[1.0]], "removed": ["b"]}
            )

    def test_publish_ops_are_not_queries(self):
        assert request_to_query({"op": "publish"}) is None
        assert request_to_query({"op": "hello"}) is None
        assert "publish" in OPS and "hello" in OPS

    def test_wire_publish_both_ways_is_byte_identical(self):
        n, dims = 40, 2
        node_ids, components, heights = _initial_population(n, dims, seed=11)
        served = ShardedCoordinateStore(2, index_kind="vptree", history=64)
        oracle = ShardedCoordinateStore(2, index_kind="vptree", history=64)
        server = CoordinateServer(served, admission_limit=256)

        changed = node_ids[:4]
        changed_comps = components[:4] + 5.0
        changed_hts = heights[:4]

        async def scenario(address):
            client = await AsyncCoordinateClient.connect(*address)
            try:
                hello = await client.op("hello")
                # Old client: versionless full publish must keep working.
                legacy = await client.publish_full(
                    node_ids, components, heights, source="e0"
                )
                # New client: negotiate and publish the delta form.
                delta = await client.publish_delta(
                    changed,
                    changed_comps,
                    changed_hts,
                    removed_ids=(node_ids[-1],),
                    source="e1",
                    epoch=1,
                )
                # A delta without the negotiated version must be refused.
                refused = await client.request(
                    {
                        "op": "publish",
                        "delta": True,
                        "nodes": list(changed),
                        "components": [[float(v) for v in row] for row in changed_comps],
                    }
                )
                probe = await client.query(Query.knn(node_ids[0], k=5))
                return hello, legacy, delta, refused, probe
            finally:
                await client.close()

        with server.run_in_thread() as handle:
            hello, legacy, delta, refused, probe = asyncio.run(
                scenario(handle.address)
            )

        assert hello["ok"] and hello["payload"]["protocol_version"] == PROTOCOL_VERSION
        assert "publish" in hello["payload"]["ops"]
        assert legacy["ok"] and legacy["payload"]["mode"] == "full"
        assert legacy["payload"]["version"] == 1
        assert delta["ok"] and delta["payload"]["mode"] == "delta"
        assert delta["payload"]["version"] == 2
        assert delta["payload"]["changed"] == 5
        assert delta["payload"]["nodes"] == n - 1
        assert not refused["ok"] and "version 2" in refused["error"]

        # Oracle: the same epochs published in-process, full-rebuild only.
        oracle.publish_epoch(node_ids, components.copy(), heights.copy(), source="e0")
        final_ids = [nid for nid in node_ids if nid != node_ids[-1]]
        keep = [i for i, nid in enumerate(node_ids) if nid != node_ids[-1]]
        final_comps = components[keep].copy()
        final_hts = heights[keep].copy()
        for position, nid in enumerate(changed):
            row = final_ids.index(nid)
            final_comps[row] = changed_comps[position]
            final_hts[row] = changed_hts[position]
        oracle.publish_epoch(final_ids, final_comps, final_hts, source="e1")
        expected, version, _ = oracle.serve(Query.knn(node_ids[0], k=5))
        assert probe["ok"] and probe["payload"] == expected
        assert probe["version"] == version == 2
