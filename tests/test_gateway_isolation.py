"""Cross-tenant isolation tests for the HTTP gateway.

Each tenant owns a whole serving stack -- store, engine, cache, health
tracker, event log, telemetry registry, token bucket -- so nothing one
tenant does can be observed by another.  These tests pin that boundary
from the outside, through the HTTP API only:

* publishes into tenant A's space never appear in B's node set,
  generation version, health payload, or event log;
* result caches are per tenant: the same query text is a cache hit on
  the tenant that repeated it and a miss (with a different answer) on
  the other;
* a chaos shard-kill scheduled in A's space degrades only A's scatter
  queries -- B keeps answering full, non-partial responses with the
  exact same bytes as before the fault;
* serving metrics accumulate in the acting tenant's registry only.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.gateway.app import GatewayServer
from repro.gateway.client import GatewayClient
from repro.gateway.config import parse_gateway_config

ACME_KEY = "acme-secret-0001"
GLOBEX_KEY = "globex-secret-01"

#: The same node id exists in both universes (synthetic ids are always
#: node000000...), with different coordinates -- ideal for isolation
#: probes: the query text is identical, the right answer is not.
SHARED_NODE = "node000000"


def make_server() -> GatewayServer:
    raw = {
        "tenants": [
            {
                "name": "acme",
                "api_key": ACME_KEY,
                "shards": 2,
                "quota": None,
                "data": {"synthetic": 64, "seed": 3},
            },
            {
                "name": "globex",
                "api_key": GLOBEX_KEY,
                "shards": 2,
                "quota": None,
                "data": {"synthetic": 48, "seed": 5},
            },
        ]
    }
    return GatewayServer(parse_gateway_config(raw))


@pytest.fixture()
def gateway():
    server = make_server()
    with server.run_in_thread() as handle:
        yield handle.address, server


def run(coro):
    return asyncio.run(coro)


async def clients(address):
    acme = GatewayClient(*address, "acme", ACME_KEY)
    globex = GatewayClient(*address, "globex", GLOBEX_KEY)
    return acme, globex


class TestPublishIsolation:
    def test_publish_into_one_tenant_is_invisible_to_the_other(self, gateway):
        address, server = gateway

        async def scenario():
            acme, globex = await clients(address)
            try:
                before = await globex.op("version")
                published = await acme.request(
                    {
                        "op": "publish",
                        "version": 3,
                        "delta": True,
                        "nodes": ["acme-only-node"],
                        "components": [[1.0, 2.0, 3.0]],
                        "removed": [],
                        "source": "isolation-test",
                    }
                )
                acme_nodes = await acme.op("nodes")
                globex_nodes = await globex.op("nodes")
                after = await globex.op("version")
                return published, acme_nodes, globex_nodes, before, after
            finally:
                await acme.close()
                await globex.close()

        published, acme_nodes, globex_nodes, before, after = run(scenario())
        assert published["ok"]
        assert "acme-only-node" in acme_nodes["payload"]["node_ids"]
        assert "acme-only-node" not in globex_nodes["payload"]["node_ids"]
        # The other tenant's generation stream never ticked.
        assert after["payload"] == before["payload"]

    def test_publish_events_land_in_the_acting_tenants_log_only(self, gateway):
        address, server = gateway

        async def scenario():
            acme, globex = await clients(address)
            try:
                await acme.request(
                    {
                        "op": "publish",
                        "version": 3,
                        "delta": True,
                        "nodes": ["acme-only-node"],
                        "components": [[1.0, 2.0, 3.0]],
                        "removed": [],
                        "source": "isolation-test",
                    }
                )
                return (
                    await acme.op("events"),
                    await globex.op("events"),
                )
            finally:
                await acme.close()
                await globex.close()

        acme_events, globex_events = run(scenario())
        acme_sources = [
            event.get("source")
            for event in acme_events["payload"]["events"]
            if event["kind"] == "epoch_published"
        ]
        globex_sources = [
            event.get("source")
            for event in globex_events["payload"]["events"]
            if event["kind"] == "epoch_published"
        ]
        assert "isolation-test" in acme_sources
        assert "isolation-test" not in globex_sources

    def test_health_reflects_only_the_tenants_own_store(self, gateway):
        address, _ = gateway

        async def scenario():
            acme, globex = await clients(address)
            try:
                return (
                    await acme.op("health", sections=["generation"]),
                    await globex.op("health", sections=["generation"]),
                )
            finally:
                await acme.close()
                await globex.close()

        acme_health, globex_health = run(scenario())
        assert acme_health["payload"]["generation"]["nodes"] == 64
        assert globex_health["payload"]["generation"]["nodes"] == 48


class TestCacheIsolation:
    def test_result_caches_are_per_tenant(self, gateway):
        address, _ = gateway

        async def scenario():
            acme, globex = await clients(address)
            try:
                first = await acme.op("knn", target=SHARED_NODE, k=3)
                repeat = await acme.op("knn", target=SHARED_NODE, k=3)
                other = await globex.op("knn", target=SHARED_NODE, k=3)
                return first, repeat, other
            finally:
                await acme.close()
                await globex.close()

        first, repeat, other = run(scenario())
        assert first["ok"] and repeat["ok"] and other["ok"]
        assert first["cached"] is False
        assert repeat["cached"] is True  # acme's own cache served it
        # Same query text against the other tenant: not a hit there, and
        # a different universe gives a different answer.
        assert other["cached"] is False
        assert other["payload"] != first["payload"]


class TestChaosIsolation:
    def test_shard_kill_in_one_space_leaves_the_other_full(self, gateway):
        address, _ = gateway

        async def scenario():
            acme, globex = await clients(address)
            try:
                globex_before = await globex.op("knn", target=SHARED_NODE, k=5)
                install = await acme.chaos(
                    spec="shard-kill@0+100:shard=1", seed=0
                )
                acme_degraded = await acme.op("knn", target=SHARED_NODE, k=5)
                globex_during = await globex.op("knn", target=SHARED_NODE, k=5)
                cleared = await acme.chaos(clear=True)
                acme_after = await acme.op("knn", target=SHARED_NODE, k=5)
                return (
                    install,
                    acme_degraded,
                    globex_before,
                    globex_during,
                    cleared,
                    acme_after,
                )
            finally:
                await acme.close()
                await globex.close()

        install, degraded, before, during, cleared, after = run(scenario())
        assert install["ok"] and cleared["ok"]
        # The victim tenant serves flagged partial responses...
        assert degraded["partial"] is True
        assert degraded["missing_shards"] == [1]
        # ...while the other tenant never notices: same full answer.
        assert "partial" not in during
        assert during["payload"] == before["payload"]
        assert during["version"] == before["version"]
        # And the victim recovers fully once the fault clears.
        assert "partial" not in after
        assert after["ok"]


class TestMetricsIsolation:
    def test_serving_metrics_accumulate_per_tenant_only(self, gateway):
        address, server = gateway
        acme_registry = server.tenants.get("acme").registry
        globex_registry = server.tenants.get("globex").registry
        globex_before = globex_registry.counter("daemon_admitted_total").value

        async def scenario():
            acme, globex = await clients(address)
            try:
                for _ in range(7):
                    await acme.op("ping")
            finally:
                await acme.close()
                await globex.close()

        run(scenario())
        assert acme_registry.counter("daemon_admitted_total").value >= 7
        assert (
            globex_registry.counter("daemon_admitted_total").value == globex_before
        )

        # The same boundary holds for the scraped endpoints.
        async def scrape():
            acme, globex = await clients(address)
            try:
                acme_status, acme_body = await acme.request_raw(
                    {"id": 1, "op": "stats"}
                )
                return json.loads(acme_body)
            finally:
                await acme.close()
                await globex.close()

        stats = run(scrape())
        assert stats["ok"]
        admission = stats["payload"]["admission"]
        assert admission["admitted"] >= 7
