"""Tests for boxplot summaries and the streaming percentile estimator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.percentile import BoxplotSummary, StreamingPercentile, boxplot_summary


class TestBoxplotSummary:
    def test_five_number_summary(self):
        summary = boxplot_summary(range(1, 101))
        assert summary.count == 100
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.median == pytest.approx(50.5)
        assert summary.lower_quartile == pytest.approx(25.75)
        assert summary.upper_quartile == pytest.approx(75.25)

    def test_outlier_detection_beyond_whiskers(self):
        values = list(np.random.default_rng(0).normal(size=200)) + [50.0, -50.0]
        summary = boxplot_summary(values)
        assert summary.outlier_count >= 2

    def test_no_outliers_for_uniform_data(self):
        summary = boxplot_summary(np.linspace(0.0, 1.0, 50))
        assert summary.outlier_count == 0

    def test_interquartile_range(self):
        summary = boxplot_summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.interquartile_range == pytest.approx(
            summary.upper_quartile - summary.lower_quartile
        )

    def test_single_value(self):
        summary = boxplot_summary([7.0])
        assert summary.minimum == summary.maximum == summary.median == 7.0
        assert summary.outlier_count == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            boxplot_summary([])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_whiskers_inside_min_max(self, values):
        summary = boxplot_summary(values)
        assert summary.minimum <= summary.lower_whisker <= summary.upper_whisker <= summary.maximum
        assert summary.lower_quartile <= summary.median <= summary.upper_quartile


class TestStreamingPercentile:
    def test_exact_for_small_streams(self):
        stream = StreamingPercentile(capacity=100)
        stream.extend(range(50))
        assert stream.median() == pytest.approx(float(np.percentile(range(50), 50.0)))

    def test_is_exact_flips_at_the_capacity_cutoff(self):
        stream = StreamingPercentile(capacity=10, seed=3)
        stream.extend(range(10))
        assert stream.is_exact
        stream.add(10.0)
        assert not stream.is_exact

    def test_exact_mode_matches_full_stream_bit_for_bit(self):
        rng = np.random.default_rng(5)
        data = rng.lognormal(mean=3.0, sigma=0.5, size=500)
        stream = StreamingPercentile(capacity=512)
        stream.extend(data)
        assert stream.is_exact
        for q in (1.0, 50.0, 95.0, 99.0):
            # Not approx: below capacity nothing has been evicted, so the
            # answer is the exact percentile of everything seen.
            assert stream.percentile(q) == float(np.percentile(data, q))

    def test_count_tracks_all_observations(self):
        stream = StreamingPercentile(capacity=10)
        stream.extend(range(1000))
        assert stream.count == 1000
        assert len(stream.snapshot()) == 10

    def test_approximate_for_large_streams(self):
        rng = np.random.default_rng(0)
        data = rng.normal(loc=100.0, scale=10.0, size=50_000)
        stream = StreamingPercentile(capacity=4096, seed=1)
        stream.extend(data)
        assert stream.median() == pytest.approx(100.0, abs=2.0)
        assert stream.percentile(95.0) == pytest.approx(float(np.percentile(data, 95.0)), abs=3.0)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            StreamingPercentile().median()

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            StreamingPercentile().add(float("nan"))

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            StreamingPercentile(capacity=0)


class TestStreamingPercentileMerge:
    def test_exact_merge_identical_to_single_estimator_on_union_stream(self):
        # Per-worker estimators folded at read time must answer exactly
        # like one estimator fed the union stream while below capacity.
        rng = np.random.default_rng(11)
        streams = [rng.lognormal(mean=2.0, sigma=0.7, size=300) for _ in range(3)]
        union = StreamingPercentile(capacity=2048)
        merged = StreamingPercentile(capacity=2048)
        for stream in streams:
            union.extend(stream)
            worker = StreamingPercentile(capacity=1024)
            worker.extend(stream)
            merged.merge(worker)
        assert merged.is_exact and merged.count == union.count == 900
        for q in (1.0, 50.0, 95.0, 99.0):
            assert merged.percentile(q) == union.percentile(q)

    def test_merge_leaves_other_untouched(self):
        a = StreamingPercentile(capacity=100)
        b = StreamingPercentile(capacity=100)
        a.extend(range(10))
        b.extend(range(10, 30))
        before = (b.count, b.is_exact, list(b.snapshot()))
        a.merge(b)
        assert (b.count, b.is_exact, list(b.snapshot())) == before
        assert a.count == 30

    def test_merging_empty_estimator_is_a_noop(self):
        a = StreamingPercentile(capacity=10)
        a.extend(range(5))
        a.merge(StreamingPercentile(capacity=10))
        assert a.count == 5 and a.is_exact

    def test_overflowing_merge_goes_sampled_but_keeps_count(self):
        a = StreamingPercentile(capacity=16, seed=1)
        b = StreamingPercentile(capacity=16, seed=2)
        a.extend(range(12))
        b.extend(range(12, 24))
        a.merge(b)
        assert not a.is_exact
        assert a.count == 24
        assert len(a.snapshot()) == 16

    def test_sampled_merge_estimates_union_distribution(self):
        rng = np.random.default_rng(0)
        data = rng.normal(loc=100.0, scale=10.0, size=40_000)
        halves = np.split(data, 2)
        merged = StreamingPercentile(capacity=4096, seed=3)
        for half in halves:
            worker = StreamingPercentile(capacity=4096, seed=4)
            worker.extend(half)
            merged.merge(worker)
        assert merged.count == 40_000 and not merged.is_exact
        assert merged.median() == pytest.approx(100.0, abs=2.0)
        assert merged.percentile(95.0) == pytest.approx(
            float(np.percentile(data, 95.0)), abs=3.0
        )
