"""Cross-cutting property-based tests of system invariants.

These complement the per-module property tests with invariants that span
several components: the per-observation pipeline (filter -> Vivaldi ->
heuristic), the replay bookkeeping, and the change-detection heuristics'
relationship to the system-coordinate stream.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
from repro.core.coordinate import Coordinate, centroid
from repro.core.heuristics import make_heuristic
from repro.core.node import CoordinateNode
from repro.latency.trace import LatencyTrace, TraceRecord
from repro.netsim.replay import replay_trace

rtt_values = st.floats(min_value=0.5, max_value=5000.0, allow_nan=False)
coordinate_points = st.lists(
    st.floats(min_value=-500.0, max_value=500.0, allow_nan=False), min_size=3, max_size=3
)


class TestNodePipelineInvariants:
    @given(st.lists(rtt_values, min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_coordinates_stay_finite_for_any_observation_stream(self, rtts):
        node = CoordinateNode("n", NodeConfig.preset("mp_energy"))
        peer = Coordinate([40.0, 10.0, 5.0])
        for rtt in rtts:
            result = node.observe("peer", peer, 0.4, rtt)
            assert all(math.isfinite(c) for c in result.system_coordinate.components)
            assert 0.0 <= node.error_estimate <= 1.0
            if result.relative_error is not None:
                assert result.relative_error >= 0.0

    @given(st.lists(rtt_values, min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_cumulative_movement_is_sum_of_per_observation_movement(self, rtts):
        node = CoordinateNode("n", NodeConfig.preset("mp"))
        peer = Coordinate([40.0, 10.0, 5.0])
        total = 0.0
        for rtt in rtts:
            total += node.observe("peer", peer, 0.4, rtt).system_movement_ms
        assert node.cumulative_system_movement_ms == pytest.approx(total)

    @given(st.lists(rtt_values, min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_application_updates_never_exceed_observations(self, rtts):
        node = CoordinateNode("n", NodeConfig.preset("mp_energy"))
        peer = Coordinate([40.0, 10.0, 5.0])
        for rtt in rtts:
            node.observe("peer", peer, 0.4, rtt)
        assert node.application_update_count <= node.observation_count

    @given(st.lists(rtt_values, min_size=2, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_filtered_value_never_exceeds_max_recent_raw_sample(self, rtts):
        """The MP filter interpolates within its window: no overshoot."""
        node = CoordinateNode("n", NodeConfig.preset("mp"))
        peer = Coordinate([40.0, 10.0, 5.0])
        window: list[float] = []
        for rtt in rtts:
            window = (window + [rtt])[-4:]
            result = node.observe("peer", peer, 0.4, rtt)
            assert result.filtered_rtt_ms is not None
            assert result.filtered_rtt_ms <= max(window) + 1e-9
            assert result.filtered_rtt_ms >= min(window) - 1e-9


class TestHeuristicInvariants:
    @given(st.lists(coordinate_points, min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_application_coordinate_stays_within_observed_bounding_box(self, points):
        """Every heuristic emits either a past system coordinate or a centroid
        of past system coordinates, so c_a can never leave their bounding box."""
        for kind, params in (
            ("always", {}),
            ("system", {"threshold_ms": 5.0}),
            ("application", {"threshold_ms": 5.0}),
            ("application_centroid", {"threshold_ms": 5.0, "window_size": 8}),
            ("energy", {"threshold": 2.0, "window_size": 4}),
        ):
            heuristic = make_heuristic(kind, **params)
            seen = []
            for point in points:
                coordinate = Coordinate(point)
                seen.append(coordinate)
                heuristic.observe(coordinate)
                app = heuristic.application_coordinate
                assert app is not None
                for dim in range(3):
                    values = [c[dim] for c in seen]
                    assert min(values) - 1e-6 <= app[dim] <= max(values) + 1e-6

    @given(st.lists(coordinate_points, min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_update_counts_are_monotone_in_threshold(self, points):
        loose = make_heuristic("application", threshold_ms=1.0)
        strict = make_heuristic("application", threshold_ms=100.0)
        for point in points:
            coordinate = Coordinate(point)
            loose.observe(coordinate)
            strict.observe(coordinate)
        assert strict.update_count <= loose.update_count


class TestReplayInvariants:
    @given(
        st.integers(min_value=3, max_value=6),
        st.integers(min_value=10, max_value=60),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_replay_accounting_matches_trace_shape(self, node_count, record_count, seed):
        rng = np.random.default_rng(seed)
        node_ids = [f"n{i}" for i in range(node_count)]
        records = []
        for step in range(record_count):
            src, dst = rng.choice(node_count, size=2, replace=False)
            records.append(
                TraceRecord(
                    time_s=float(step),
                    src=node_ids[int(src)],
                    dst=node_ids[int(dst)],
                    rtt_ms=float(rng.lognormal(4.0, 0.5)),
                )
            )
        trace = LatencyTrace(records)
        result = replay_trace(trace, NodeConfig.preset("mp"), measurement_start_s=0.0)
        assert result.records_processed == record_count
        assert set(result.nodes) == set(trace.nodes())
        # Every source node processed exactly as many observations as it issued.
        per_source = trace.per_source()
        for node_id, node in result.nodes.items():
            assert node.observation_count == len(per_source.get(node_id, []))
