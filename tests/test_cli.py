"""Tests for the experiment command-line interface."""

from __future__ import annotations

import pytest

from repro.analysis.cli import main, run_experiments


class TestRunExperiments:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiments(["fig99"])

    def test_runs_small_experiment_and_writes_report(self, tmp_path):
        reports = run_experiments(["fig06"], seed=1, output_dir=tmp_path)
        assert len(reports) == 1
        assert "Figure 6" in reports[0]
        assert (tmp_path / "fig06.txt").exists()


class TestMain:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "fig02" in output
        assert "table1" in output

    def test_no_arguments_is_an_error(self, capsys):
        assert main([]) == 2

    def test_named_experiment_prints_report(self, capsys):
        assert main(["fig06", "--seed", "1"]) == 0
        assert "Figure 6" in capsys.readouterr().out
