"""Tests for the experiment and scenario command-line interfaces."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import main, run_experiments
from repro.scenarios import ScenarioSpec
from repro.scenarios.registry import _REGISTRY, register


class TestRunExperiments:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiments(["fig99"])

    def test_runs_small_experiment_and_writes_report(self, tmp_path):
        reports = run_experiments(["fig06"], seed=1, output_dir=tmp_path)
        assert len(reports) == 1
        assert "Figure 6" in reports[0]
        assert (tmp_path / "fig06.txt").exists()


class TestMain:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "fig02" in output
        assert "table1" in output

    def test_no_arguments_is_an_error(self, capsys):
        assert main([]) == 2

    def test_named_experiment_prints_report(self, capsys):
        assert main(["fig06", "--seed", "1"]) == 0
        assert "Figure 6" in capsys.readouterr().out


@pytest.fixture()
def tiny_scenario():
    """Register a fast throwaway scenario and clean it up afterwards."""
    name = "cli-test-tiny"

    def factory() -> ScenarioSpec:
        payload = ScenarioSpec(
            name=name, mode="replay", preset="mp", duration_s=120.0, seed=1
        ).to_dict()
        payload["network"] = {**payload["network"], "nodes": 6}
        return ScenarioSpec.from_dict(payload)

    register(name, factory)
    try:
        yield name
    finally:
        _REGISTRY.pop(name, None)


class TestScenariosCommandGroup:
    def test_list_shows_registered_scenarios(self, capsys):
        assert main(["scenarios", "list"]) == 0
        output = capsys.readouterr().out
        assert "fig07-drift" in output
        assert "planetlab-churn-30pct" in output

    def test_run_prints_summary_and_writes_json(self, capsys, tmp_path, tiny_scenario):
        output_path = tmp_path / "results.json"
        assert (
            main(["scenarios", "run", tiny_scenario, "--output", str(output_path)]) == 0
        )
        assert tiny_scenario in capsys.readouterr().out
        payload = json.loads(output_path.read_text())
        assert payload[0]["name"] == tiny_scenario
        assert "median_of_median_application_error" in payload[0]["metrics"]

    def test_run_unknown_scenario_is_an_error(self, capsys):
        assert main(["scenarios", "run", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_sweep_expands_and_caches(self, capsys, tmp_path, tiny_scenario):
        cache_dir = tmp_path / "cache"
        args = [
            "scenarios",
            "sweep",
            tiny_scenario,
            "--set",
            "history=2,4",
            "--cache",
            str(cache_dir),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "2 cell(s)" in first
        assert f"{tiny_scenario}[history=2]" in first
        assert main(args) == 0
        assert "2 cache hit(s)" in capsys.readouterr().out

    def test_sweep_check_serial_reports_byte_identical(
        self, capsys, tmp_path, tiny_scenario
    ):
        bench_path = tmp_path / "bench.json"
        args = [
            "scenarios",
            "sweep",
            tiny_scenario,
            "--set",
            "history=2,4",
            "--check-serial",
            "--bench-json",
            str(bench_path),
        ]
        assert main(args) == 0
        assert "byte-identical: True" in capsys.readouterr().out
        record = json.loads(bench_path.read_text())
        assert record["byte_identical"] is True
        assert record["cells"] == 2

    def test_sweep_boolean_axis_parses_real_booleans(self, capsys, tiny_scenario):
        # 'false' must become False, not a truthy string (which would
        # silently enable the flag in every cell).
        assert (
            main(["scenarios", "sweep", tiny_scenario, "--set", "noiseless=true,false"])
            == 0
        )
        out = capsys.readouterr().out
        assert f"{tiny_scenario}[noiseless=True]" in out
        assert f"{tiny_scenario}[noiseless=False]" in out

    def test_sweep_duplicate_axis_is_an_error(self, capsys, tiny_scenario):
        args = [
            "scenarios", "sweep", tiny_scenario,
            "--set", "history=2", "--set", "history=4",
        ]
        assert main(args) == 2
        assert "given more than once" in capsys.readouterr().err

    def test_sweep_bad_axis_value_is_a_readable_error(self, capsys, tiny_scenario):
        args = ["scenarios", "sweep", tiny_scenario, "--set", "history=zebra"]
        assert main(args) == 2
        assert "coordinate configuration invalid" in capsys.readouterr().err

    def test_run_backend_override_and_profile(self, capsys, tmp_path):
        profile_path = tmp_path / "profile.json"
        canonical_path = tmp_path / "canonical.json"
        args = [
            "scenarios", "run", "vectorized-strict-small",
            "--profile", str(profile_path),
            "--canonical-output", str(canonical_path),
        ]
        assert main(args) == 0
        assert "profiled" in capsys.readouterr().out
        phases = json.loads(profile_path.read_text())["vectorized-strict-small"]
        for key in ("sample_s", "filter_s", "update_s", "heuristic_s", "ticks"):
            assert key in phases
        canonical = json.loads(canonical_path.read_text())
        assert canonical["results"][0]["metrics"]["strict_equivalence"] == 1.0

    def test_run_backend_override_rejects_invalid_combination(self, capsys):
        args = ["scenarios", "run", "fig07-drift", "--backend", "vectorized"]
        assert main(args) == 2
        assert "requires mode='simulate'" in capsys.readouterr().err

    def test_canonical_output_is_stable_across_worker_counts(
        self, capsys, tmp_path, tiny_scenario
    ):
        paths = []
        for workers in ("1", "2"):
            path = tmp_path / f"canonical-w{workers}.json"
            args = [
                "scenarios", "run", tiny_scenario,
                "--workers", workers, "--canonical-output", str(path),
            ]
            assert main(args) == 0
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_check_serial_reruns_uncached_for_fair_comparison(
        self, capsys, tmp_path, tiny_scenario
    ):
        cache_dir = tmp_path / "cache"
        base_args = [
            "scenarios", "sweep", tiny_scenario,
            "--set", "history=2,4", "--cache", str(cache_dir),
        ]
        assert main(base_args) == 0
        capsys.readouterr()
        assert main([*base_args, "--check-serial"]) == 0
        out = capsys.readouterr().out
        assert "re-running uncached" in out
        assert "byte-identical: True" in out
