"""Tests for deterministic fault injection (:mod:`repro.chaos`).

The load-bearing guarantees:

* fault schedules are parsed strictly, sorted deterministically, and
  fire on request/publish *counts* -- never the wall clock;
* killing a shard degrades scatter queries to flagged partial responses
  byte-identical to the healthy-subset oracle, and restarting rebuilds
  the shard so answers return to the full-merge bytes;
* publish-path faults (stall/drop) never tear a generation: every
  response still matches a re-serve against its claimed version;
* the admission-burst fault sheds exactly the scheduled request window
  and releases its slots afterwards;
* the chaos wire op is version-gated, and same seed + schedule produce
  a byte-identical chaos report and event log across daemon runs;
* the client's typed transport errors (timeout / transport / overload)
  surface instead of hanging, with deterministic capped backoff.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.chaos import (
    FAULT_KINDS,
    PUBLISH_FAULT_KINDS,
    SERVE_FAULT_KINDS,
    ChaosInjector,
    FaultEvent,
    FaultSchedule,
    SLOThresholds,
    evaluate,
    verify_chaos_responses,
)
from repro.server.client import (
    AsyncCoordinateClient,
    backoff_delay_ms,
    retry_after_delay_ms,
)
from repro.server.daemon import CoordinateServer
from repro.server.errors import RequestTimeout, ServerOverloaded, TransportError
from repro.server.load import run_load, synthetic_arrays, synthetic_coordinates
from repro.server.protocol import PROTOCOL_VERSION
from repro.server.sharding import ShardedCoordinateStore
from repro.service.planner import Query
from repro.service.workload import generate_queries


def serve_in_thread(store, **kwargs):
    return CoordinateServer(store, **kwargs).run_in_thread()


def make_store(nodes=32, *, shards=2, seed=3, **kwargs):
    return ShardedCoordinateStore.from_coordinates(
        synthetic_coordinates(nodes, seed=seed), shards=shards, **kwargs
    )


def probe_query(nodes=32, *, seed=3) -> Query:
    """A scatter query over a node that definitely exists in the universe."""
    return Query.nearest(sorted(synthetic_coordinates(nodes, seed=seed))[0])


# ----------------------------------------------------------------------
# Schedule parsing
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_parse_sorts_and_stamps(self):
        schedule = FaultSchedule.parse(
            "shard-kill@40+60:shard=1,publish-drop@4+1", seed=9
        )
        assert schedule.seed == 9
        assert schedule.spec == "shard-kill@40+60:shard=1,publish-drop@4+1"
        assert [event.kind for event in schedule.events] == [
            "publish-drop",
            "shard-kill",
        ]
        kill = schedule.events[1]
        assert (kill.at, kill.duration, kill.shard) == (40, 60, 1)
        assert kill.clear_at == 100
        assert schedule.serve_events() == (kill,)
        assert schedule.publish_events() == (schedule.events[0],)

    def test_kind_partitions_cover_all_kinds(self):
        assert set(SERVE_FAULT_KINDS) | set(PUBLISH_FAULT_KINDS) == set(FAULT_KINDS)
        assert not set(SERVE_FAULT_KINDS) & set(PUBLISH_FAULT_KINDS)

    def test_as_dict_is_json_safe(self):
        schedule = FaultSchedule.parse("shard-slow@5+10:shard=0:delay_ms=2.5", seed=3)
        payload = schedule.as_dict()
        assert payload["seed"] == 3
        assert payload["events"][0]["kind"] == "shard-slow"
        assert payload["events"][0]["delay_ms"] == 2.5
        json.dumps(payload)

    @pytest.mark.parametrize(
        ("spec", "match"),
        [
            ("", "empty"),
            ("warp@1+1", "unknown fault kind"),
            ("shard-kill@1+1", "requires shard"),
            ("shard-kill@-1+1:shard=0", "at must be"),
            ("shard-kill@1+0:shard=0", "duration must be"),
            ("shard-kill@1+1:shard=0:delay_ms=2", "does not take a delay_ms"),
            ("shard-slow@1+1:shard=0", "delay_ms"),
            ("publish-stall@1+1", "delay_ms"),
            ("publish-drop@1+1:amount=2", "does not take an amount"),
            ("admission-burst@1+1", "amount"),
            ("admission-burst@1+1:amount=zero", "amount must be an integer"),
            ("shard-kill@1:shard=0", r"kind@at\+duration"),
            ("shard-kill@x+1:shard=0", "must be integers"),
            ("shard-kill@1+1:shard", "key=value"),
            ("shard-kill@1+1:shard=0:shard=0", "duplicate parameter"),
            ("shard-kill@1+1:color=red", "unknown parameter"),
            ("shard-kill@1+1:shard=0,,", "empty fault token"),
        ],
    )
    def test_rejects_bad_specs_naming_the_token(self, spec, match):
        with pytest.raises(ValueError, match=match):
            FaultSchedule.parse(spec)

    def test_event_validation_direct(self):
        with pytest.raises(ValueError, match="requires shard"):
            FaultEvent(kind="shard-kill", at=0, duration=1)
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="quake", at=0, duration=1)


# ----------------------------------------------------------------------
# Deterministic backoff and typed retry
# ----------------------------------------------------------------------
class TestBackoff:
    def test_backoff_is_deterministic_capped_and_seed_decorrelated(self):
        first = [backoff_delay_ms(attempt, seed=0) for attempt in range(10)]
        again = [backoff_delay_ms(attempt, seed=0) for attempt in range(10)]
        assert first == again
        assert all(0.0 < delay <= 500.0 for delay in first)
        assert first[0] <= 10.0  # attempt 0 stays inside the base bound
        assert first != [backoff_delay_ms(a, seed=1) for a in range(10)]

    def test_backoff_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="attempt"):
            backoff_delay_ms(-1)
        with pytest.raises(ValueError, match="base_ms"):
            backoff_delay_ms(0, base_ms=0.0)

    def test_retry_exhaustion_raises_server_overloaded(self):
        store = make_store(8, shards=1)
        target = probe_query(8).target
        server = CoordinateServer(store, admission_limit=4)

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                server.inject_admission_load(4)  # saturate: every query sheds
                delays = []

                async def fake_sleep(seconds):
                    delays.append(seconds)

                with pytest.raises(ServerOverloaded):
                    await client.request_with_retry(
                        {"op": "nearest", "target": target},
                        retries=2,
                        seed=5,
                        sleep=fake_sleep,
                    )
                server.release_admission_load(4)
                recovered = await client.request_with_retry(
                    {"op": "nearest", "target": target}, retries=1
                )
                return delays, recovered

        with server.run_in_thread() as handle:
            delays, recovered = asyncio.run(scenario(handle.address))
        assert delays == [
            backoff_delay_ms(attempt, seed=5) / 1e3 for attempt in range(2)
        ]
        assert recovered["ok"]

    def test_retry_after_delay_is_deterministic_and_never_below_the_hint(self):
        first = [retry_after_delay_ms(40.0, attempt, seed=2) for attempt in range(8)]
        again = [retry_after_delay_ms(40.0, attempt, seed=2) for attempt in range(8)]
        assert first == again
        # "Wait at least this long": jitter lands at or above the hint,
        # never under it, and stays within the 50% equal-jitter band.
        assert all(40.0 <= delay < 60.0 for delay in first)
        assert first != [retry_after_delay_ms(40.0, a, seed=3) for a in range(8)]
        with pytest.raises(ValueError, match="hint_ms"):
            retry_after_delay_ms(-1.0, 0)
        with pytest.raises(ValueError, match="attempt"):
            retry_after_delay_ms(1.0, -1)

    def test_retry_honors_the_server_retry_after_hint(self):
        store = make_store(8, shards=1)
        target = probe_query(8).target
        server = CoordinateServer(store, admission_limit=4, retry_after_ms=25.0)

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                server.inject_admission_load(4)
                delays = []

                async def fake_sleep(seconds):
                    delays.append(seconds)

                with pytest.raises(ServerOverloaded):
                    await client.request_with_retry(
                        {"op": "nearest", "target": target},
                        retries=2,
                        seed=5,
                        sleep=fake_sleep,
                    )
                server.release_admission_load(4)
                return delays

        with server.run_in_thread() as handle:
            delays = asyncio.run(scenario(handle.address))
        # Every shed response carried the 25ms hint, so every sleep used
        # the hint schedule instead of the exponential one -- and never
        # retried before the server said capacity might return.
        assert delays == [
            retry_after_delay_ms(25.0, attempt, seed=5) / 1e3 for attempt in range(2)
        ]
        assert all(delay >= 0.025 for delay in delays)

    def test_malformed_hint_falls_back_to_exponential_backoff(self):
        class CannedClient:
            """Replays canned responses through the real retry loop."""

            request_with_retry = AsyncCoordinateClient.request_with_retry

            def __init__(self, responses):
                self._responses = iter(responses)

            async def request(self, request, *, timeout=None):
                return next(self._responses)

        async def drive(responses, retries):
            delays = []

            async def fake_sleep(seconds):
                delays.append(seconds)

            client = CannedClient(responses)
            response = await client.request_with_retry(
                {"op": "ping"}, retries=retries, seed=7, sleep=fake_sleep
            )
            return delays, response

        # Malformed hints (a string, a bool, a negative) are ignored.
        delays, response = asyncio.run(
            drive(
                [
                    {"overloaded": True, "error": "x", "retry_after_ms": "soon"},
                    {"overloaded": True, "error": "x", "retry_after_ms": True},
                    {"overloaded": True, "error": "x", "retry_after_ms": -5},
                    {"ok": True},
                ],
                retries=3,
            )
        )
        assert response == {"ok": True}
        assert delays == [
            backoff_delay_ms(attempt, seed=7) / 1e3 for attempt in range(3)
        ]
        # A well-formed hint switches that retry to the hint schedule,
        # and a hintless shed right after falls back to exponential.
        delays, response = asyncio.run(
            drive(
                [
                    {"overloaded": True, "error": "x", "retry_after_ms": 80},
                    {"overloaded": True, "error": "x"},
                    {"ok": True},
                ],
                retries=2,
            )
        )
        assert response == {"ok": True}
        assert delays == [
            retry_after_delay_ms(80.0, 0, seed=7) / 1e3,
            backoff_delay_ms(1, seed=7) / 1e3,
        ]


# ----------------------------------------------------------------------
# The injector against a real store (in-process)
# ----------------------------------------------------------------------
class TestInjector:
    def test_shard_out_of_range_rejected(self):
        store = make_store()
        schedule = FaultSchedule.parse("shard-kill@0+1:shard=7")
        with pytest.raises(ValueError, match="out of range for a 2-shard store"):
            ChaosInjector(schedule, store)

    def test_kill_fires_and_clears_on_request_counts(self):
        store = make_store()
        injector = ChaosInjector(FaultSchedule.parse("shard-kill@2+3:shard=1"), store)
        for _ in range(2):  # counts 0, 1: before the window
            injector.on_query("knn")
            assert store.down_shards == frozenset()
        injector.on_query("knn")  # count 2: fires
        assert store.down_shards == {1}
        injector.on_query("knn")
        injector.on_query("knn")
        assert store.down_shards == {1}
        injector.on_query("knn")  # count 5 >= clear_at: restores
        assert store.down_shards == frozenset()
        report = injector.report()
        assert report["requests_seen"] == 6
        (fault,) = report["faults"]
        assert fault["fired_at"] == 2 and fault["cleared_at"] == 5
        assert not fault["forced_clear"]

    def test_slow_fault_injects_and_removes_delay(self):
        store = make_store()
        injector = ChaosInjector(
            FaultSchedule.parse("shard-slow@1+2:shard=0:delay_ms=4"), store
        )
        assert injector.serve_delay_ms() == 0.0
        injector.on_query("knn")  # count 0
        injector.on_query("knn")  # count 1: fires
        assert injector.serve_delay_ms() == 4.0
        injector.on_query("knn")  # count 2: still inside
        injector.on_query("knn")  # count 3: clears
        assert injector.serve_delay_ms() == 0.0

    def test_admission_burst_decision_lifecycle(self):
        store = make_store()
        injector = ChaosInjector(
            FaultSchedule.parse("admission-burst@1+2:amount=16"), store
        )
        first = injector.on_query("knn")
        assert (first.admission_acquire, first.admission_release) == (0, 0)
        fired = injector.on_query("knn")
        assert (fired.admission_acquire, fired.admission_release) == (16, 0)
        held = injector.on_query("knn")
        assert (held.admission_acquire, held.admission_release) == (0, 0)
        cleared = injector.on_query("knn")
        assert (cleared.admission_acquire, cleared.admission_release) == (0, 16)
        assert injector.report()["admission_injected"] == 16

    def test_finish_serve_faults_forces_clear_and_returns_slots(self):
        store = make_store()
        injector = ChaosInjector(
            FaultSchedule.parse(
                "shard-kill@0+100:shard=1,admission-burst@0+100:amount=8"
            ),
            store,
        )
        injector.on_query("knn")  # both fire
        assert store.down_shards == {1}
        released = injector.finish_serve_faults()
        assert released == 8
        assert store.down_shards == frozenset()
        report = injector.report()
        assert all(fault["forced_clear"] for fault in report["faults"])
        assert injector.finish_serve_faults() == 0  # idempotent

    def test_publish_drop_and_stall_actions(self):
        store = make_store()
        injector = ChaosInjector(
            FaultSchedule.parse("publish-stall@1+1:delay_ms=0.1,publish-drop@2+1"),
            store,
        )
        assert injector.on_publish() == ("ok", 0.0)
        assert injector.on_publish() == ("stall", 0.1)
        assert injector.on_publish() == ("drop", 0.0)
        assert injector.on_publish() == ("ok", 0.0)
        report = injector.report()
        assert report["publishes_seen"] == 4
        assert report["dropped_publishes"] == 1
        assert report["stalled_publishes"] == 1


# ----------------------------------------------------------------------
# Degraded serving: kill -> partial -> restart, byte-checked
# ----------------------------------------------------------------------
class TestDegradedServing:
    @pytest.fixture()
    def population(self):
        coords = synthetic_coordinates(48, seed=5)
        queries = generate_queries(list(coords), 80, mix="mixed", seed=2, k=4)
        return coords, queries

    def test_kill_serves_partial_then_restart_restores_bytes(self, population):
        coords, queries = population
        store = ShardedCoordinateStore.from_coordinates(
            coords, shards=3, index_kind="vptree"
        )
        scatter = next(q for q in queries if q.kind == "knn")
        before = store.serve(scatter)
        assert not before.partial and before.missing_shards == ()

        store.kill_shard(1)
        degraded = store.serve(scatter)
        assert degraded.partial and degraded.missing_shards == (1,)
        assert degraded[1] == before[1]  # same pinned generation
        mirror = ShardedCoordinateStore.from_snapshot(
            store.generation().snapshot, shards=3, index_kind="linear"
        )
        expected = mirror.generation().answer(scatter, exclude_shards=frozenset({1}))
        assert degraded[0] == expected

        store.restart_shard(1)
        after = store.serve(scatter)
        assert not after.partial
        assert after[0] == before[0]

    def test_pairwise_unaffected_by_down_shard(self, population):
        coords, _ = population
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2)
        ids = sorted(coords)
        store.kill_shard(0)
        result = store.serve(Query.pairwise(ids[0], ids[1]))
        assert not result.partial and result.missing_shards == ()

    def test_all_shards_down_serves_empty_partial(self, population):
        coords, _ = population
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2)
        store.kill_shard(0)
        store.kill_shard(1)
        result = store.serve(Query.knn(sorted(coords)[0], k=3))
        assert result.partial and result.missing_shards == (0, 1)
        assert result[0]["neighbors"] == []

    def test_degraded_responses_bypass_the_cache(self, population):
        coords, _ = population
        store = ShardedCoordinateStore.from_coordinates(
            coords, shards=2, cache_entries=64
        )
        query = Query.knn(sorted(coords)[0], k=3)
        healthy = store.serve(query)  # populates the cache
        store.kill_shard(1)
        degraded = store.serve(query)
        assert degraded.partial  # not the cached full answer
        repeat = store.serve(query)
        assert repeat.partial and not repeat[2]  # and never cached itself
        store.restart_shard(1)
        after = store.serve(query)
        assert not after.partial and after[2]  # old cache entry intact
        assert after[0] == healthy[0]

    def test_kill_restart_validation_idempotence_and_events(self, population):
        coords, _ = population
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2)
        with pytest.raises(ValueError, match="out of range"):
            store.kill_shard(9)
        with pytest.raises(ValueError, match="out of range"):
            store.restart_shard(-1)
        store.kill_shard(1)
        store.kill_shard(1)  # idempotent
        assert store.stats()["shards"]["down"] == [1]
        store.restart_shard(1)
        store.restart_shard(1)  # idempotent
        assert store.stats()["shards"]["down"] == []
        kinds = [event["kind"] for event in store.events.tail()]
        assert kinds.count("shard_killed") == 1
        assert kinds.count("shard_restarted") == 1

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_torn_read_audit_under_kill_restart_cycles(self, seed):
        """Hypothesis-style: seeded random streams, one invariant.

        Across repeated kill/restart cycles interleaved with queries,
        every answer must be byte-identical to a re-serve against the
        same generation on the same healthy subset -- no torn reads.
        """
        coords = synthetic_coordinates(40, seed=seed)
        store = ShardedCoordinateStore.from_coordinates(
            coords, shards=2, index_kind="vptree"
        )
        queries = generate_queries(list(coords), 60, mix="mixed", seed=seed)
        torn = 0
        for position, query in enumerate(queries):
            if position % 20 == 10:
                store.kill_shard(position // 20 % 2)
            if position % 20 == 15:
                store.restart_shard(position // 20 % 2)
            result = store.serve(query)
            expected = store.at(result[1]).answer(
                query, exclude_shards=frozenset(result.missing_shards)
            )
            if expected != result[0]:
                torn += 1
        assert torn == 0


# ----------------------------------------------------------------------
# Publish-path faults through the store gate
# ----------------------------------------------------------------------
class TestPublishFaults:
    def test_drop_leaves_version_and_stall_still_installs(self):
        node_ids, components, heights = synthetic_arrays(24)
        store = ShardedCoordinateStore(2, index_kind="linear", history=8)
        store.publish_epoch(node_ids, components, heights, source="base")
        injector = ChaosInjector(
            FaultSchedule.parse("publish-drop@0+1,publish-stall@1+1:delay_ms=1"),
            store,
        )
        store.chaos = injector
        dropped = store.publish_epoch(
            node_ids, components + 1.0, heights, source="dropped"
        )
        assert dropped.version == 1  # publish 0 vanished; generation unchanged
        assert store.version == 1
        stalled = store.publish_epoch(
            node_ids, components + 2.0, heights, source="stalled"
        )
        assert stalled.version == 2  # publish 1 landed after the stall
        assert stalled.source == "stalled"
        store.chaos = None
        kinds = [event["kind"] for event in store.events.tail()]
        assert "publish_dropped" in kinds and "publish_stalled" in kinds
        report = injector.report()
        assert report["dropped_publishes"] == 1
        assert report["stalled_publishes"] == 1


# ----------------------------------------------------------------------
# SLO evaluation
# ----------------------------------------------------------------------
class TestSLO:
    def test_clean_run_passes_everything(self):
        result = evaluate(
            thresholds=SLOThresholds(),
            fault_windows=[(40, 100)],
            error_positions=[],
            total_requests=400,
            latencies_ms=[1.0] * 400,
            torn_reads=0,
            generation_recovered=True,
        )
        assert result["passed"]
        assert set(result["checks"]) == {
            "bounded_error_window",
            "no_torn_reads",
            "p99_recovery",
            "generation_recovered",
        }

    def test_errors_outside_fault_plus_recovery_window_fail(self):
        result = evaluate(
            thresholds=SLOThresholds(),
            fault_windows=[(40, 100)],
            error_positions=[350],  # beyond 100 + recovery window 200
            total_requests=400,
        )
        assert not result["checks"]["bounded_error_window"]["passed"]

    def test_error_count_above_bound_fails(self):
        result = evaluate(
            thresholds=SLOThresholds(max_error_window=3),
            fault_windows=[(0, 10)],
            error_positions=[1, 2, 3, 4],
            total_requests=50,
        )
        assert not result["checks"]["bounded_error_window"]["passed"]

    def test_no_fault_windows_means_zero_errors_allowed(self):
        clean = evaluate(
            thresholds=SLOThresholds(),
            fault_windows=[],
            error_positions=[],
            total_requests=10,
        )
        dirty = evaluate(
            thresholds=SLOThresholds(),
            fault_windows=[],
            error_positions=[4],
            total_requests=10,
        )
        assert clean["checks"]["bounded_error_window"]["passed"]
        assert not dirty["checks"]["bounded_error_window"]["passed"]

    def test_torn_reads_fail_and_none_is_not_audited(self):
        torn = evaluate(
            thresholds=SLOThresholds(),
            fault_windows=[(0, 5)],
            error_positions=[],
            total_requests=10,
            torn_reads=1,
        )
        assert not torn["passed"]
        unaudited = evaluate(
            thresholds=SLOThresholds(),
            fault_windows=[(0, 5)],
            error_positions=[],
            total_requests=10,
            torn_reads=None,
        )
        assert unaudited["checks"]["no_torn_reads"]["passed"]
        assert unaudited["checks"]["no_torn_reads"]["detail"] == "not audited"

    def test_p99_recovery_breaks_under_tight_amplification(self):
        latencies = [1.0] * 100 + [None] * 50 + [1.2] * 250
        loose = evaluate(
            thresholds=SLOThresholds(p99_amplification=1.5),
            fault_windows=[(100, 150)],
            error_positions=list(range(100, 150)),
            total_requests=400,
            latencies_ms=latencies,
        )
        assert loose["checks"]["p99_recovery"]["passed"]
        tight = evaluate(
            thresholds=SLOThresholds(p99_amplification=1.0001),
            fault_windows=[(100, 150)],
            error_positions=list(range(100, 150)),
            total_requests=400,
            latencies_ms=latencies,
        )
        assert not tight["checks"]["p99_recovery"]["passed"]
        assert not tight["passed"]

    def test_p99_with_too_few_samples_is_vacuous(self):
        result = evaluate(
            thresholds=SLOThresholds(),
            fault_windows=[(5, 10)],
            error_positions=[],
            total_requests=20,
            latencies_ms=[1.0] * 20,
        )
        assert result["checks"]["p99_recovery"]["passed"]
        assert "vacuous" in result["checks"]["p99_recovery"]["detail"]

    def test_no_latencies_skips_timing_only(self):
        result = evaluate(
            thresholds=SLOThresholds(),
            fault_windows=[(0, 5)],
            error_positions=[],
            total_requests=10,
            latencies_ms=None,
        )
        assert result["checks"]["p99_recovery"]["passed"]
        assert "not evaluated" in result["checks"]["p99_recovery"]["detail"]

    def test_generation_recovery_check(self):
        stuck = evaluate(
            thresholds=SLOThresholds(),
            fault_windows=[],
            error_positions=[],
            total_requests=10,
            generation_recovered=False,
        )
        assert not stuck["checks"]["generation_recovered"]["passed"]

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="p99_amplification"):
            SLOThresholds(p99_amplification=0.0)
        with pytest.raises(ValueError, match="max_error_window"):
            SLOThresholds(max_error_window=-1)
        with pytest.raises(ValueError, match="recovery_window_requests"):
            SLOThresholds(recovery_window_requests=0)


# ----------------------------------------------------------------------
# The chaos wire op and end-to-end daemon behaviour
# ----------------------------------------------------------------------
class TestChaosWire:
    def test_install_report_clear_roundtrip(self):
        store = make_store(48)

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                installed = await client.chaos(spec="shard-kill@5+10:shard=1", seed=4)
                duplicate = await client.chaos(spec="shard-kill@5+10:shard=1")
                report = await client.chaos(report=True)
                cleared = await client.chaos(clear=True)
                empty = await client.chaos(report=True)
                return installed, duplicate, report, cleared, empty

        with serve_in_thread(store) as handle:
            installed, duplicate, report, cleared, empty = asyncio.run(
                scenario(handle.address)
            )
        assert installed["ok"]
        assert installed["payload"] == {"installed": True, "faults": 1}
        assert not duplicate["ok"] and "already installed" in duplicate["error"]
        assert report["ok"] and report["payload"]["installed"]
        assert report["payload"]["report"]["seed"] == 4
        assert cleared["ok"] and cleared["payload"]["cleared"]
        assert empty["ok"] and empty["payload"]["report"] is None

    def test_chaos_op_is_version_gated_and_validated(self):
        store = make_store(48)

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                old = await client.request(
                    {"op": "chaos", "spec": "shard-kill@0+1:shard=0"}
                )
                bad_spec = await client.chaos(spec="warp@1+1")
                bad_seed = await client.chaos(spec="shard-kill@0+1:shard=0", seed=True)
                no_spec = await client.request(
                    {"op": "chaos", "version": PROTOCOL_VERSION}
                )
                return old, bad_spec, bad_seed, no_spec

        with serve_in_thread(store) as handle:
            old, bad_spec, bad_seed, no_spec = asyncio.run(scenario(handle.address))
        assert not old["ok"] and "requires protocol version 3" in old["error"]
        assert not bad_spec["ok"] and "unknown fault kind" in bad_spec["error"]
        assert not bad_seed["ok"] and "seed" in bad_seed["error"]
        assert not no_spec["ok"] and "spec" in no_spec["error"]
        assert store.chaos is None  # nothing leaked onto the store

    def test_shard_kill_under_wire_load_no_torn_reads(self):
        coords = synthetic_coordinates(64, seed=9)
        store = ShardedCoordinateStore.from_coordinates(
            coords, shards=2, index_kind="vptree"
        )
        queries = generate_queries(list(coords), 160, mix="mixed", seed=1, k=3)

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                await client.chaos(spec="shard-kill@40+60:shard=1", seed=0)
            report = await asyncio.to_thread(
                run_load, address, queries, mode="closed", concurrency=1
            )
            async with await AsyncCoordinateClient.connect(*address) as client:
                chaos = await client.chaos(report=True)
                await client.chaos(clear=True)
            return report, chaos["payload"]["report"]

        with serve_in_thread(store) as handle:
            report, chaos = asyncio.run(scenario(handle.address))

        assert report.errors == 0
        assert report.degraded > 0
        assert chaos["degraded_responses"] == report.degraded
        (fault,) = chaos["faults"]
        assert fault["fired"] and fault["cleared"] and not fault["forced_clear"]
        verdict = verify_chaos_responses(
            store.generation().snapshot, queries, report.responses, shards=2
        )
        assert verdict["checked"] == len(queries)
        assert verdict["mismatches"] == []
        assert verdict["partial_checked"] == report.degraded
        assert verdict["partial_matches"] == report.degraded

    def test_admission_burst_sheds_exact_window_over_wire(self):
        coords = synthetic_coordinates(32, seed=3)
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2)
        queries = generate_queries(list(coords), 60, mix="mixed", seed=0)

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                await client.chaos(spec="admission-burst@10+20:amount=4", seed=0)
            report = await asyncio.to_thread(
                run_load, address, queries, mode="closed", concurrency=1
            )
            async with await AsyncCoordinateClient.connect(*address) as client:
                await client.chaos(clear=True)
            return report

        with serve_in_thread(store, admission_limit=4) as handle:
            report = asyncio.run(scenario(handle.address))

        failed = [
            position
            for position, response in enumerate(report.responses)
            if not response.get("ok")
        ]
        assert failed == list(range(10, 30))
        assert report.error_kinds == {"overloaded": 20}
        assert report.overloaded == 20
        slo = evaluate(
            thresholds=SLOThresholds(),
            fault_windows=[(10, 30)],
            error_positions=failed,
            total_requests=report.query_count,
        )
        assert slo["passed"]

    def test_chaos_report_and_events_byte_identical_across_runs(self):
        def one_run():
            coords = synthetic_coordinates(48, seed=6)
            store = ShardedCoordinateStore.from_coordinates(
                coords, shards=2, index_kind="vptree"
            )
            queries = generate_queries(list(coords), 120, mix="mixed", seed=4)

            async def scenario(address):
                async with await AsyncCoordinateClient.connect(*address) as client:
                    await client.chaos(
                        spec=(
                            "shard-kill@30+40:shard=0,"
                            "admission-burst@80+10:amount=4"
                        ),
                        seed=11,
                    )
                report = await asyncio.to_thread(
                    run_load,
                    address,
                    queries,
                    mode="closed",
                    concurrency=1,
                    connections=1,
                    deterministic_timing=True,
                )
                async with await AsyncCoordinateClient.connect(*address) as client:
                    chaos = await client.chaos(report=True)
                    events = await client.op("events")
                    await client.chaos(clear=True)
                return report, chaos, events

            with serve_in_thread(store, admission_limit=4) as handle:
                report, chaos, events = asyncio.run(scenario(handle.address))
            chaos_bytes = json.dumps(chaos["payload"]["report"], sort_keys=True)
            event_bytes = "\n".join(
                json.dumps(event, sort_keys=True)
                for event in events["payload"]["events"]
            )
            return report, chaos_bytes, event_bytes

        first_report, first_chaos, first_events = one_run()
        second_report, second_chaos, second_events = one_run()
        assert first_chaos == second_chaos
        assert first_events == second_events
        assert first_report.checksum == second_report.checksum
        assert first_report.error_kinds == second_report.error_kinds


# ----------------------------------------------------------------------
# Client survival kit: typed errors, timeouts, idempotent close
# ----------------------------------------------------------------------
class TestClientSurvival:
    def slow_store(self, delay_ms=200.0):
        """A store whose scatter queries all pay an injected gray delay."""
        store = make_store(24, seed=2)
        injector = ChaosInjector(
            FaultSchedule.parse(f"shard-slow@0+1000000:shard=0:delay_ms={delay_ms}"),
            store,
        )
        injector.on_query("knn")  # fire the window immediately
        store.chaos = injector
        return store, injector

    def test_error_types_nest_under_connection_error(self):
        assert issubclass(RequestTimeout, TransportError)
        assert issubclass(ServerOverloaded, TransportError)
        assert issubclass(TransportError, ConnectionError)

    def test_request_timeout_is_typed_and_connection_survives(self):
        store, injector = self.slow_store(delay_ms=400.0)
        target = probe_query(24, seed=2).target

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                with pytest.raises(RequestTimeout, match="timed out after"):
                    await client.request(
                        {"op": "nearest", "target": target}, timeout=0.05
                    )
                injector.finish_serve_faults()
                store.chaos = None
                # Same connection, after the gray failure ends: usable.
                return await client.request(
                    {"op": "nearest", "target": target}, timeout=10.0
                )

        with serve_in_thread(store) as handle:
            response = asyncio.run(scenario(handle.address))
        assert response["ok"]

    def test_close_is_idempotent_and_safe_with_in_flight(self):
        store, injector = self.slow_store(delay_ms=100.0)
        target = probe_query(24, seed=2).target

        async def scenario(address):
            client = await AsyncCoordinateClient.connect(*address)
            pending = [
                asyncio.ensure_future(
                    client.request({"op": "nearest", "target": target})
                )
                for _ in range(4)
            ]
            await asyncio.sleep(0.02)
            # Concurrent closes: both must return, never deadlock.
            await asyncio.gather(client.close(), client.close())
            await client.close()  # and again, after completion
            outcomes = await asyncio.gather(*pending, return_exceptions=True)
            late = await asyncio.gather(
                client.request({"op": "nearest", "target": target}),
                return_exceptions=True,
            )
            return outcomes, late

        with serve_in_thread(store) as handle:
            outcomes, late = asyncio.run(
                asyncio.wait_for(scenario(handle.address), timeout=30.0)
            )
        injector.finish_serve_faults()
        store.chaos = None
        for outcome in outcomes:
            # Each in-flight request either completed before the teardown
            # or failed with the typed transport error -- never hung.
            assert isinstance(outcome, (dict, TransportError)), outcome
        assert any(isinstance(outcome, TransportError) for outcome in outcomes)
        assert isinstance(late[0], TransportError)  # closed client says so

    def test_daemon_shutdown_with_full_in_flight_window(self):
        """Every pipelined request completes or fails typed -- never hangs."""
        store, injector = self.slow_store(delay_ms=50.0)
        target = probe_query(24, seed=2).target
        handle = serve_in_thread(store)
        handle.start()

        async def scenario():
            client = await AsyncCoordinateClient.connect(*handle.address)
            pending = [
                asyncio.ensure_future(
                    client.request({"op": "nearest", "target": target})
                )
                for _ in range(8)
            ]
            await asyncio.sleep(0.02)
            shutdown = asyncio.ensure_future(client.op("shutdown"))
            outcomes = await asyncio.wait_for(
                asyncio.gather(*pending, shutdown, return_exceptions=True),
                timeout=30.0,
            )
            await client.close()
            return outcomes

        try:
            outcomes = asyncio.run(scenario())
        finally:
            handle.stop()
            injector.finish_serve_faults()
            store.chaos = None
        for outcome in outcomes:
            assert isinstance(outcome, (dict, TransportError)), outcome
        answered = [o for o in outcomes if isinstance(o, dict)]
        assert answered, "daemon shut down without answering anything"


# ----------------------------------------------------------------------
# CLI validation and scenario registration
# ----------------------------------------------------------------------
class TestChaosCli:
    @pytest.mark.parametrize(
        ("argv", "needle"),
        [
            (["load", "--port", "1", "--rate", "0"], "--rate"),
            (["load", "--port", "1", "--rate", "-3"], "--rate"),
            (["load", "--port", "1", "--concurrency", "0"], "--concurrency"),
            (["load", "--port", "1", "--connections", "0"], "--connections"),
            (["load", "--port", "1", "--request-timeout", "0"], "--request-timeout"),
            (["load", "--port", "1", "--request-timeout", "-1"], "--request-timeout"),
            (["load", "--port", "1", "--chaos", "warp@1+1"], "--chaos"),
            (["load", "--port", "1", "--chaos", "shard-kill@1+1"], "--chaos"),
            (["load", "--port", "1", "--mode", "open"], "--mode open requires --rate"),
        ],
    )
    def test_invalid_flags_exit_2_naming_the_parameter(self, argv, needle, capsys):
        from repro.server.cli import main

        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert needle in err
        assert len(err.strip().splitlines()) == 1

    def test_chaos_scenarios_registered_and_valid(self):
        from repro.scenarios.registry import get_scenario, scenario_names

        names = scenario_names()
        for name in (
            "chaos-shard-kill",
            "chaos-gray-slow",
            "chaos-publish-stall",
            "chaos-admission-burst",
        ):
            assert name in names
            spec = get_scenario(name)
            assert spec.workload.kind == "queries-live"
            assert spec.workload.validate() == []
            FaultSchedule.parse(str(spec.workload.param("chaos")))

    def test_workload_spec_rejects_bad_chaos(self):
        from repro.scenarios.spec import WorkloadSpec

        bad = WorkloadSpec(kind="queries-live", params={"chaos": "warp@1+1"})
        assert any("workload.chaos" in error for error in bad.validate())
        worse = WorkloadSpec(kind="queries-live", params={"chaos": 7})
        assert any("schedule string" in error for error in worse.validate())
        good = WorkloadSpec(
            kind="queries-live", params={"chaos": "shard-kill@1+1:shard=0"}
        )
        assert good.validate() == []
