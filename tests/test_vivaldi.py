"""Tests for the Vivaldi update rule and confidence building."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinate import Coordinate
from repro.core.vivaldi import (
    MAX_ERROR_ESTIMATE,
    MIN_ERROR_ESTIMATE,
    VivaldiConfig,
    VivaldiState,
    vivaldi_update,
)


class TestConfigValidation:
    def test_defaults_match_paper(self):
        config = VivaldiConfig()
        assert config.dimensions == 3
        assert config.cc == 0.25
        assert config.ce == 0.25
        assert config.error_margin_ms == 0.0

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            VivaldiConfig(dimensions=0)

    def test_rejects_out_of_range_cc(self):
        with pytest.raises(ValueError):
            VivaldiConfig(cc=0.0)
        with pytest.raises(ValueError):
            VivaldiConfig(cc=1.5)

    def test_rejects_out_of_range_ce(self):
        with pytest.raises(ValueError):
            VivaldiConfig(ce=-0.1)

    def test_rejects_negative_margin(self):
        with pytest.raises(ValueError):
            VivaldiConfig(error_margin_ms=-1.0)

    def test_rejects_out_of_range_initial_error(self):
        with pytest.raises(ValueError):
            VivaldiConfig(initial_error=2.0)


class TestInitialState:
    def test_initial_coordinate_is_origin(self):
        state = VivaldiState.initial(VivaldiConfig(dimensions=4))
        assert state.coordinate.is_origin()
        assert state.coordinate.dimensions == 4

    def test_initial_error_is_maximal(self):
        state = VivaldiState.initial(VivaldiConfig())
        assert state.error_estimate == 1.0
        assert state.confidence == 0.0

    def test_confidence_is_one_minus_error(self):
        state = VivaldiState(Coordinate.origin(3), error_estimate=0.3)
        assert state.confidence == pytest.approx(0.7)


class TestSingleUpdate:
    def setup_method(self):
        self.config = VivaldiConfig()
        self.state = VivaldiState.initial(self.config)

    def test_update_moves_coordinate_away_from_coincident_peer(self):
        new = vivaldi_update(self.state, Coordinate.origin(3), 1.0, 100.0, self.config)
        assert new.coordinate.magnitude() > 0.0

    def test_update_count_increments(self):
        new = vivaldi_update(self.state, Coordinate.origin(3), 1.0, 100.0, self.config)
        assert new.update_count == 1

    def test_update_is_pure(self):
        vivaldi_update(self.state, Coordinate.origin(3), 1.0, 100.0, self.config)
        assert self.state.coordinate.is_origin()
        assert self.state.update_count == 0

    def test_too_close_nodes_move_apart(self):
        state = VivaldiState(Coordinate([0.0, 0.0, 0.0]), 0.5)
        peer = Coordinate([10.0, 0.0, 0.0])
        new = vivaldi_update(state, peer, 0.5, 100.0, self.config)
        # Measured RTT (100) far exceeds predicted distance (10): i moves away from j.
        assert new.coordinate.euclidean_distance(peer) > state.coordinate.euclidean_distance(peer)

    def test_too_far_nodes_move_together(self):
        state = VivaldiState(Coordinate([0.0, 0.0, 0.0]), 0.5)
        peer = Coordinate([200.0, 0.0, 0.0])
        new = vivaldi_update(state, peer, 0.5, 50.0, self.config)
        assert new.coordinate.euclidean_distance(peer) < state.coordinate.euclidean_distance(peer)

    def test_perfect_prediction_keeps_coordinate(self):
        state = VivaldiState(Coordinate([0.0, 0.0, 0.0]), 0.5)
        peer = Coordinate([100.0, 0.0, 0.0])
        new = vivaldi_update(state, peer, 0.5, 100.0, self.config)
        assert new.coordinate.euclidean_distance(state.coordinate) == pytest.approx(0.0, abs=1e-9)

    def test_perfect_prediction_reduces_error_estimate(self):
        state = VivaldiState(Coordinate([0.0, 0.0, 0.0]), 0.5)
        peer = Coordinate([100.0, 0.0, 0.0])
        new = vivaldi_update(state, peer, 0.5, 100.0, self.config)
        assert new.error_estimate < state.error_estimate

    def test_bad_prediction_raises_error_estimate(self):
        state = VivaldiState(Coordinate([0.0, 0.0, 0.0]), 0.1)
        peer = Coordinate([10.0, 0.0, 0.0])
        new = vivaldi_update(state, peer, 0.1, 2000.0, self.config)
        assert new.error_estimate > state.error_estimate

    def test_confident_node_moves_less_than_unconfident_one(self):
        peer = Coordinate([50.0, 0.0, 0.0])
        confident = VivaldiState(Coordinate([0.0, 0.0, 0.0]), 0.05)
        unconfident = VivaldiState(Coordinate([0.0, 0.0, 0.0]), 0.95)
        moved_confident = vivaldi_update(confident, peer, 0.5, 200.0, self.config)
        moved_unconfident = vivaldi_update(unconfident, peer, 0.5, 200.0, self.config)
        assert (
            moved_confident.coordinate.euclidean_distance(confident.coordinate)
            < moved_unconfident.coordinate.euclidean_distance(unconfident.coordinate)
        )

    def test_error_estimate_stays_in_bounds(self):
        state = VivaldiState(Coordinate([1.0, 0.0, 0.0]), 0.99)
        new = vivaldi_update(state, Coordinate([2.0, 0.0, 0.0]), 0.99, 5000.0, self.config)
        assert MIN_ERROR_ESTIMATE <= new.error_estimate <= MAX_ERROR_ESTIMATE

    def test_non_finite_rtt_rejected(self):
        with pytest.raises(ValueError):
            vivaldi_update(self.state, Coordinate.origin(3), 1.0, float("nan"), self.config)
        with pytest.raises(ValueError):
            vivaldi_update(self.state, Coordinate.origin(3), 1.0, float("inf"), self.config)

    def test_zero_rtt_is_clamped_not_fatal(self):
        new = vivaldi_update(self.state, Coordinate.origin(3), 1.0, 0.0, self.config)
        assert math.isfinite(new.coordinate.magnitude())

    def test_random_direction_used_when_coincident(self):
        new = vivaldi_update(
            self.state,
            Coordinate.origin(3),
            1.0,
            100.0,
            self.config,
            random_direction=[0.0, 1.0, 0.0],
        )
        assert new.coordinate[0] == pytest.approx(0.0)
        assert new.coordinate[1] > 0.0


class TestConfidenceBuilding:
    def test_margin_treats_small_differences_as_exact(self):
        config = VivaldiConfig(error_margin_ms=3.0)
        state = VivaldiState(Coordinate([1.0, 0.0, 0.0]), 0.5)
        peer = Coordinate([0.0, 0.0, 0.0])
        # Predicted distance is 1 ms, observed 3 ms: within the margin, so
        # the error estimate must not increase.
        new = vivaldi_update(state, peer, 0.5, 3.0, config)
        assert new.error_estimate <= state.error_estimate

    def test_without_margin_small_jitter_erodes_confidence(self):
        config = VivaldiConfig(error_margin_ms=0.0)
        state = VivaldiState(Coordinate([1.0, 0.0, 0.0]), 0.05)
        peer = Coordinate([0.0, 0.0, 0.0])
        new = vivaldi_update(state, peer, 0.05, 3.0, config)
        assert new.error_estimate > state.error_estimate

    def test_margin_does_not_mask_large_errors(self):
        config = VivaldiConfig(error_margin_ms=3.0)
        state = VivaldiState(Coordinate([1.0, 0.0, 0.0]), 0.2)
        peer = Coordinate([0.0, 0.0, 0.0])
        new = vivaldi_update(state, peer, 0.2, 500.0, config)
        assert new.error_estimate > state.error_estimate


class TestHeight:
    def test_height_absorbs_access_link_latency(self):
        config = VivaldiConfig(use_height=True)
        state = VivaldiState(Coordinate([0.0, 0.0, 0.0], height=0.0), 0.8)
        peer = Coordinate([10.0, 0.0, 0.0], height=0.0)
        # Repeated observations of a latency much larger than the Euclidean
        # separation should grow the height term.
        for _ in range(50):
            state = vivaldi_update(state, peer, 0.5, 80.0, config)
        assert state.coordinate.height > 0.0

    def test_height_never_negative(self):
        config = VivaldiConfig(use_height=True)
        state = VivaldiState(Coordinate([0.0, 0.0, 0.0], height=5.0), 0.5)
        peer = Coordinate([100.0, 0.0, 0.0], height=0.0)
        for _ in range(50):
            state = vivaldi_update(state, peer, 0.5, 20.0, config)
            assert state.coordinate.height >= 0.0


class TestConvergence:
    def test_two_nodes_converge_to_true_distance(self):
        config = VivaldiConfig()
        a = VivaldiState.initial(config)
        b = VivaldiState.initial(config)
        true_rtt = 80.0
        for _ in range(300):
            a = vivaldi_update(a, b.coordinate, b.error_estimate, true_rtt, config)
            b = vivaldi_update(b, a.coordinate, a.error_estimate, true_rtt, config)
        assert a.coordinate.euclidean_distance(b.coordinate) == pytest.approx(true_rtt, rel=0.05)

    def test_error_estimates_fall_during_convergence(self):
        config = VivaldiConfig()
        a = VivaldiState.initial(config)
        b = VivaldiState.initial(config)
        for _ in range(300):
            a = vivaldi_update(a, b.coordinate, b.error_estimate, 60.0, config)
            b = vivaldi_update(b, a.coordinate, a.error_estimate, 60.0, config)
        assert a.error_estimate < 0.2
        assert b.error_estimate < 0.2

    def test_triangle_of_nodes_converges(self):
        config = VivaldiConfig(dimensions=2)
        rng = np.random.default_rng(5)
        # Start from small random positions: three nodes all at the exact
        # origin can fall into a collinear local minimum in 2-D.
        states = [
            VivaldiState(Coordinate(rng.normal(scale=5.0, size=2).tolist()), 1.0)
            for _ in range(3)
        ]
        rtts = {(0, 1): 50.0, (1, 2): 60.0, (0, 2): 70.0}
        for _ in range(3000):
            i = int(rng.integers(0, 3))
            j = int(rng.integers(0, 3))
            if i == j:
                continue
            rtt = rtts[(min(i, j), max(i, j))]
            direction = rng.normal(size=2)
            states[i] = vivaldi_update(
                states[i],
                states[j].coordinate,
                states[j].error_estimate,
                rtt,
                config,
                random_direction=direction.tolist(),
            )
        for (i, j), rtt in rtts.items():
            predicted = states[i].coordinate.euclidean_distance(states[j].coordinate)
            assert predicted == pytest.approx(rtt, rel=0.25)


class TestUpdateProperties:
    @given(
        st.lists(st.floats(min_value=-500, max_value=500), min_size=3, max_size=3),
        st.lists(st.floats(min_value=-500, max_value=500), min_size=3, max_size=3),
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=0.1, max_value=5000.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_update_always_produces_finite_bounded_state(
        self, own, peer, own_error, peer_error, rtt
    ):
        config = VivaldiConfig()
        state = VivaldiState(Coordinate(own), own_error)
        new = vivaldi_update(state, Coordinate(peer), peer_error, rtt, config)
        assert all(math.isfinite(c) for c in new.coordinate.components)
        assert MIN_ERROR_ESTIMATE <= new.error_estimate <= MAX_ERROR_ESTIMATE

    @given(
        st.floats(min_value=1.0, max_value=1000.0),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=50, deadline=None)
    def test_single_update_movement_is_bounded_by_cc_times_error(self, rtt, error):
        """One observation can move the coordinate by at most cc * |error|."""
        config = VivaldiConfig()
        state = VivaldiState(Coordinate([10.0, 0.0, 0.0]), error)
        peer = Coordinate([0.0, 0.0, 0.0])
        new = vivaldi_update(state, peer, error, rtt, config)
        movement = new.coordinate.euclidean_distance(state.coordinate)
        max_movement = config.cc * abs(rtt - state.coordinate.euclidean_distance(peer))
        assert movement <= max_movement + 1e-9
