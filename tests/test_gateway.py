"""Tests for the multi-tenant HTTP gateway (:mod:`repro.gateway`).

The load-bearing guarantees:

* the gateway config is validated strictly and totally -- every
  malformed field is a one-line :exc:`GatewayConfigError` naming the
  offending tenant and field;
* per-tenant token buckets are count-driven and deterministic: whether
  the N-th request of a stream is shed is a pure function of the stream,
  and the 429 carries the deterministic ``Retry-After`` hint;
* the hand-rolled HTTP/1.1 layer parses the supported subset exactly and
  rejects everything else loudly with bounded buffering;
* a gateway response body is byte-identical to the TCP daemon's frame
  body for the same request stream against the same store construction
  -- queries, admin ops, and application-level errors alike;
* authentication is enforced per tenant path: missing and unknown keys
  are 401, a real key against another tenant's namespace is 403, and
  every rejection is counted by reason;
* the existing load harness (and its oracle verification, and the CLI)
  drives the gateway unchanged through the ``connect`` factory.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time

import pytest

from repro.gateway.app import GatewayServer
from repro.gateway.client import GatewayClient, parse_base_url
from repro.gateway.config import (
    GatewayConfigError,
    TenantQuota,
    load_gateway_config,
    parse_gateway_config,
)
from repro.gateway.http import HttpError, read_request, render_response
from repro.gateway.ratelimit import TokenBucket
from repro.gateway.tenants import build_store
from repro.server.client import AsyncCoordinateClient
from repro.server.daemon import CoordinateServer
from repro.server.load import run_load_async, synthetic_coordinates
from repro.server.protocol import PROTOCOL_VERSION, encode_body, query_to_request
from repro.service.planner import Query, QueryPlanner
from repro.service.snapshot import SnapshotStore
from repro.service.workload import generate_queries, run_workload

ACME_KEY = "acme-secret-0001"
GLOBEX_KEY = "globex-secret-01"


def two_tenant_raw():
    """A valid two-tenant config document (mutate per test)."""
    return {
        "gateway": {"host": "127.0.0.1", "port": 0},
        "tenants": [
            {
                "name": "acme",
                "api_key": ACME_KEY,
                "shards": 2,
                "quota": None,
                "data": {"synthetic": 64, "seed": 3},
            },
            {
                "name": "globex",
                "api_key": GLOBEX_KEY,
                "shards": 2,
                "quota": None,
                "data": {"synthetic": 48, "seed": 5},
            },
        ],
    }


@pytest.fixture(scope="module")
def gateway():
    """One shared read-mostly gateway; mutating tests boot their own."""
    server = GatewayServer(parse_gateway_config(two_tenant_raw()))
    with server.run_in_thread() as handle:
        yield handle.address, server


def http_request(address, method, path, *, headers=(), body=b""):
    """One raw HTTP exchange; returns ``(status, headers, body)``."""

    async def run():
        reader, writer = await asyncio.open_connection(*address)
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {address[0]}:{address[1]}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        for name, value in headers:
            head += f"{name}: {value}\r\n"
        head += "\r\n"
        writer.write(head.encode("ascii") + body)
        await writer.drain()
        status_line = await reader.readuntil(b"\r\n")
        status = int(status_line.split()[1])
        response_headers = {}
        while True:
            line = await reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            name, _, value = line.decode("ascii").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        payload = await reader.readexactly(int(response_headers["content-length"]))
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass
        return status, response_headers, payload

    return asyncio.run(run())


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestGatewayConfig:
    def test_valid_config_parses_with_defaults(self):
        config = parse_gateway_config(two_tenant_raw())
        assert [spec.name for spec in config.tenants] == ["acme", "globex"]
        acme = config.tenant("acme")
        assert acme.shards == 2 and acme.index == "vptree" and acme.history == 4
        assert acme.quota is None  # explicit null disables rate limiting
        assert acme.data == ("synthetic", (64, 3))
        assert config.host == "127.0.0.1" and config.port == 0
        assert config.max_concurrent == 1024

    def test_quota_defaults_when_absent(self):
        raw = two_tenant_raw()
        del raw["tenants"][0]["quota"]
        acme = parse_gateway_config(raw).tenant("acme")
        assert acme.quota == TenantQuota()

    def test_gateway_defaults_flow_into_tenants(self):
        raw = two_tenant_raw()
        raw["gateway"]["shards"] = 3
        raw["gateway"]["quota"] = {"capacity": 5}
        del raw["tenants"][0]["shards"]
        del raw["tenants"][0]["quota"]
        config = parse_gateway_config(raw)
        acme = config.tenant("acme")
        assert acme.shards == 3
        assert acme.quota is not None and acme.quota.capacity == 5
        # Per-tenant values still win over the defaults.
        assert config.tenant("globex").shards == 2
        assert config.tenant("globex").quota is None

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda raw: raw.update(extra=1), "unknown top-level"),
            (lambda raw: raw.update(tenants=[]), "non-empty list"),
            (lambda raw: raw.pop("tenants"), "non-empty list"),
            (lambda raw: raw["tenants"][0].pop("name"), "'name' must be"),
            (
                lambda raw: raw["tenants"][0].update(name="Ac Me"),
                "lowercase letters",
            ),
            (lambda raw: raw["tenants"][0].update(api_key="short"), "at least 8"),
            (
                lambda raw: raw["tenants"][1].update(name="acme"),
                "names must be unique",
            ),
            (
                lambda raw: raw["tenants"][1].update(api_key=ACME_KEY),
                "globally unique",
            ),
            (lambda raw: raw["tenants"][0].update(color="red"), "unknown field"),
            (lambda raw: raw["tenants"][0].update(shards=0), "'shards' must be >= 1"),
            (lambda raw: raw["tenants"][0].update(index="btree"), "unknown index"),
            (
                lambda raw: raw["tenants"][0].update(quota={"capacity": 0}),
                "'capacity' must be >= 1",
            ),
            (
                lambda raw: raw["tenants"][0].update(quota={"burst": 2}),
                "unknown quota field",
            ),
            (
                lambda raw: raw["tenants"][0].update(
                    quota={"ms_per_request": 0.0}
                ),
                "positive number",
            ),
            (
                lambda raw: raw["tenants"][0].update(
                    data={"synthetic": 8, "snapshot": "x.json"}
                ),
                "exactly one of",
            ),
            (
                lambda raw: raw["tenants"][0].update(data={"synthetic": 1}),
                "integer >= 2",
            ),
            (
                lambda raw: raw["tenants"][0].update(
                    data={"snapshot": "x.json", "seed": 3}
                ),
                "only applies to synthetic",
            ),
            (
                lambda raw: raw["tenants"][0].update(data={"scenario": ""}),
                "non-empty string",
            ),
            (lambda raw: raw["gateway"].update(port=70000), "<= 65535"),
            (lambda raw: raw["gateway"].update(turbo=True), "gateway: unknown"),
        ],
    )
    def test_rejects_malformed_configs_naming_the_field(self, mutate, match):
        raw = two_tenant_raw()
        mutate(raw)
        with pytest.raises(GatewayConfigError, match=match):
            parse_gateway_config(raw)

    def test_root_must_be_an_object(self):
        with pytest.raises(GatewayConfigError, match="JSON object"):
            parse_gateway_config([1, 2])

    def test_load_wraps_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(GatewayConfigError, match="cannot read config"):
            load_gateway_config(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(GatewayConfigError, match="not valid JSON"):
            load_gateway_config(bad)
        good = tmp_path / "good.json"
        good.write_text(json.dumps(two_tenant_raw()))
        assert len(load_gateway_config(good).tenants) == 2


# ----------------------------------------------------------------------
# Deterministic token buckets
# ----------------------------------------------------------------------
class TestTokenBucket:
    QUOTA = TenantQuota(capacity=3, refill_amount=1, refill_every=4, ms_per_request=250.0)

    def replay(self, count):
        bucket = TokenBucket(self.QUOTA)
        return [bucket.try_acquire() for _ in range(count)]

    def test_shedding_is_a_pure_function_of_the_stream(self):
        assert self.replay(40) == self.replay(40)

    def test_grant_and_deficit_sequence(self):
        outcomes = self.replay(10)
        granted = [grant for grant, _ in outcomes]
        # Capacity 3 up front; request 4 refills one token and takes it;
        # then the bucket is dry until each 4-request tick mints one.
        assert granted == [True, True, True, True, False, False, False, True, False, False]
        # Deficit counts requests until the next refill tick.
        assert outcomes[4] == (False, 3)
        assert outcomes[5] == (False, 2)
        assert outcomes[6] == (False, 1)

    def test_refill_is_capped_at_capacity(self):
        bucket = TokenBucket(TenantQuota(capacity=2, refill_amount=5, refill_every=1))
        assert bucket.try_acquire() == (True, 0)
        for _ in range(10):
            bucket.try_acquire()
        assert bucket.tokens <= 2

    def test_retry_after_conversion(self):
        bucket = TokenBucket(self.QUOTA)
        assert bucket.retry_after_ms(3) == 750.0
        assert TokenBucket.retry_after_seconds(750.0) == 1
        assert TokenBucket.retry_after_seconds(1001.0) == 2
        assert TokenBucket.retry_after_seconds(0.0) == 1  # floor of one second


# ----------------------------------------------------------------------
# The HTTP/1.1 layer
# ----------------------------------------------------------------------
def parse_http(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestHttpLayer:
    def test_parses_request_line_headers_query_and_body(self):
        request = parse_http(
            b"POST /v1/acme/query?limit=3&x=a%20b HTTP/1.1\r\n"
            b"Host: h\r\n"
            b"X-API-Key: k1\r\n"
            b"Content-Length: 4\r\n"
            b"\r\n"
            b"toto"
        )
        assert request.method == "POST"
        assert request.path == "/v1/acme/query"
        assert request.query_params() == {"limit": "3", "x": "a b"}
        assert request.headers["x-api-key"] == "k1"
        assert request.body == b"toto"
        assert request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse_http(b"") is None

    def test_connection_close_and_http10_default(self):
        closed = parse_http(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not closed.keep_alive
        old = parse_http(b"GET / HTTP/1.0\r\n\r\n")
        assert not old.keep_alive

    @pytest.mark.parametrize(
        "raw, status, match",
        [
            (b"GET /\r\n\r\n", 400, "malformed request line"),
            (b"GET / HTTP/2\r\n\r\n", 400, "unsupported protocol version"),
            (b"get / HTTP/1.1\r\n\r\n", 400, "malformed method"),
            (b"GET example.com HTTP/1.1\r\n\r\n", 400, "request target"),
            (b"GET / HTTP/1.1\r\nno-colon\r\n\r\n", 400, "malformed header"),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
                "Transfer-Encoding",
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
                400,
                "malformed Content-Length",
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
                413,
                "exceeds",
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
                400,
                "truncated request body",
            ),
            (b"GET / HTTP/1.1\r\nHost: h\r\nbroken", 400, "truncated header"),
        ],
    )
    def test_rejects_malformed_requests(self, raw, status, match):
        with pytest.raises(HttpError, match=match) as info:
            parse_http(raw)
        assert info.value.status == status

    def test_oversized_request_line_rejected(self):
        with pytest.raises(HttpError) as info:
            parse_http(b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n")
        assert info.value.status == 400

    def test_render_response_is_byte_deterministic(self):
        rendered = render_response(
            429,
            b'{"ok":false}',
            extra_headers=(("Retry-After", "2"),),
            keep_alive=False,
        )
        assert rendered == (
            b"HTTP/1.1 429 Too Many Requests\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 12\r\n"
            b"Retry-After: 2\r\n"
            b"Connection: close\r\n"
            b"\r\n"
            b'{"ok":false}'
        )
        assert rendered == render_response(
            429,
            b'{"ok":false}',
            extra_headers=(("Retry-After", "2"),),
            keep_alive=False,
        )


# ----------------------------------------------------------------------
# Byte-identity with the TCP daemon
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_gateway_bodies_match_tcp_frame_bodies(self):
        """The tentpole guarantee: same stream, same bytes, both transports.

        Both servers build their store through :func:`build_store` from
        the same spec, and both clients issue the same request stream
        with aligned correlation ids, so even the ``cached`` flags line
        up.  Application-level errors (unknown node) are included: they
        are HTTP 200 with the engine's exact envelope.
        """
        config = parse_gateway_config(two_tenant_raw())
        gateway_server = GatewayServer(config)
        tcp_server = CoordinateServer(build_store(config.tenant("acme")))

        coords = synthetic_coordinates(64, seed=3)
        queries = generate_queries(list(coords), 150, mix="mixed", seed=11, k=4)
        requests = [query_to_request(query, None) for query in queries]
        requests += [
            {"op": "ping"},
            {"op": "version"},
            {"op": "nodes"},
            {"op": "knn", "target": "ghost", "k": 3},  # ok:false, still HTTP 200
            {"op": "centroid", "members": "oops"},  # malformed query, same deal
        ]

        async def scenario(gateway_address, tcp_address):
            gateway = GatewayClient(*gateway_address, "acme", ACME_KEY)
            tcp = await AsyncCoordinateClient.connect(*tcp_address)
            mismatches = []
            try:
                for position, request in enumerate(requests, start=1):
                    tcp_response = await tcp.request(dict(request))
                    status, body = await gateway.request_raw(
                        {**request, "id": position}
                    )
                    assert status == 200
                    if encode_body(tcp_response) != body:
                        mismatches.append((position, request.get("op")))
            finally:
                await gateway.close()
                await tcp.close()
            return mismatches

        with gateway_server.run_in_thread() as gw_handle:
            with tcp_server.run_in_thread() as tcp_handle:
                mismatches = asyncio.run(
                    scenario(gw_handle.address, tcp_handle.address)
                )
        assert mismatches == []


# ----------------------------------------------------------------------
# Authentication
# ----------------------------------------------------------------------
class TestAuthentication:
    def test_missing_key_is_401_with_challenge(self, gateway):
        address, server = gateway
        status, headers, body = http_request(address, "GET", "/v1/acme/health")
        assert status == 401
        assert "bearer" in headers["www-authenticate"].lower()
        envelope = json.loads(body)
        assert envelope["ok"] is False and "missing API key" in envelope["error"]

    def test_unknown_key_is_401(self, gateway):
        address, server = gateway
        status, _, body = http_request(
            address,
            "GET",
            "/v1/acme/health",
            headers=(("X-API-Key", "wrong-key-00000"),),
        )
        assert status == 401
        assert json.loads(body)["error"] == "unknown API key"

    def test_valid_key_for_wrong_tenant_is_403(self, gateway):
        address, server = gateway
        status, _, body = http_request(
            address,
            "GET",
            "/v1/acme/health",
            headers=(("X-API-Key", GLOBEX_KEY),),
        )
        assert status == 403
        assert "not authorized for tenant 'acme'" in json.loads(body)["error"]

    def test_bearer_and_x_api_key_both_work(self, gateway):
        address, _ = gateway
        for headers in (
            (("Authorization", f"Bearer {ACME_KEY}"),),
            (("X-API-Key", ACME_KEY),),
        ):
            status, _, body = http_request(
                address, "GET", "/v1/acme/health", headers=headers
            )
            assert status == 200
            assert json.loads(body)["ok"] is True

    def test_auth_failures_are_counted_by_reason(self, gateway):
        address, server = gateway
        http_request(address, "GET", "/v1/acme/health")
        http_request(
            address,
            "GET",
            "/v1/acme/health",
            headers=(("X-API-Key", "wrong-key-00000"),),
        )
        http_request(
            address, "GET", "/v1/acme/health", headers=(("X-API-Key", GLOBEX_KEY),)
        )
        registry = server.registry
        for reason in ("missing_key", "unknown_key", "wrong_tenant"):
            assert (
                registry.counter("gateway_auth_failures_total", reason=reason).value
                >= 1
            )


# ----------------------------------------------------------------------
# Routes and HTTP semantics
# ----------------------------------------------------------------------
class TestRoutes:
    def test_healthz_needs_no_auth(self, gateway):
        address, _ = gateway
        status, _, body = http_request(address, "GET", "/healthz")
        assert status == 200
        envelope = json.loads(body)
        assert envelope == {"ok": True, "tenants": 2, "gateway": "repro"}

    def test_gateway_metrics_render_prometheus(self, gateway):
        address, _ = gateway
        http_request(address, "GET", "/healthz")  # ensure at least one count
        status, headers, body = http_request(address, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"] == "text/plain; version=0.0.4"
        text = body.decode()
        assert "gateway_requests_total" in text
        assert 'route="healthz"' in text

    def test_tenant_metrics_are_the_tenant_registry(self, gateway):
        address, server = gateway
        status, headers, body = http_request(
            address,
            "GET",
            "/v1/acme/metrics",
            headers=(("X-API-Key", ACME_KEY),),
        )
        assert status == 200
        assert headers["content-type"] == "text/plain; version=0.0.4"
        assert body.decode() == server.tenants.get("acme").registry.render_prometheus()

    def test_health_route_and_section_filter(self, gateway):
        address, _ = gateway
        status, _, body = http_request(
            address, "GET", "/v1/acme/health", headers=(("X-API-Key", ACME_KEY),)
        )
        assert status == 200
        full = json.loads(body)
        assert full["ok"] and isinstance(full["payload"], dict)
        status, _, body = http_request(
            address,
            "GET",
            "/v1/acme/health?sections=relative_error",
            headers=(("X-API-Key", ACME_KEY),),
        )
        restricted = json.loads(body)
        assert set(restricted["payload"]) == {"relative_error"}

    def test_events_route_with_limit(self, gateway):
        address, _ = gateway
        status, _, body = http_request(
            address,
            "GET",
            "/v1/acme/events?limit=2",
            headers=(("X-API-Key", ACME_KEY),),
        )
        assert status == 200
        envelope = json.loads(body)
        assert envelope["ok"] and len(envelope["payload"]["events"]) <= 2
        status, _, body = http_request(
            address,
            "GET",
            "/v1/acme/events?limit=soon",
            headers=(("X-API-Key", ACME_KEY),),
        )
        assert status == 400
        assert "malformed limit" in json.loads(body)["error"]

    def test_unknown_routes_are_404(self, gateway):
        address, _ = gateway
        assert http_request(address, "GET", "/nope")[0] == 404
        status, _, _ = http_request(
            address, "GET", "/v1/acme/bogus", headers=(("X-API-Key", ACME_KEY),)
        )
        assert status == 404

    def test_wrong_method_is_405_with_allow(self, gateway):
        address, _ = gateway
        status, headers, _ = http_request(address, "POST", "/healthz")
        assert status == 405 and headers["allow"] == "GET"
        status, headers, _ = http_request(
            address, "GET", "/v1/acme/query", headers=(("X-API-Key", ACME_KEY),)
        )
        assert status == 405 and headers["allow"] == "POST"

    def test_malformed_json_body_is_400(self, gateway):
        address, _ = gateway
        status, _, body = http_request(
            address,
            "POST",
            "/v1/acme/query",
            headers=(("X-API-Key", ACME_KEY),),
            body=b"{nope",
        )
        assert status == 400
        assert "not valid JSON" in json.loads(body)["error"]

    def test_malformed_http_closes_the_connection(self, gateway):
        address, _ = gateway

        async def run():
            reader, writer = await asyncio.open_connection(*address)
            writer.write(b"BROKEN\r\n\r\n")
            await writer.drain()
            status_line = await reader.readuntil(b"\r\n")
            rest = await reader.read()  # server closes after answering
            writer.close()
            await writer.wait_closed()
            return status_line, rest

        status_line, rest = asyncio.run(run())
        assert b"400" in status_line
        assert b"Connection: close" in rest

    def test_shutdown_op_is_rejected_on_every_route(self, gateway):
        address, _ = gateway

        async def run():
            async with GatewayClient(*address, "acme", ACME_KEY) as client:
                return await client.op("shutdown")

        response = asyncio.run(run())
        assert response["ok"] is False
        assert "shutdown is not available" in response["error"]

    def test_publish_and_chaos_ops_are_redirected_off_the_query_route(
        self, gateway
    ):
        address, _ = gateway
        auth = (("X-API-Key", ACME_KEY),)
        for op in ("publish", "chaos"):
            status, _, body = http_request(
                address,
                "POST",
                "/v1/acme/query",
                headers=auth,
                body=encode_body({"id": 1, "op": op}),
            )
            assert status == 200
            envelope = json.loads(body)
            assert envelope["ok"] is False
            assert f"must use POST /v1/acme/{op}" in envelope["error"]
        # And the mismatch the other way: a non-publish op on /publish.
        status, _, body = http_request(
            address,
            "POST",
            "/v1/acme/publish",
            headers=auth,
            body=encode_body({"id": 9, "op": "ping"}),
        )
        assert status == 200
        envelope = json.loads(body)
        assert envelope["ok"] is False
        assert "publish route expects" in envelope["error"]

    def test_keep_alive_serves_many_requests_per_connection(self, gateway):
        address, _ = gateway

        async def run():
            async with GatewayClient(*address, "acme", ACME_KEY) as client:
                responses = [await client.op("ping") for _ in range(5)]
            return responses

        responses = asyncio.run(run())
        assert all(response["ok"] for response in responses)
        assert [response["id"] for response in responses] == [1, 2, 3, 4, 5]


# ----------------------------------------------------------------------
# Quotas
# ----------------------------------------------------------------------
class TestQuota:
    QUOTA = {"capacity": 3, "refill_amount": 1, "refill_every": 4, "ms_per_request": 250.0}

    def make_server(self):
        raw = {
            "tenants": [
                {
                    "name": "tiny",
                    "api_key": "tiny-key-000001",
                    "shards": 1,
                    "quota": dict(self.QUOTA),
                    "data": {"synthetic": 16, "seed": 3},
                }
            ]
        }
        return GatewayServer(parse_gateway_config(raw))

    def test_shedding_matches_the_bucket_replay_exactly(self):
        server = self.make_server()
        reference = TokenBucket(TenantQuota(**self.QUOTA))

        async def scenario(address):
            outcomes = []
            async with GatewayClient(*address, "tiny", "tiny-key-000001") as client:
                for position in range(1, 13):
                    status, body = await client.request_raw(
                        {"id": position, "op": "ping"}
                    )
                    outcomes.append((status, json.loads(body)))
            return outcomes

        with server.run_in_thread() as handle:
            outcomes = asyncio.run(scenario(handle.address))

        for position, (status, envelope) in enumerate(outcomes, start=1):
            granted, deficit = reference.try_acquire()
            if granted:
                assert status == 200, f"request {position} should be granted"
                assert envelope["ok"] is True
            else:
                assert status == 429, f"request {position} should be shed"
                assert envelope["ok"] is False
                assert envelope["overloaded"] is True
                assert envelope["retry_after_ms"] == deficit * 250.0
                assert envelope["id"] == position

    def test_429_carries_deterministic_retry_after_header(self):
        server = self.make_server()

        async def scenario(address):
            async with GatewayClient(*address, "tiny", "tiny-key-000001") as client:
                for position in range(1, 5):  # drain capacity + first refill
                    await client.request_raw({"id": position, "op": "ping"})
                return await client.request_raw({"id": 5, "op": "ping"})

        with server.run_in_thread() as handle:
            address = handle.address
            status, body = asyncio.run(scenario(address))
            envelope = json.loads(body)
            assert status == 429
            expected_seconds = max(
                1, math.ceil(envelope["retry_after_ms"] / 1000.0)
            )
            # Re-read the header via a raw exchange on the same stream
            # position: a fresh server gives the same deterministic shed.
        server = self.make_server()
        with server.run_in_thread() as handle:
            for position in range(1, 5):
                http_request(
                    handle.address,
                    "POST",
                    "/v1/tiny/query",
                    headers=(("X-API-Key", "tiny-key-000001"),),
                    body=encode_body({"id": position, "op": "ping"}),
                )
            status, headers, _ = http_request(
                handle.address,
                "POST",
                "/v1/tiny/query",
                headers=(("X-API-Key", "tiny-key-000001"),),
                body=encode_body({"id": 5, "op": "ping"}),
            )
        assert status == 429
        assert headers["retry-after"] == str(expected_seconds)

    def test_get_routes_never_consume_quota(self):
        server = self.make_server()

        with server.run_in_thread() as handle:
            bucket = server.tenants.get("tiny").bucket
            assert bucket is not None
            before = bucket.tokens
            for _ in range(6):
                status, _, _ = http_request(
                    handle.address,
                    "GET",
                    "/v1/tiny/health",
                    headers=(("X-API-Key", "tiny-key-000001"),),
                )
                assert status == 200
                http_request(
                    handle.address,
                    "GET",
                    "/v1/tiny/metrics",
                    headers=(("X-API-Key", "tiny-key-000001"),),
                )
            assert bucket.tokens == before

    def test_shed_is_counted_and_logged_for_the_tenant(self):
        server = self.make_server()

        async def scenario(address):
            async with GatewayClient(*address, "tiny", "tiny-key-000001") as client:
                for position in range(1, 6):
                    await client.request_raw({"id": position, "op": "ping"})

        with server.run_in_thread() as handle:
            asyncio.run(scenario(handle.address))
            tenant = server.tenants.get("tiny")
            assert tenant.registry.counter("gateway_quota_shed_total").value >= 1
            assert (
                server.registry.counter("gateway_shed_total", tenant="tiny").value
                >= 1
            )
            events = [
                event
                for event in tenant.store.events.tail()
                if event["kind"] == "quota_shed"
            ]
        assert events and events[0]["op"] == "ping"


# ----------------------------------------------------------------------
# The load harness and the CLI over the gateway
# ----------------------------------------------------------------------
class TestLoadAndCli:
    def test_run_load_async_checksum_matches_linear_oracle(self, gateway):
        address, _ = gateway
        coords = synthetic_coordinates(64, seed=3)
        queries = generate_queries(list(coords), 200, mix="mixed", seed=11, k=4)
        oracle_store = SnapshotStore.from_coordinates(
            coords, index_kind="linear", source="t"
        )
        oracle = run_workload(
            QueryPlanner(oracle_store, clock=lambda: 0.0, timer=lambda: 0.0),
            queries,
            timer=lambda: 0.0,
        )

        async def connect():
            return await GatewayClient.connect(
                f"http://{address[0]}:{address[1]}", "acme", ACME_KEY
            )

        report = asyncio.run(
            run_load_async(
                address,
                queries,
                concurrency=4,
                connections=2,
                deterministic_timing=True,
                collect_health=False,
                connect=connect,
            )
        )
        assert report.errors == 0
        assert report.checksum == oracle.checksum

    def test_load_cli_gateway_mode_verifies_oracle(self, gateway, capsys):
        from repro.server.cli import main

        address, _ = gateway
        rc = main(
            [
                "load",
                "--gateway", f"http://{address[0]}:{address[1]}",
                "--tenant", "acme",
                "--api-key", ACME_KEY,
                "--count", "80",
                "--mix", "mixed",
                "--verify-oracle",
                "--deterministic-timing",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "identical: True" in out

    @pytest.mark.parametrize(
        "extra, match",
        [
            (["--gateway", "http://h:1"], "requires --tenant and --api-key"),
            (
                ["--gateway", "http://h:1", "--tenant", "t", "--api-key", "k",
                 "--port", "9"],
                "mutually exclusive",
            ),
            (
                ["--gateway", "http://h:1", "--tenant", "t", "--api-key", "k",
                 "--shutdown"],
                "cannot stop the shared process",
            ),
            (["--port", "9", "--tenant", "t"], "only apply with --gateway"),
            ([], "--port is required"),
        ],
    )
    def test_load_cli_rejects_inconsistent_transport_flags(
        self, capsys, extra, match
    ):
        from repro.server.cli import main

        assert main(["load", *extra]) == 2
        assert match in capsys.readouterr().err

    def test_gateway_cli_ready_file_and_clean_stop(self, tmp_path, capsys):
        from repro.analysis.cli import main

        config_path = tmp_path / "gateway.json"
        config_path.write_text(json.dumps(two_tenant_raw()))
        ready = tmp_path / "ready.txt"
        rc: list = []

        def run_gateway():
            rc.append(
                main(
                    [
                        "gateway",
                        "--config", str(config_path),
                        "--ready-file", str(ready),
                        "--max-seconds", "2.0",
                    ]
                )
            )

        thread = threading.Thread(target=run_gateway)
        thread.start()
        try:
            deadline = time.time() + 15.0
            fields: list = []
            while time.time() < deadline:
                if ready.exists():
                    fields = ready.read_text().split()
                    if len(fields) == 2:
                        break
                time.sleep(0.01)
            assert len(fields) == 2, "gateway never wrote the ready file"
            host, port = fields[0], int(fields[1])
            status, _, body = http_request((host, port), "GET", "/healthz")
            assert status == 200 and json.loads(body)["ok"] is True
        finally:
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert rc == [0]
        out = capsys.readouterr().out
        assert "gateway serving 2 tenant(s)" in out
        assert "gateway stopped cleanly" in out

    def test_gateway_cli_rejects_bad_config_with_one_line(self, tmp_path, capsys):
        from repro.analysis.cli import main

        config_path = tmp_path / "bad.json"
        config_path.write_text('{"tenants": []}')
        assert main(["gateway", "--config", str(config_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1


# ----------------------------------------------------------------------
# The gateway client
# ----------------------------------------------------------------------
class TestGatewayClient:
    @pytest.mark.parametrize(
        "url, match",
        [
            ("https://h:1", "must start with http://"),
            ("http://hostonly", "explicit port"),
            ("http://:8080", "needs a host"),
            ("http://h:eight", "explicit port"),
        ],
    )
    def test_parse_base_url_rejects_bad_urls(self, url, match):
        with pytest.raises(ValueError, match=match):
            parse_base_url(url)

    def test_parse_base_url_accepts_trailing_path(self):
        assert parse_base_url("http://127.0.0.1:8080") == ("127.0.0.1", 8080)
        assert parse_base_url("http://example:99/") == ("example", 99)

    def test_bad_key_surfaces_as_the_error_envelope(self, gateway):
        address, _ = gateway

        async def run():
            async with GatewayClient(*address, "acme", "not-the-key-0000") as client:
                return await client.op("ping")

        response = asyncio.run(run())
        assert response["ok"] is False
        assert response["error"] == "unknown API key"

    def test_client_reconnects_after_server_side_close(self, gateway):
        address, _ = gateway

        async def run():
            async with GatewayClient(*address, "acme", ACME_KEY) as client:
                first = await client.op("ping")
                client._drop_connection()  # simulate a lost connection
                second = await client.op("ping")
            return first, second

        first, second = asyncio.run(run())
        assert first["ok"] and second["ok"]
