"""Unit and property tests for the coordinate algebra."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordinate import Coordinate, centroid

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
vectors_3d = st.lists(finite_floats, min_size=3, max_size=3)


class TestConstruction:
    def test_components_are_stored_as_floats(self):
        coord = Coordinate([1, 2, 3])
        assert coord.components == (1.0, 2.0, 3.0)

    def test_origin_has_zero_components(self):
        assert Coordinate.origin(3).components == (0.0, 0.0, 0.0)

    def test_origin_is_origin(self):
        assert Coordinate.origin(4).is_origin()

    def test_non_origin_detected(self):
        assert not Coordinate([0.0, 0.1]).is_origin()

    def test_dimension_property(self):
        assert Coordinate([1.0, 2.0]).dimensions == 2

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            Coordinate([])

    def test_zero_dimension_origin_rejected(self):
        with pytest.raises(ValueError):
            Coordinate.origin(0)

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            Coordinate([1.0], height=-1.0)

    def test_nan_component_rejected(self):
        with pytest.raises(ValueError):
            Coordinate([float("nan"), 0.0])

    def test_infinite_component_rejected(self):
        with pytest.raises(ValueError):
            Coordinate([float("inf"), 0.0])

    def test_coordinates_are_immutable(self):
        coord = Coordinate([1.0, 2.0])
        with pytest.raises(Exception):
            coord.height = 5.0  # type: ignore[misc]


class TestAlgebra:
    def test_addition(self):
        assert (Coordinate([1.0, 2.0]) + Coordinate([3.0, 4.0])).components == (4.0, 6.0)

    def test_subtraction(self):
        assert (Coordinate([5.0, 7.0]) - Coordinate([2.0, 3.0])).components == (3.0, 4.0)

    def test_scale(self):
        assert Coordinate([1.0, -2.0]).scale(3.0).components == (3.0, -6.0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Coordinate([1.0]) + Coordinate([1.0, 2.0])

    def test_displaced_moves_along_direction(self):
        origin = Coordinate.origin(2)
        moved = origin.displaced(Coordinate([1.0, 0.0]), 5.0)
        assert moved.components == (5.0, 0.0)

    def test_with_height_replaces_height(self):
        coord = Coordinate([1.0, 1.0], height=2.0)
        assert coord.with_height(7.0).height == 7.0
        assert coord.with_height(7.0).components == coord.components

    def test_height_subtraction_clamps_at_zero(self):
        a = Coordinate([0.0], height=1.0)
        b = Coordinate([0.0], height=5.0)
        assert (a - b).height == 0.0

    def test_iteration_and_indexing(self):
        coord = Coordinate([1.0, 2.0, 3.0])
        assert list(coord) == [1.0, 2.0, 3.0]
        assert coord[1] == 2.0
        assert len(coord) == 3


class TestMetric:
    def test_euclidean_distance_matches_hand_computation(self):
        assert Coordinate([0.0, 0.0]).euclidean_distance(Coordinate([3.0, 4.0])) == 5.0

    def test_distance_includes_heights(self):
        a = Coordinate([0.0, 0.0], height=2.0)
        b = Coordinate([3.0, 4.0], height=1.0)
        assert a.distance(b) == pytest.approx(8.0)

    def test_distance_to_self_is_height_only(self):
        a = Coordinate([1.0, 1.0], height=3.0)
        assert a.distance(a) == pytest.approx(6.0)

    def test_unit_vector_has_unit_norm(self):
        u = Coordinate([3.0, 4.0]).unit_vector_toward(Coordinate([0.0, 0.0]))
        assert u.magnitude() == pytest.approx(1.0)

    def test_unit_vector_points_from_other_to_self(self):
        u = Coordinate([2.0, 0.0]).unit_vector_toward(Coordinate([0.0, 0.0]))
        assert u.components == pytest.approx((1.0, 0.0))

    def test_unit_vector_for_identical_points_uses_fallback(self):
        u = Coordinate([1.0, 1.0]).unit_vector_toward(Coordinate([1.0, 1.0]))
        assert u.magnitude() == pytest.approx(1.0)

    def test_unit_vector_for_identical_points_uses_supplied_direction(self):
        u = Coordinate([1.0, 1.0]).unit_vector_toward(
            Coordinate([1.0, 1.0]), rng_direction=[0.0, 2.0]
        )
        assert u.components == pytest.approx((0.0, 1.0))

    def test_unit_vector_rejects_zero_direction(self):
        with pytest.raises(ValueError):
            Coordinate([1.0]).unit_vector_toward(Coordinate([1.0]), rng_direction=[0.0])

    def test_unit_vector_rejects_mismatched_direction(self):
        with pytest.raises(ValueError):
            Coordinate([1.0, 1.0]).unit_vector_toward(
                Coordinate([1.0, 1.0]), rng_direction=[1.0]
            )


class TestCentroid:
    def test_centroid_of_single_point_is_the_point(self):
        point = Coordinate([1.0, 2.0, 3.0])
        assert centroid([point]).components == point.components

    def test_centroid_is_arithmetic_mean(self):
        points = [Coordinate([0.0, 0.0]), Coordinate([2.0, 4.0])]
        assert centroid(points).components == (1.0, 2.0)

    def test_centroid_averages_heights(self):
        points = [Coordinate([0.0], height=2.0), Coordinate([0.0], height=4.0)]
        assert centroid(points).height == pytest.approx(3.0)

    def test_centroid_of_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_centroid_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            centroid([Coordinate([1.0]), Coordinate([1.0, 2.0])])


class TestMetricProperties:
    """Hypothesis property tests: the space must actually be a metric."""

    @given(vectors_3d, vectors_3d)
    @settings(max_examples=60, deadline=None)
    def test_distance_symmetry(self, a, b):
        ca, cb = Coordinate(a), Coordinate(b)
        assert ca.euclidean_distance(cb) == pytest.approx(cb.euclidean_distance(ca))

    @given(vectors_3d, vectors_3d, vectors_3d)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        ca, cb, cc = Coordinate(a), Coordinate(b), Coordinate(c)
        assert ca.euclidean_distance(cc) <= (
            ca.euclidean_distance(cb) + cb.euclidean_distance(cc) + 1e-6
        )

    @given(vectors_3d)
    @settings(max_examples=60, deadline=None)
    def test_distance_to_self_is_zero(self, a):
        coord = Coordinate(a)
        assert coord.euclidean_distance(coord) == 0.0

    @given(vectors_3d, vectors_3d)
    @settings(max_examples=60, deadline=None)
    def test_distance_non_negative(self, a, b):
        assert Coordinate(a).euclidean_distance(Coordinate(b)) >= 0.0

    @given(vectors_3d, vectors_3d)
    @settings(max_examples=60, deadline=None)
    def test_addition_then_subtraction_roundtrips(self, a, b):
        ca, cb = Coordinate(a), Coordinate(b)
        roundtrip = (ca + cb) - cb
        for got, expected in zip(roundtrip.components, ca.components):
            assert got == pytest.approx(expected, abs=1e-6)

    @given(st.lists(vectors_3d, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_centroid_lies_within_bounding_box(self, vectors):
        points = [Coordinate(v) for v in vectors]
        mid = centroid(points)
        for dim in range(3):
            values = [p[dim] for p in points]
            assert min(values) - 1e-9 <= mid[dim] <= max(values) + 1e-9
