"""Cross-module integration tests: the paper's qualitative claims end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.static_matrix import StaticMatrixExperiment
from repro.core.config import NodeConfig
from repro.latency.matrix import LatencyMatrix
from repro.latency.planetlab import DatasetParameters, PlanetLabDataset
from repro.netsim.replay import replay_trace
from repro.netsim.runner import SimulationConfig, run_simulation


@pytest.fixture(scope="module")
def shared_universe():
    dataset = PlanetLabDataset.generate(14, seed=21)
    trace = dataset.generate_trace(duration_s=700.0, ping_interval_s=2.0, seed=21)
    return dataset, trace


class TestFilterClaims:
    """Section IV: the MP filter improves both accuracy and stability."""

    def test_mp_filter_improves_both_metrics_over_raw(self, shared_universe):
        _, trace = shared_universe
        raw = replay_trace(trace, NodeConfig.preset("raw")).snapshot
        mp = replay_trace(trace, NodeConfig.preset("mp")).snapshot
        assert mp.median_of_median_error < raw.median_of_median_error
        assert mp.aggregate_system_instability < raw.aggregate_system_instability

    def test_mp_filter_cuts_the_instability_tail(self, shared_universe):
        _, trace = shared_universe
        raw = replay_trace(trace, NodeConfig.preset("raw")).collector
        mp = replay_trace(trace, NodeConfig.preset("mp")).collector
        raw_tail = max(raw.per_node_instability(level="system").values())
        mp_tail = max(mp.per_node_instability(level="system").values())
        assert mp_tail < raw_tail


class TestApplicationLevelClaims:
    """Section V: application updates gain stability without losing accuracy."""

    def test_energy_heuristic_reduces_application_instability(self, shared_universe):
        _, trace = shared_universe
        mp = replay_trace(trace, NodeConfig.preset("mp")).snapshot
        energy = replay_trace(trace, NodeConfig.preset("mp_energy")).snapshot
        assert (
            energy.aggregate_application_instability
            < 0.5 * mp.aggregate_application_instability
        )

    def test_energy_heuristic_keeps_accuracy_within_reason(self, shared_universe):
        _, trace = shared_universe
        mp = replay_trace(trace, NodeConfig.preset("mp")).snapshot
        energy = replay_trace(trace, NodeConfig.preset("mp_energy")).snapshot
        assert (
            energy.median_of_median_application_error
            < 2.0 * mp.median_of_median_application_error
        )

    def test_energy_heuristic_reduces_update_frequency(self, shared_universe):
        _, trace = shared_universe
        mp = replay_trace(trace, NodeConfig.preset("mp")).snapshot
        energy = replay_trace(trace, NodeConfig.preset("mp_energy")).snapshot
        assert (
            energy.application_updates_per_node_per_s
            < 0.2 * mp.application_updates_per_node_per_s
        )

    def test_relative_heuristic_also_stabilises(self, shared_universe):
        _, trace = shared_universe
        mp = replay_trace(trace, NodeConfig.preset("mp")).snapshot
        relative = replay_trace(trace, NodeConfig.preset("mp_relative")).snapshot
        assert (
            relative.aggregate_application_instability
            < mp.aggregate_application_instability
        )


class TestDeploymentClaims:
    """Section VI: the full protocol simulation reproduces the same ordering."""

    def test_full_stack_ordering_of_instability(self):
        dataset = PlanetLabDataset.generate(12, seed=33)
        snapshots = {}
        for label, preset in (("raw", "raw"), ("mp", "mp"), ("mp_energy", "mp_energy")):
            result = run_simulation(
                SimulationConfig(
                    nodes=12, duration_s=900.0, node_config=NodeConfig.preset(preset), seed=33
                ),
                dataset=dataset,
            )
            snapshots[label] = result.snapshot
        assert (
            snapshots["mp_energy"].aggregate_application_instability
            < snapshots["mp"].aggregate_application_instability
            < snapshots["raw"].aggregate_application_instability
        )

    def test_full_stack_error_improves_with_filter(self):
        dataset = PlanetLabDataset.generate(12, seed=34)
        results = {}
        for label, preset in (("raw", "raw"), ("mp", "mp")):
            result = run_simulation(
                SimulationConfig(
                    nodes=12, duration_s=900.0, node_config=NodeConfig.preset(preset), seed=34
                ),
                dataset=dataset,
            )
            results[label] = result.collector
        raw_p95 = np.median(
            list(results["raw"].per_node_error_percentile(95.0, level="application").values())
        )
        mp_p95 = np.median(
            list(results["mp"].per_node_error_percentile(95.0, level="application").values())
        )
        assert mp_p95 < raw_p95


class TestStaticMatrixContrast:
    """The idealised evaluation setting really does hide the problem."""

    def test_vivaldi_on_a_static_matrix_is_accurate_without_any_filter(self):
        matrix = LatencyMatrix.from_topology(
            PlanetLabDataset.generate(12, seed=40).topology
        )
        experiment = StaticMatrixExperiment(matrix, NodeConfig.preset("raw"), seed=40)
        result = experiment.run(rounds=300)
        assert result.median_relative_error < 0.3

    def test_noiseless_stream_needs_no_filter_either(self):
        dataset = PlanetLabDataset.generate(
            10, seed=41, parameters=DatasetParameters(noiseless=True)
        )
        trace = dataset.generate_trace(duration_s=1200.0, ping_interval_s=2.0, seed=41)
        raw = replay_trace(trace, NodeConfig.preset("raw")).snapshot
        # Residual error reflects the intrinsic embedding error of the
        # topology (triangle-inequality violations), not instability.
        assert raw.median_of_median_error < 0.35
