"""Tests for the per-link latency filters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filters import (
    EWMAFilter,
    FilterBank,
    LatencyFilter,
    MedianFilter,
    MovingPercentileFilter,
    NoFilter,
    ThresholdFilter,
    make_filter,
    percentile_of,
)

latency_samples = st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False)


class TestPercentileOf:
    def test_single_value(self):
        assert percentile_of([5.0], 25.0) == 5.0

    def test_median_of_two_is_midpoint(self):
        assert percentile_of([1.0, 3.0], 50.0) == 2.0

    def test_matches_numpy_linear_interpolation(self):
        data = [7.0, 1.0, 9.0, 4.0, 2.0]
        for p in (0.0, 25.0, 50.0, 75.0, 95.0, 100.0):
            assert percentile_of(data, p) == pytest.approx(float(np.percentile(data, p)))

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            percentile_of([], 50.0)

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ValueError):
            percentile_of([1.0], 120.0)


class TestMovingPercentileFilter:
    def test_paper_default_is_h4_p25(self):
        mp = MovingPercentileFilter()
        assert mp.history == 4
        assert mp.percentile == 25.0

    def test_first_sample_passes_through(self):
        mp = MovingPercentileFilter(history=4, percentile=25.0)
        assert mp.update(100.0) == 100.0

    def test_output_is_low_percentile_of_window(self):
        mp = MovingPercentileFilter(history=4, percentile=25.0)
        for sample in (100.0, 110.0, 90.0):
            mp.update(sample)
        value = mp.update(2000.0)
        # The outlier must not dominate: output stays near the low quartile.
        assert value is not None and value < 110.0

    def test_window_slides(self):
        mp = MovingPercentileFilter(history=2, percentile=50.0)
        mp.update(10.0)
        mp.update(20.0)
        assert mp.update(30.0) == pytest.approx(25.0)

    def test_outlier_influence_expires_with_window(self):
        mp = MovingPercentileFilter(history=4, percentile=25.0)
        mp.update(3000.0)  # pathological first sample
        for _ in range(4):
            mp.update(50.0)
        assert mp.current() == pytest.approx(50.0)

    def test_current_does_not_consume(self):
        mp = MovingPercentileFilter(history=4)
        mp.update(10.0)
        assert mp.current() == mp.current()

    def test_current_before_any_sample_is_none(self):
        assert MovingPercentileFilter().current() is None

    def test_warmup_delays_output(self):
        mp = MovingPercentileFilter(history=4, warmup=2)
        assert mp.update(3000.0) is None
        assert mp.update(50.0) is not None

    def test_warmup_cannot_exceed_history(self):
        with pytest.raises(ValueError):
            MovingPercentileFilter(history=2, warmup=3)

    def test_reset_clears_state(self):
        mp = MovingPercentileFilter()
        mp.update(10.0)
        mp.reset()
        assert mp.current() is None
        assert mp.samples_seen == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MovingPercentileFilter(history=0)
        with pytest.raises(ValueError):
            MovingPercentileFilter(percentile=101.0)
        with pytest.raises(ValueError):
            MovingPercentileFilter(warmup=0)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            MovingPercentileFilter().update(-1.0)

    def test_nan_sample_rejected(self):
        with pytest.raises(ValueError):
            MovingPercentileFilter().update(float("nan"))

    @given(st.lists(latency_samples, min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_output_always_within_window_range(self, samples):
        mp = MovingPercentileFilter(history=4, percentile=25.0)
        window = []
        for sample in samples:
            window.append(sample)
            window = window[-4:]
            value = mp.update(sample)
            assert value is not None
            assert min(window) - 1e-9 <= value <= max(window) + 1e-9

    @given(st.lists(latency_samples, min_size=5, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_history_one_is_identity(self, samples):
        mp = MovingPercentileFilter(history=1, percentile=25.0)
        for sample in samples:
            assert mp.update(sample) == pytest.approx(sample)


class TestMedianFilter:
    def test_is_mp_with_p50(self):
        median = MedianFilter(history=3)
        assert median.percentile == 50.0

    def test_median_of_window(self):
        median = MedianFilter(history=3)
        median.update(10.0)
        median.update(1000.0)
        assert median.update(20.0) == pytest.approx(20.0)


class TestEWMAFilter:
    def test_first_sample_initialises_value(self):
        assert EWMAFilter(alpha=0.1).update(100.0) == 100.0

    def test_recursion_matches_definition(self):
        ewma = EWMAFilter(alpha=0.25)
        ewma.update(100.0)
        assert ewma.update(200.0) == pytest.approx(0.25 * 200.0 + 0.75 * 100.0)

    def test_small_alpha_resists_outliers_but_still_moves(self):
        ewma = EWMAFilter(alpha=0.02)
        ewma.update(100.0)
        after = ewma.update(3000.0)
        assert after is not None and 100.0 < after < 200.0

    def test_outlier_contaminates_subsequent_outputs(self):
        """The failure mode Table I documents: the outlier lingers in the average."""
        ewma = EWMAFilter(alpha=0.2)
        ewma.update(100.0)
        ewma.update(3000.0)
        lingering = ewma.update(100.0)
        assert lingering is not None and lingering > 150.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EWMAFilter(alpha=0.0)
        with pytest.raises(ValueError):
            EWMAFilter(alpha=1.5)

    def test_reset(self):
        ewma = EWMAFilter()
        ewma.update(10.0)
        ewma.reset()
        assert ewma.current() is None


class TestThresholdFilter:
    def test_accepts_values_below_threshold(self):
        threshold = ThresholdFilter(threshold_ms=1000.0)
        assert threshold.update(500.0) == 500.0

    def test_drops_values_above_threshold(self):
        threshold = ThresholdFilter(threshold_ms=1000.0)
        assert threshold.update(1500.0) is None

    def test_current_tracks_last_accepted(self):
        threshold = ThresholdFilter(threshold_ms=1000.0)
        threshold.update(400.0)
        threshold.update(5000.0)
        assert threshold.current() == 400.0

    def test_per_link_tails_slip_under_a_global_threshold(self):
        """A cut-off sized for the global distribution misses a fast link's outliers."""
        threshold = ThresholdFilter(threshold_ms=1000.0)
        # 10x outlier on a 50 ms link still passes a 1000 ms threshold.
        assert threshold.update(500.0) == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdFilter(threshold_ms=0.0)


class TestNoFilter:
    def test_identity(self):
        nf = NoFilter()
        assert nf.update(123.0) == 123.0
        assert nf.current() == 123.0

    def test_reset(self):
        nf = NoFilter()
        nf.update(1.0)
        nf.reset()
        assert nf.current() is None


class TestFactory:
    @pytest.mark.parametrize(
        "kind, expected",
        [
            ("mp", MovingPercentileFilter),
            ("moving_percentile", MovingPercentileFilter),
            ("median", MedianFilter),
            ("ewma", EWMAFilter),
            ("threshold", ThresholdFilter),
            ("none", NoFilter),
            ("raw", NoFilter),
        ],
    )
    def test_known_kinds(self, kind, expected):
        assert isinstance(make_filter(kind), expected)

    def test_kind_is_case_insensitive(self):
        assert isinstance(make_filter("MP"), MovingPercentileFilter)

    def test_kwargs_forwarded(self):
        mp = make_filter("mp", history=8, percentile=50.0)
        assert isinstance(mp, MovingPercentileFilter)
        assert mp.history == 8

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_filter("kalman")

    def test_all_filters_satisfy_protocol(self):
        for kind in ("mp", "median", "ewma", "threshold", "none"):
            assert isinstance(make_filter(kind), LatencyFilter)


class TestFilterBank:
    def test_each_peer_gets_its_own_filter(self):
        bank = FilterBank("mp", history=4)
        assert bank.filter_for("a") is not bank.filter_for("b")
        assert bank.filter_for("a") is bank.filter_for("a")

    def test_update_routes_to_peer_filter(self):
        bank = FilterBank("mp", history=4, percentile=25.0)
        bank.update("a", 100.0)
        bank.update("b", 500.0)
        assert bank.filter_for("a").current() == pytest.approx(100.0)
        assert bank.filter_for("b").current() == pytest.approx(500.0)

    def test_forget_removes_peer_state(self):
        bank = FilterBank("mp")
        bank.update("a", 1.0)
        bank.forget("a")
        assert bank.peer_count == 0

    def test_reset_clears_all(self):
        bank = FilterBank("mp")
        bank.update("a", 1.0)
        bank.update("b", 1.0)
        bank.reset()
        assert bank.peer_count == 0

    def test_peers_listing(self):
        bank = FilterBank("none")
        bank.update("x", 1.0)
        bank.update("y", 2.0)
        assert sorted(bank.peers()) == ["x", "y"]
