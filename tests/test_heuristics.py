"""Tests for the application-level update heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coordinate import Coordinate, centroid
from repro.core.heuristics import (
    AlwaysUpdateHeuristic,
    ApplicationCentroidHeuristic,
    ApplicationHeuristic,
    EnergyHeuristic,
    RelativeHeuristic,
    SystemHeuristic,
    UpdateHeuristic,
    make_heuristic,
)


def _point(x: float, y: float = 0.0, z: float = 0.0) -> Coordinate:
    return Coordinate([x, y, z])


class TestAlwaysUpdate:
    def test_tracks_system_coordinate_exactly(self):
        heuristic = AlwaysUpdateHeuristic()
        for x in (1.0, 2.0, 3.0):
            update = heuristic.observe(_point(x))
            assert update is not None and update.components[0] == x
        assert heuristic.update_count == 3

    def test_observation_count_tracks_inputs(self):
        heuristic = AlwaysUpdateHeuristic()
        heuristic.observe(_point(1.0))
        heuristic.observe(_point(2.0))
        assert heuristic.observation_count == 2


class TestSystemHeuristic:
    def test_first_observation_always_updates(self):
        heuristic = SystemHeuristic(threshold_ms=10.0)
        assert heuristic.observe(_point(1.0)) is not None

    def test_small_step_does_not_update(self):
        heuristic = SystemHeuristic(threshold_ms=10.0)
        heuristic.observe(_point(0.0))
        assert heuristic.observe(_point(5.0)) is None

    def test_large_step_updates(self):
        heuristic = SystemHeuristic(threshold_ms=10.0)
        heuristic.observe(_point(0.0))
        assert heuristic.observe(_point(50.0)) is not None

    def test_pathological_slow_drift_never_updates(self):
        """The failure mode the paper calls out: steps just under the threshold."""
        heuristic = SystemHeuristic(threshold_ms=10.0)
        heuristic.observe(_point(0.0))
        position = 0.0
        for _ in range(100):
            position += 9.0  # always just below the threshold
            assert heuristic.observe(_point(position)) is None
        # The application's view is now wildly stale.
        assert heuristic.application_coordinate.components[0] == 0.0
        assert position > 800.0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SystemHeuristic(threshold_ms=-1.0)

    def test_reset_clears_state(self):
        heuristic = SystemHeuristic()
        heuristic.observe(_point(1.0))
        heuristic.reset()
        assert heuristic.application_coordinate is None
        assert heuristic.update_count == 0


class TestApplicationHeuristic:
    def test_updates_on_cumulative_drift(self):
        heuristic = ApplicationHeuristic(threshold_ms=10.0)
        heuristic.observe(_point(0.0))
        # Individual steps are small but drift accumulates past the threshold.
        assert heuristic.observe(_point(6.0)) is None
        assert heuristic.observe(_point(12.0)) is not None

    def test_oscillation_below_threshold_never_updates(self):
        heuristic = ApplicationHeuristic(threshold_ms=10.0)
        heuristic.observe(_point(0.0))
        for _ in range(50):
            assert heuristic.observe(_point(8.0)) is None
            assert heuristic.observe(_point(-8.0)) is None

    def test_update_snaps_to_current_system_coordinate(self):
        heuristic = ApplicationHeuristic(threshold_ms=10.0)
        heuristic.observe(_point(0.0))
        update = heuristic.observe(_point(25.0))
        assert update is not None and update.components[0] == 25.0


class TestApplicationCentroidHeuristic:
    def test_update_value_is_window_centroid(self):
        heuristic = ApplicationCentroidHeuristic(threshold_ms=5.0, window_size=4)
        heuristic.observe(_point(0.0))
        heuristic.observe(_point(2.0))
        heuristic.observe(_point(4.0))
        update = heuristic.observe(_point(20.0))
        assert update is not None
        expected = centroid([_point(0.0), _point(2.0), _point(4.0), _point(20.0)])
        assert update.components == pytest.approx(expected.components)

    def test_no_update_below_threshold(self):
        heuristic = ApplicationCentroidHeuristic(threshold_ms=100.0, window_size=4)
        heuristic.observe(_point(0.0))
        assert heuristic.observe(_point(10.0)) is None

    def test_window_size_validated(self):
        with pytest.raises(ValueError):
            ApplicationCentroidHeuristic(window_size=0)


class TestRelativeHeuristic:
    def test_first_observation_updates(self):
        heuristic = RelativeHeuristic(relative_threshold=0.3, window_size=4)
        assert heuristic.observe(_point(1.0)) is not None

    def test_no_update_without_known_neighbor(self):
        heuristic = RelativeHeuristic(relative_threshold=0.3, window_size=2)
        heuristic.observe(_point(0.0))
        for x in range(1, 10):
            assert heuristic.observe(_point(float(x * 100))) is None

    def test_updates_when_displacement_large_relative_to_neighbor(self):
        heuristic = RelativeHeuristic(relative_threshold=0.3, window_size=2)
        neighbor = _point(0.0, 10.0)  # ~10 ms away: a tight locale
        updates = 0
        for x in range(0, 40, 2):
            if heuristic.observe(_point(float(x)), nearest_neighbor=neighbor) is not None:
                updates += 1
        assert updates >= 2  # the initial update plus at least one drift-triggered one

    def test_far_neighbor_suppresses_small_moves(self):
        heuristic = RelativeHeuristic(relative_threshold=0.5, window_size=2)
        far_neighbor = _point(0.0, 10_000.0)
        heuristic.observe(_point(0.0), nearest_neighbor=far_neighbor)
        for x in range(1, 30):
            assert heuristic.observe(_point(float(x)), nearest_neighbor=far_neighbor) is None

    def test_update_value_is_current_window_centroid(self):
        heuristic = RelativeHeuristic(relative_threshold=0.1, window_size=2)
        neighbor = _point(0.0, 1.0)
        heuristic.observe(_point(0.0), nearest_neighbor=neighbor)
        heuristic.observe(_point(0.0), nearest_neighbor=neighbor)
        heuristic.observe(_point(100.0), nearest_neighbor=neighbor)
        update = heuristic.observe(_point(110.0), nearest_neighbor=neighbor)
        assert update is not None
        assert update.components[0] == pytest.approx(105.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RelativeHeuristic(relative_threshold=0.0)


class TestEnergyHeuristic:
    def test_first_observation_updates(self):
        heuristic = EnergyHeuristic(threshold=8.0, window_size=4)
        assert heuristic.observe(_point(0.0)) is not None

    def test_stationary_stream_never_updates_again(self):
        rng = np.random.default_rng(1)
        heuristic = EnergyHeuristic(threshold=8.0, window_size=8)
        heuristic.observe(_point(0.0))
        for _ in range(200):
            jitter = rng.normal(scale=0.2, size=3)
            assert heuristic.observe(Coordinate(jitter.tolist())) is None

    def test_shifted_stream_triggers_update(self):
        rng = np.random.default_rng(2)
        heuristic = EnergyHeuristic(threshold=8.0, window_size=8)
        heuristic.observe(_point(0.0))
        for _ in range(20):
            heuristic.observe(Coordinate(rng.normal(scale=0.5, size=3).tolist()))
        updated = False
        for _ in range(40):
            shifted = rng.normal(loc=50.0, scale=0.5, size=3)
            if heuristic.observe(Coordinate(shifted.tolist())) is not None:
                updated = True
                break
        assert updated

    def test_update_value_is_current_window_centroid(self):
        heuristic = EnergyHeuristic(threshold=1.0, window_size=2)
        heuristic.observe(_point(0.0))
        heuristic.observe(_point(0.0))
        heuristic.observe(_point(100.0))
        update = heuristic.observe(_point(102.0))
        assert update is not None
        assert update.components[0] == pytest.approx(101.0)

    def test_windows_reset_after_change_point(self):
        heuristic = EnergyHeuristic(threshold=1.0, window_size=2)
        heuristic.observe(_point(0.0))
        heuristic.observe(_point(0.0))
        heuristic.observe(_point(100.0))
        assert heuristic.observe(_point(102.0)) is not None
        # Immediately after a change point the windows are refilling, so no
        # update can fire for the next 2 * window_size observations.
        assert heuristic.observe(_point(104.0)) is None
        assert heuristic.observe(_point(106.0)) is None
        assert heuristic.observe(_point(108.0)) is None

    def test_higher_threshold_means_fewer_updates(self):
        rng = np.random.default_rng(3)
        stream = [Coordinate(p.tolist()) for p in rng.normal(scale=3.0, size=(300, 3))]
        low, high = EnergyHeuristic(threshold=1.0, window_size=8), EnergyHeuristic(
            threshold=64.0, window_size=8
        )
        for point in stream:
            low.observe(point)
            high.observe(point)
        assert high.update_count <= low.update_count

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EnergyHeuristic(threshold=-1.0)
        with pytest.raises(ValueError):
            EnergyHeuristic(window_size=1)


class TestFactory:
    @pytest.mark.parametrize(
        "kind, expected",
        [
            ("always", AlwaysUpdateHeuristic),
            ("raw", AlwaysUpdateHeuristic),
            ("system", SystemHeuristic),
            ("application", ApplicationHeuristic),
            ("application_centroid", ApplicationCentroidHeuristic),
            ("relative", RelativeHeuristic),
            ("energy", EnergyHeuristic),
        ],
    )
    def test_known_kinds(self, kind, expected):
        assert isinstance(make_heuristic(kind), expected)

    def test_kwargs_forwarded(self):
        heuristic = make_heuristic("energy", threshold=4.0, window_size=16)
        assert isinstance(heuristic, EnergyHeuristic)
        assert heuristic.threshold == 4.0
        assert heuristic.window_size == 16

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_heuristic("oracle")

    def test_all_heuristics_satisfy_protocol(self):
        for kind in ("always", "system", "application", "application_centroid", "relative", "energy"):
            assert isinstance(make_heuristic(kind), UpdateHeuristic)
