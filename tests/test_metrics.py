"""Tests for the accuracy, stability, and collector metric modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coordinate import Coordinate
from repro.metrics.accuracy import AccuracyAggregator, NodeAccuracy, absolute_error, relative_error
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import ComparisonRow, comparison_table, format_table, improvement_percent
from repro.metrics.stability import StabilityTracker


def _point(x: float) -> Coordinate:
    return Coordinate([x, 0.0, 0.0])


class TestErrorFunctions:
    def test_absolute_error(self):
        assert absolute_error(120.0, 100.0) == 20.0

    def test_relative_error_definition(self):
        assert relative_error(120.0, 100.0) == pytest.approx(0.2)
        assert relative_error(80.0, 100.0) == pytest.approx(0.2)

    def test_relative_error_clamps_tiny_observations(self):
        assert relative_error(1.0, 0.0) == pytest.approx(1.0 / 1e-3 - 1.0, rel=1e-3)

    def test_perfect_prediction_has_zero_error(self):
        assert relative_error(50.0, 50.0) == 0.0


class TestNodeAccuracy:
    def test_median_and_percentile(self):
        accuracy = NodeAccuracy("n")
        for predicted in (110.0, 120.0, 130.0):
            accuracy.record(predicted, 100.0)
        assert accuracy.median() == pytest.approx(0.2)
        assert accuracy.percentile(100.0) == pytest.approx(0.3)
        assert accuracy.count == 3

    def test_empty_summaries_are_none(self):
        accuracy = NodeAccuracy("n")
        assert accuracy.median() is None
        assert accuracy.percentile(95.0) is None

    def test_record_error_validates_sign(self):
        accuracy = NodeAccuracy("n")
        with pytest.raises(ValueError):
            accuracy.record_error(-0.1)

    def test_aggregator_median_of_medians(self):
        aggregator = AccuracyAggregator()
        aggregator.record("a", 110.0, 100.0)
        aggregator.record("b", 150.0, 100.0)
        aggregator.record("c", 200.0, 100.0)
        assert aggregator.median_of_medians() == pytest.approx(0.5)
        assert sorted(aggregator.node_ids()) == ["a", "b", "c"]

    def test_aggregator_empty_is_none(self):
        assert AccuracyAggregator().median_of_medians() is None


class TestStabilityTracker:
    def test_total_movement_accumulates(self):
        tracker = StabilityTracker("n")
        tracker.record(0.0, _point(0.0))
        tracker.record(1.0, _point(3.0))
        tracker.record(2.0, _point(7.0))
        assert tracker.total_movement_ms == pytest.approx(7.0)
        assert tracker.update_count == 2

    def test_instability_is_movement_per_second(self):
        tracker = StabilityTracker("n")
        tracker.record(0.0, _point(0.0))
        tracker.record(10.0, _point(5.0))
        assert tracker.instability_ms_per_s() == pytest.approx(0.5)

    def test_stationary_coordinate_has_zero_instability(self):
        tracker = StabilityTracker("n")
        for t in range(10):
            tracker.record(float(t), _point(42.0))
        assert tracker.instability_ms_per_s() == 0.0

    def test_explicit_duration_override(self):
        tracker = StabilityTracker("n")
        tracker.record(0.0, _point(0.0))
        tracker.record(1.0, _point(10.0))
        assert tracker.instability_ms_per_s(duration_s=100.0) == pytest.approx(0.1)

    def test_movement_since(self):
        tracker = StabilityTracker("n")
        tracker.record(0.0, _point(0.0))
        tracker.record(5.0, _point(1.0))
        tracker.record(10.0, _point(3.0))
        assert tracker.movement_since(6.0) == pytest.approx(2.0)

    def test_zero_duration_yields_zero_rate(self):
        tracker = StabilityTracker("n")
        tracker.record(0.0, _point(0.0))
        assert tracker.instability_ms_per_s() == 0.0


class TestMetricsCollector:
    def _populate(self, collector: MetricsCollector) -> None:
        for t in range(10):
            collector.record_sample(
                float(t),
                "a",
                system_coordinate=_point(float(t)),
                application_coordinate=_point(0.0 if t < 5 else 10.0),
                relative_error=0.1 * (t + 1),
                application_relative_error=0.2,
                application_updated=(t == 5),
            )

    def test_per_node_median_error_uses_measurement_window(self):
        collector = MetricsCollector(measurement_start_s=5.0)
        self._populate(collector)
        medians = collector.per_node_median_error(level="system")
        # Only errors at t >= 5 count: 0.6 .. 1.0, median 0.8.
        assert medians["a"] == pytest.approx(0.8)

    def test_error_percentiles(self):
        collector = MetricsCollector()
        self._populate(collector)
        p95 = collector.per_node_error_percentile(95.0, level="system")["a"]
        assert 0.9 <= p95 <= 1.0

    def test_application_level_errors_tracked_separately(self):
        collector = MetricsCollector()
        self._populate(collector)
        assert collector.per_node_median_error(level="application")["a"] == pytest.approx(0.2)

    def test_instability_per_node_and_aggregate(self):
        collector = MetricsCollector()
        self._populate(collector)
        system = collector.per_node_instability(level="system")["a"]
        application = collector.per_node_instability(level="application")["a"]
        # System coordinate moves 1 ms per second; the application one jumps
        # 10 ms once over the 9-second window.
        assert system == pytest.approx(1.0, rel=0.2)
        assert application == pytest.approx(10.0 / 9.0, rel=0.2)
        assert collector.aggregate_instability(level="system") == pytest.approx(system)

    def test_update_counts_and_rate(self):
        collector = MetricsCollector()
        self._populate(collector)
        assert collector.per_node_update_counts()["a"] == 1
        assert collector.application_updates_per_node_per_second() == pytest.approx(1.0 / 9.0)

    def test_system_snapshot_fields(self):
        collector = MetricsCollector()
        self._populate(collector)
        snapshot = collector.system_snapshot()
        assert snapshot.node_count == 1
        assert snapshot.median_of_median_error is not None
        assert snapshot.aggregate_system_instability > 0.0

    def test_node_snapshot(self):
        collector = MetricsCollector()
        self._populate(collector)
        node = collector.node_snapshot("a")
        assert node.observation_count == 10
        assert node.application_updates == 1

    def test_time_series_bucketing(self):
        collector = MetricsCollector()
        self._populate(collector)
        series = collector.time_series(3.0, level="system")
        assert len(series) == 3
        assert series[0]["time_s"] == 0.0
        assert series[1]["median_relative_error"] == pytest.approx(0.5, abs=0.15)

    def test_time_series_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            MetricsCollector().time_series(0.0)

    def test_empty_collector_time_series_is_empty(self):
        assert MetricsCollector().time_series(10.0) == []

    def test_negative_measurement_start_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(measurement_start_s=-1.0)

    def test_reset(self):
        collector = MetricsCollector()
        self._populate(collector)
        collector.reset()
        assert collector.node_ids() == []


class TestReporting:
    def test_improvement_percent_sign_convention(self):
        assert improvement_percent(100.0, 50.0) == pytest.approx(-50.0)
        assert improvement_percent(100.0, 150.0) == pytest.approx(50.0)
        assert improvement_percent(0.0, 10.0) == 0.0

    def _snapshot(self, error: float, instability: float):
        collector = MetricsCollector()
        collector.record_sample(
            0.0,
            "a",
            system_coordinate=_point(0.0),
            application_coordinate=_point(0.0),
        )
        collector.record_sample(
            10.0,
            "a",
            system_coordinate=_point(instability * 10.0),
            application_coordinate=_point(instability * 10.0),
            relative_error=error,
            application_relative_error=error,
        )
        return collector.system_snapshot()

    def test_comparison_table_relative_to_baseline(self):
        snapshots = {
            "baseline": self._snapshot(0.2, 1.0),
            "better": self._snapshot(0.1, 0.5),
        }
        rows = comparison_table(snapshots, baseline="baseline", level="system")
        better = next(row for row in rows if row.label == "better")
        assert better.error_change_percent == pytest.approx(-50.0)
        assert better.instability_change_percent == pytest.approx(-50.0)

    def test_comparison_table_requires_known_baseline(self):
        with pytest.raises(ValueError):
            comparison_table({"a": self._snapshot(0.1, 1.0)}, baseline="missing")

    def test_format_table_renders_all_rows_and_columns(self):
        rows = [
            {"name": "x", "value": 1.5},
            {"name": "longer-name", "value": None},
        ]
        text = format_table(rows, columns=["name", "value"])
        assert "longer-name" in text
        assert "1.500" in text
        assert "-" in text

    def test_format_table_accepts_comparison_rows(self):
        row = ComparisonRow("cfg", 0.1, 5.0, -10.0, -20.0)
        text = format_table([row])
        assert "cfg" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"
