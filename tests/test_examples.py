"""Smoke tests: every shipped example runs end to end.

The examples are part of the public deliverable, so a broken example is a
broken build.  The heavier ones are invoked with reduced arguments where
they accept them.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart_runs_and_reports_improvement(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "improvement" in result.stdout

    def test_change_detection_demo_detects_drift(self):
        result = _run("change_detection_demo.py")
        assert result.returncode == 0, result.stderr
        assert "drift" in result.stdout

    def test_planetlab_simulation_small_run(self):
        result = _run("planetlab_simulation.py", "--nodes", "12", "--minutes", "10")
        assert result.returncode == 0, result.stderr
        assert "headline improvements" in result.stdout

    def test_streaming_overlay_placement(self):
        result = _run("streaming_overlay_placement.py")
        assert result.returncode == 0, result.stderr
        assert "placement work" in result.stdout

    def test_scenario_sweep_uses_cache_on_rerun(self):
        result = _run("scenario_sweep.py", "--nodes", "8", "--minutes", "5")
        assert result.returncode == 0, result.stderr
        assert "4/4 cells served from the cache" in result.stdout
