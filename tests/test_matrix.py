"""Tests for the static latency-matrix abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency.matrix import LatencyMatrix
from repro.latency.topology import GeographicTopology


class TestConstruction:
    def test_from_dict_symmetrises(self):
        matrix = LatencyMatrix.from_dict({("a", "b"): 10.0, ("b", "c"): 20.0})
        assert matrix.rtt_ms("a", "b") == matrix.rtt_ms("b", "a") == 10.0
        assert matrix.rtt_ms("a", "c") == 0.0

    def test_from_topology(self, small_topology):
        matrix = LatencyMatrix.from_topology(small_topology)
        hosts = small_topology.host_ids
        assert matrix.size == small_topology.size
        assert matrix.rtt_ms(hosts[0], hosts[1]) == pytest.approx(
            small_topology.base_rtt_ms(hosts[0], hosts[1])
        )

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            LatencyMatrix(["a", "b"], np.zeros((2, 3)))

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValueError):
            LatencyMatrix(["a"], np.zeros((2, 2)))

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            LatencyMatrix(["a", "a"], np.zeros((2, 2)))

    def test_rejects_negative_latency(self):
        data = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError):
            LatencyMatrix(["a", "b"], data)

    def test_rejects_asymmetric_matrix(self):
        data = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError):
            LatencyMatrix(["a", "b"], data)

    def test_diagonal_forced_to_zero(self):
        data = np.array([[5.0, 1.0], [1.0, 5.0]])
        matrix = LatencyMatrix(["a", "b"], data)
        assert matrix.rtt_ms("a", "a") == 0.0


class TestAccess:
    def test_as_array_returns_copy(self):
        matrix = LatencyMatrix.from_dict({("a", "b"): 10.0})
        array = matrix.as_array()
        array[0, 1] = 999.0
        assert matrix.rtt_ms("a", "b") == 10.0

    def test_pairs_enumeration(self):
        matrix = LatencyMatrix.from_dict({("a", "b"): 10.0, ("a", "c"): 20.0, ("b", "c"): 30.0})
        pairs = list(matrix.pairs())
        assert len(pairs) == 3
        assert ("a", "b", 10.0) in pairs

    def test_unknown_node_raises_key_error(self):
        matrix = LatencyMatrix.from_dict({("a", "b"): 10.0})
        with pytest.raises(KeyError):
            matrix.rtt_ms("a", "zzz")


class TestTriangleViolations:
    def test_metric_matrix_has_no_violations(self):
        # Distances of points on a line form a metric.
        matrix = LatencyMatrix.from_dict(
            {("a", "b"): 10.0, ("b", "c"): 10.0, ("a", "c"): 20.0}
        )
        assert matrix.triangle_violation_fraction() == 0.0

    def test_violating_matrix_detected(self):
        matrix = LatencyMatrix.from_dict(
            {("a", "b"): 100.0, ("b", "c"): 1.0, ("a", "c"): 1.0}
        )
        assert matrix.triangle_violation_fraction() == 1.0

    def test_sampled_estimate_on_larger_matrix(self, small_topology):
        matrix = LatencyMatrix.from_topology(small_topology)
        fraction = matrix.triangle_violation_fraction(sample_limit=500, seed=1)
        assert 0.0 <= fraction <= 1.0
