"""Tests for the overlay application substrate (knn, placement, triggers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coordinate import Coordinate
from repro.overlay.knn import CoordinateIndex
from repro.overlay.placement import OperatorPlacement
from repro.overlay.triggers import MigrationCost, UpdateTriggerAccountant
from repro.service.index import VPTreeIndex, build_index


def _point(x: float, y: float = 0.0) -> Coordinate:
    return Coordinate([x, y, 0.0])


@pytest.fixture()
def index() -> CoordinateIndex:
    idx = CoordinateIndex()
    idx.update("a", _point(0.0))
    idx.update("b", _point(10.0))
    idx.update("c", _point(100.0))
    idx.update("d", _point(50.0, 50.0))
    return idx


class TestCoordinateIndex:
    def test_membership_and_len(self, index):
        assert len(index) == 4
        assert "a" in index
        assert "zzz" not in index

    def test_update_overwrites(self, index):
        index.update("a", _point(500.0))
        assert index.coordinate_of("a").components[0] == 500.0

    def test_remove(self, index):
        index.remove("a")
        assert "a" not in index
        index.remove("not-there")  # must not raise

    def test_nearest_returns_sorted_matches(self, index):
        results = index.nearest(_point(1.0), k=2)
        assert [node for node, _ in results] == ["a", "b"]
        assert results[0][1] <= results[1][1]

    def test_nearest_respects_exclusions(self, index):
        results = index.nearest(_point(0.0), k=1, exclude=["a"])
        assert results[0][0] == "b"

    def test_nearest_to_node_excludes_itself(self, index):
        assert index.nearest_to_node("a", k=1)[0][0] == "b"

    def test_nearest_to_unknown_node_raises(self, index):
        with pytest.raises(KeyError):
            index.nearest_to_node("zzz")

    def test_k_validation(self, index):
        with pytest.raises(ValueError):
            index.nearest(_point(0.0), k=0)

    def test_within_radius(self, index):
        hits = index.within(_point(0.0), radius_ms=15.0)
        assert [node for node, _ in hits] == ["a", "b"]

    def test_within_negative_radius_rejected(self, index):
        with pytest.raises(ValueError):
            index.within(_point(0.0), radius_ms=-1.0)

    def test_update_many(self):
        idx = CoordinateIndex()
        idx.update_many({"x": _point(1.0), "y": _point(2.0)})
        assert len(idx) == 2

    def test_min_cost_host_matches_manual_scan(self, index):
        endpoints = [_point(0.0), _point(100.0)]
        host, cost = index.min_cost_host(endpoints)
        expected = {
            node_id: sum(index.coordinate_of(node_id).distance(e) for e in endpoints)
            for node_id in index.node_ids()
        }
        assert cost == min(expected.values())
        assert expected[host] == cost

    def test_min_cost_host_validation(self, index):
        with pytest.raises(ValueError):
            index.min_cost_host([])
        with pytest.raises(ValueError):
            CoordinateIndex().min_cost_host([_point(0.0)])


def _triangle_index() -> CoordinateIndex:
    """Three endpoints forming a triangle plus a central 'hub' host.

    With three (or more) endpoints a central host strictly beats placing the
    operator on any endpoint (with only two endpoints every point on the
    segment between them is equally good, so no unique optimum exists).
    """
    idx = CoordinateIndex()
    idx.update("p1", _point(0.0, 0.0))
    idx.update("p2", _point(100.0, 0.0))
    idx.update("p3", _point(50.0, 87.0))
    idx.update("hub", _point(50.0, 29.0))
    return idx


class TestOperatorPlacement:
    def test_places_operator_at_latency_optimal_host(self):
        index = _triangle_index()
        placement = OperatorPlacement(index)
        placement.register_operator("op", ["p1", "p2", "p3"])
        decision = placement.evaluate("op")
        assert decision.chosen_host == "hub"
        assert decision.previous_host is None
        assert not decision.migrated

    def test_unregistered_operator_rejected(self, index):
        with pytest.raises(KeyError):
            OperatorPlacement(index).evaluate("ghost")

    def test_empty_endpoints_rejected(self, index):
        with pytest.raises(ValueError):
            OperatorPlacement(index).register_operator("op", [])

    def test_migration_when_coordinates_shift(self):
        index = _triangle_index()
        # The hub starts far away, so the operator lands on an endpoint.
        index.update("hub", _point(5000.0, 5000.0))
        placement = OperatorPlacement(index)
        placement.register_operator("op", ["p1", "p2", "p3"])
        first = placement.evaluate("op")
        assert first.chosen_host in {"p1", "p2", "p3"}
        # The hub's coordinate moves to the centre: migration is triggered.
        index.update("hub", _point(50.0, 29.0))
        decision = placement.evaluate("op")
        assert decision.chosen_host == "hub"
        assert decision.migrated
        assert placement.migrations == 1

    def test_hysteresis_suppresses_marginal_migrations(self):
        index = _triangle_index()
        index.update("hub", _point(5000.0, 5000.0))
        placement = OperatorPlacement(index, migration_hysteresis_ms=10_000.0)
        placement.register_operator("op", ["p1", "p2", "p3"])
        first = placement.evaluate("op")
        index.update("hub", _point(50.0, 29.0))
        decision = placement.evaluate("op")
        assert not decision.migrated
        assert decision.chosen_host == first.chosen_host

    def test_evaluate_all_covers_every_operator(self, index):
        placement = OperatorPlacement(index)
        placement.register_operator("op1", ["a", "b"])
        placement.register_operator("op2", ["c", "d"])
        decisions = placement.evaluate_all()
        assert {d.operator_id for d in decisions} == {"op1", "op2"}

    def test_ideal_meeting_point_is_endpoint_centroid(self, index):
        placement = OperatorPlacement(index)
        placement.register_operator("op", ["a", "c"])
        meeting = placement.ideal_meeting_point("op")
        assert meeting.components[0] == pytest.approx(50.0)

    def test_negative_hysteresis_rejected(self, index):
        with pytest.raises(ValueError):
            OperatorPlacement(index, migration_hysteresis_ms=-1.0)


class TestUpdateTriggerAccountant:
    def test_first_update_costs_one_evaluation(self):
        accountant = UpdateTriggerAccountant()
        cost = accountant.record_update(0.0, "a", _point(0.0))
        assert cost == accountant.cost_model.evaluation_cost
        assert accountant.migration_count() == 0

    def test_large_move_triggers_migration_cost(self):
        accountant = UpdateTriggerAccountant(MigrationCost(migration_threshold_ms=5.0))
        accountant.record_update(0.0, "a", _point(0.0))
        cost = accountant.record_update(1.0, "a", _point(100.0))
        assert cost == pytest.approx(
            accountant.cost_model.evaluation_cost + accountant.cost_model.migration_cost
        )
        assert accountant.migration_count("a") == 1

    def test_small_move_does_not_migrate(self):
        accountant = UpdateTriggerAccountant(MigrationCost(migration_threshold_ms=50.0))
        accountant.record_update(0.0, "a", _point(0.0))
        accountant.record_update(1.0, "a", _point(10.0))
        assert accountant.migration_count() == 0

    def test_totals_and_per_node_costs(self):
        accountant = UpdateTriggerAccountant()
        accountant.record_update(0.0, "a", _point(0.0))
        accountant.record_update(1.0, "b", _point(0.0))
        accountant.record_update(2.0, "a", _point(200.0))
        assert accountant.update_count() == 3
        assert accountant.update_count("a") == 2
        per_node = accountant.cost_per_node()
        assert per_node["a"] > per_node["b"]
        assert accountant.total_cost == pytest.approx(sum(per_node.values()))

    def test_cost_rate(self):
        accountant = UpdateTriggerAccountant()
        accountant.record_update(0.0, "a", _point(0.0))
        assert accountant.cost_rate(10.0) == pytest.approx(accountant.total_cost / 10.0)
        with pytest.raises(ValueError):
            accountant.cost_rate(0.0)

    def test_cost_model_validation(self):
        with pytest.raises(ValueError):
            MigrationCost(evaluation_cost=-1.0)
        with pytest.raises(ValueError):
            MigrationCost(migration_threshold_ms=-1.0)

    def test_events_are_recorded_in_order(self):
        accountant = UpdateTriggerAccountant()
        accountant.record_update(0.0, "a", _point(0.0))
        accountant.record_update(5.0, "a", _point(1.0))
        events = accountant.events()
        assert [t for t, _, _ in events] == [0.0, 5.0]

    def test_pluggable_index_tracks_last_coordinates(self):
        accountant = UpdateTriggerAccountant(index=VPTreeIndex())
        accountant.record_update(0.0, "a", _point(0.0))
        accountant.record_update(1.0, "b", _point(100.0))
        accountant.record_update(2.0, "a", _point(10.0))
        assert accountant.index.coordinate_of("a") == _point(10.0)
        assert accountant.nodes_near(_point(12.0), k=1)[0][0] == "a"
        # Costs are unaffected by the index choice.
        reference = UpdateTriggerAccountant()
        for time_s, node_id, point in ((0.0, "a", 0.0), (1.0, "b", 100.0), (2.0, "a", 10.0)):
            reference.record_update(time_s, node_id, _point(point))
        assert accountant.total_cost == reference.total_cost


class TestPlacementWithSpatialIndexes:
    """The pluggable spatial indexes must not change placement behaviour."""

    @pytest.mark.parametrize("kind", ["vptree", "grid"])
    def test_decisions_identical_to_linear_oracle(self, kind):
        rng = np.random.default_rng(17)
        coordinates = {
            f"h{i:03d}": Coordinate(rng.normal(scale=40.0, size=3).tolist())
            for i in range(80)
        }
        operators = {
            f"op{j}": [f"h{int(i):03d}" for i in rng.choice(80, size=3, replace=False)]
            for j in range(12)
        }

        def run(index):
            index.update_many(coordinates)
            placement = OperatorPlacement(index, migration_hysteresis_ms=5.0)
            decisions = []
            for operator_id, endpoints in operators.items():
                placement.register_operator(operator_id, endpoints)
            decisions.extend(placement.evaluate_all())
            # Shift some coordinates and re-evaluate: migration decisions
            # must match too, not just initial placements.
            for i in range(0, 80, 7):
                index.update(
                    f"h{i:03d}", Coordinate(rng.normal(scale=40.0, size=3).tolist())
                )
            decisions.extend(placement.evaluate_all())
            return decisions, placement.migrations

        linear_decisions, linear_migrations = run(CoordinateIndex())
        rng = np.random.default_rng(17)  # regenerate identical universe
        coordinates = {
            f"h{i:03d}": Coordinate(rng.normal(scale=40.0, size=3).tolist())
            for i in range(80)
        }
        operators = {
            f"op{j}": [f"h{int(i):03d}" for i in rng.choice(80, size=3, replace=False)]
            for j in range(12)
        }
        spatial_decisions, spatial_migrations = run(build_index(kind))
        assert spatial_decisions == linear_decisions
        assert spatial_migrations == linear_migrations
