"""Tests for trace replay and the end-to-end simulation runner."""

from __future__ import annotations

import pytest

from repro.core.config import NodeConfig
from repro.latency.planetlab import PlanetLabDataset
from repro.latency.trace import LatencyTrace, TraceRecord
from repro.netsim.replay import replay_trace
from repro.netsim.runner import SimulationConfig, SimulationResult, run_simulation


class TestReplay:
    def test_replays_every_record(self, short_trace, mp_config):
        result = replay_trace(short_trace, mp_config)
        assert result.records_processed == len(short_trace)

    def test_creates_a_node_per_participant(self, short_trace, mp_config):
        result = replay_trace(short_trace, mp_config)
        assert sorted(result.nodes) == short_trace.nodes()

    def test_source_node_is_the_one_updated(self):
        trace = LatencyTrace([TraceRecord(0.0, "a", "b", 50.0)])
        result = replay_trace(trace, NodeConfig.preset("raw"), measurement_start_s=0.0)
        assert not result.nodes["a"].system_coordinate.is_origin()
        assert result.nodes["b"].system_coordinate.is_origin()

    def test_empty_trace_rejected(self, mp_config):
        with pytest.raises(ValueError):
            replay_trace(LatencyTrace(), mp_config)

    def test_default_measurement_window_is_second_half(self, short_trace, mp_config):
        result = replay_trace(short_trace, mp_config)
        expected = short_trace.start_time_s + short_trace.duration_s / 2.0
        assert result.collector.measurement_start_s == pytest.approx(expected)

    def test_per_node_config_overrides(self, short_trace):
        nodes = short_trace.nodes()
        overrides = {nodes[0]: NodeConfig.preset("raw")}
        result = replay_trace(short_trace, NodeConfig.preset("mp"), per_node_config=overrides)
        assert result.nodes[nodes[0]].config.filter.kind == "none"
        assert result.nodes[nodes[1]].config.filter.kind == "mp"

    def test_on_record_hook_sees_every_record(self, short_trace, mp_config):
        seen = []
        replay_trace(short_trace, mp_config, on_record=lambda t, node: seen.append(t))
        assert len(seen) == len(short_trace)

    def test_snapshot_has_all_nodes(self, short_trace, mp_config):
        snapshot = replay_trace(short_trace, mp_config).snapshot
        assert snapshot.node_count == len(short_trace.nodes())

    def test_replay_is_deterministic(self, short_trace, mp_config):
        a = replay_trace(short_trace, mp_config)
        b = replay_trace(short_trace, mp_config)
        node_id = short_trace.nodes()[0]
        assert a.nodes[node_id].system_coordinate.components == pytest.approx(
            b.nodes[node_id].system_coordinate.components
        )


class TestRunSimulation:
    def test_small_simulation_completes(self):
        config = SimulationConfig(nodes=8, duration_s=120.0, seed=1)
        result = run_simulation(config)
        assert isinstance(result, SimulationResult)
        assert result.samples_completed > 0
        assert result.collector.node_ids()

    def test_all_hosts_obtain_coordinates(self):
        config = SimulationConfig(nodes=8, duration_s=300.0, seed=1)
        result = run_simulation(config)
        moved = [
            host for host in result.hosts.values() if not host.system_coordinate.is_origin()
        ]
        assert len(moved) == len(result.hosts)

    def test_shared_dataset_restricts_to_requested_nodes(self):
        dataset = PlanetLabDataset.generate(12, seed=2)
        config = SimulationConfig(nodes=8, duration_s=60.0, seed=2)
        result = run_simulation(config, dataset=dataset)
        assert len(result.hosts) == 8

    def test_dataset_smaller_than_nodes_rejected(self):
        dataset = PlanetLabDataset.generate(4, seed=2)
        config = SimulationConfig(nodes=8, duration_s=60.0, seed=2)
        with pytest.raises(ValueError):
            run_simulation(config, dataset=dataset)

    def test_measurement_start_defaults_to_midpoint(self):
        config = SimulationConfig(nodes=6, duration_s=100.0, seed=0)
        result = run_simulation(config)
        assert result.collector.measurement_start_s == pytest.approx(50.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(nodes=1)
        with pytest.raises(ValueError):
            SimulationConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(bootstrap_neighbors=0)

    def test_same_seed_gives_identical_results(self):
        config = SimulationConfig(nodes=6, duration_s=120.0, seed=7)
        a = run_simulation(config)
        b = run_simulation(config)
        assert a.samples_completed == b.samples_completed
        host = next(iter(a.hosts))
        assert a.hosts[host].system_coordinate.components == pytest.approx(
            b.hosts[host].system_coordinate.components
        )

    def test_different_node_configs_share_the_universe(self):
        dataset = PlanetLabDataset.generate(8, seed=3)
        raw = run_simulation(
            SimulationConfig(nodes=8, duration_s=120.0, node_config=NodeConfig.preset("raw"), seed=3),
            dataset=dataset,
        )
        mp = run_simulation(
            SimulationConfig(nodes=8, duration_s=120.0, node_config=NodeConfig.preset("mp"), seed=3),
            dataset=dataset,
        )
        # Identical protocol schedule: the same number of samples complete.
        assert raw.samples_attempted == mp.samples_attempted
