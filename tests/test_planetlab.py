"""Tests for the synthetic PlanetLab dataset builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency.linkmodel import HeavyTailLink, ShiftingLink, StableLink
from repro.latency.planetlab import DatasetParameters, PlanetLabDataset, planetlab_topology


class TestDatasetConstruction:
    def test_topology_helper_defaults_to_paper_size(self):
        topo = planetlab_topology(nodes=30, seed=0)
        assert topo.size == 30

    def test_generate_builds_requested_nodes(self):
        dataset = PlanetLabDataset.generate(15, seed=3)
        assert dataset.topology.size == 15

    def test_parameters_validation(self):
        with pytest.raises(ValueError):
            DatasetParameters(shifting_fraction=1.5)
        with pytest.raises(ValueError):
            DatasetParameters(shift_multiplier_range=(2.0, 1.0))


class TestLinkModels:
    def test_link_model_is_cached_per_pair(self, small_dataset):
        a, b = small_dataset.topology.host_ids[:2]
        assert small_dataset.link_model(a, b) is small_dataset.link_model(b, a)

    def test_self_link_rejected(self, small_dataset):
        host = small_dataset.topology.host_ids[0]
        with pytest.raises(ValueError):
            small_dataset.link_model(host, host)

    def test_noiseless_dataset_uses_stable_links(self, noiseless_dataset):
        a, b = noiseless_dataset.topology.host_ids[:2]
        assert isinstance(noiseless_dataset.link_model(a, b), StableLink)

    def test_noisy_dataset_uses_heavy_tail_or_shifting_links(self, small_dataset):
        a, b = small_dataset.topology.host_ids[:2]
        model = small_dataset.link_model(a, b)
        assert isinstance(model, (HeavyTailLink, ShiftingLink))

    def test_true_rtt_matches_topology_baseline_for_non_shifting(self, noiseless_dataset):
        a, b = noiseless_dataset.topology.host_ids[:2]
        assert noiseless_dataset.true_rtt_ms(a, b) == pytest.approx(
            noiseless_dataset.topology.base_rtt_ms(a, b)
        )

    def test_true_rtt_to_self_is_zero(self, small_dataset):
        host = small_dataset.topology.host_ids[0]
        assert small_dataset.true_rtt_ms(host, host) == 0.0

    def test_sample_rtt_is_positive(self, small_dataset, rng):
        a, b = small_dataset.topology.host_ids[:2]
        for _ in range(100):
            assert small_dataset.sample_rtt(a, b, 0.0, rng) > 0.0

    def test_same_seed_gives_identical_link_universe(self):
        a = PlanetLabDataset.generate(10, seed=5)
        b = PlanetLabDataset.generate(10, seed=5)
        host_x, host_y = a.topology.host_ids[:2]
        assert a.true_rtt_ms(host_x, host_y) == pytest.approx(b.true_rtt_ms(host_x, host_y))
        assert type(a.link_model(host_x, host_y)) is type(b.link_model(host_x, host_y))


class TestTraceGeneration:
    def test_trace_has_expected_record_count(self, small_dataset):
        trace = small_dataset.generate_trace(duration_s=60.0, ping_interval_s=2.0)
        # Every host sends one ping per interval.
        assert len(trace) == small_dataset.topology.size * 30

    def test_trace_time_bounds(self, small_dataset):
        trace = small_dataset.generate_trace(duration_s=60.0, ping_interval_s=2.0)
        assert trace.start_time_s >= 0.0
        assert trace.end_time_s < 62.0

    def test_trace_is_deterministic_given_seed(self, small_dataset):
        a = small_dataset.generate_trace(duration_s=30.0, ping_interval_s=2.0, seed=9)
        b = small_dataset.generate_trace(duration_s=30.0, ping_interval_s=2.0, seed=9)
        assert len(a) == len(b)
        assert a[0].rtt_ms == pytest.approx(b[0].rtt_ms)
        assert a[-1].rtt_ms == pytest.approx(b[-1].rtt_ms)

    def test_neighbor_limit_restricts_destinations(self, small_dataset):
        trace = small_dataset.generate_trace(
            duration_s=120.0, ping_interval_s=2.0, neighbors_per_node=3, seed=1
        )
        per_source = trace.per_source()
        for src, records in per_source.items():
            assert len({r.dst for r in records}) <= 3

    def test_round_robin_covers_all_neighbors(self, small_dataset):
        n = small_dataset.topology.size
        # Long enough for each host to cycle through every peer.
        trace = small_dataset.generate_trace(duration_s=float(2 * n), ping_interval_s=1.0, seed=2)
        source = small_dataset.topology.host_ids[0]
        destinations = {r.dst for r in trace.per_source()[source]}
        assert len(destinations) == n - 1

    def test_invalid_parameters_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.generate_trace(duration_s=0.0)
        with pytest.raises(ValueError):
            small_dataset.generate_trace(duration_s=10.0, ping_interval_s=0.0)

    def test_link_stream_is_single_pair(self, small_dataset):
        a, b = small_dataset.topology.host_ids[:2]
        stream = small_dataset.generate_link_stream(a, b, duration_s=50.0, ping_interval_s=1.0)
        assert len(stream) == 50
        assert all(record.link() == (min(a, b), max(a, b)) for record in stream)
