"""Tests for the complete per-host coordinate subsystem (CoordinateNode)."""

from __future__ import annotations

import pytest

from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
from repro.core.coordinate import Coordinate
from repro.core.node import CoordinateNode


def _peer(x: float) -> Coordinate:
    return Coordinate([x, 0.0, 0.0])


class TestBootstrap:
    def test_new_node_sits_at_origin(self):
        node = CoordinateNode("n0")
        assert node.system_coordinate.is_origin()
        assert node.application_coordinate.is_origin()

    def test_new_node_has_maximal_error(self):
        node = CoordinateNode("n0")
        assert node.error_estimate == 1.0
        assert node.confidence == 0.0

    def test_default_config_applied(self):
        node = CoordinateNode("n0")
        assert node.config.filter.kind == "mp"


class TestObserve:
    def test_observation_moves_system_coordinate(self):
        node = CoordinateNode("n0", NodeConfig.preset("raw"))
        result = node.observe("peer", _peer(0.0), 1.0, 100.0)
        assert result.system_movement_ms > 0.0
        assert not node.system_coordinate.is_origin()

    def test_result_reports_raw_and_filtered_values(self):
        node = CoordinateNode("n0", NodeConfig.preset("mp"))
        result = node.observe("peer", _peer(0.0), 1.0, 100.0)
        assert result.raw_rtt_ms == 100.0
        assert result.filtered_rtt_ms == 100.0

    def test_mp_filter_suppresses_outlier_influence(self):
        config = NodeConfig.preset("mp")
        node = CoordinateNode("n0", config)
        for _ in range(8):
            node.observe("peer", _peer(50.0), 0.5, 60.0)
        before = node.system_coordinate
        result = node.observe("peer", _peer(50.0), 0.5, 5000.0)
        # The filter output stays near the link's low percentile, so the
        # outlier barely moves the coordinate.
        assert result.filtered_rtt_ms is not None and result.filtered_rtt_ms < 100.0
        assert node.system_coordinate.euclidean_distance(before) < 5.0

    def test_raw_config_lets_outlier_move_coordinate(self):
        node = CoordinateNode("n0", NodeConfig.preset("raw"))
        for _ in range(8):
            node.observe("peer", _peer(50.0), 0.5, 60.0)
        before = node.system_coordinate
        node.observe("peer", _peer(50.0), 0.5, 5000.0)
        assert node.system_coordinate.euclidean_distance(before) > 50.0

    def test_warmup_filter_defers_vivaldi_update(self):
        config = NodeConfig(
            filter=FilterConfig("mp", {"history": 4, "percentile": 25.0, "warmup": 2}),
            heuristic=HeuristicConfig("always"),
        )
        node = CoordinateNode("n0", config)
        result = node.observe("peer", _peer(0.0), 1.0, 3000.0)
        assert result.filtered_rtt_ms is None
        assert node.system_coordinate.is_origin()
        assert result.relative_error is None

    def test_relative_error_is_measured_against_raw_observation(self):
        node = CoordinateNode("n0", NodeConfig.preset("mp"))
        for _ in range(20):
            node.observe("peer", _peer(50.0), 0.5, 60.0)
        result = node.observe("peer", _peer(50.0), 0.5, 600.0)
        # Prediction is far from the raw 600 ms outlier even though the
        # filter fed Vivaldi something near 60 ms.
        assert result.relative_error is not None and result.relative_error > 0.5

    def test_observation_count_and_peer_tracking(self):
        node = CoordinateNode("n0", NodeConfig.preset("raw"))
        node.observe("a", _peer(10.0), 0.5, 20.0)
        node.observe("b", _peer(30.0), 0.5, 40.0)
        assert node.observation_count == 2
        assert sorted(node.known_peers) == ["a", "b"]
        assert node.peer_coordinate("a").components[0] == 10.0
        assert node.peer_coordinate("missing") is None

    def test_cumulative_movement_accumulates(self):
        node = CoordinateNode("n0", NodeConfig.preset("raw"))
        node.observe("a", _peer(10.0), 0.5, 100.0)
        first = node.cumulative_system_movement_ms
        node.observe("a", _peer(10.0), 0.5, 100.0)
        assert node.cumulative_system_movement_ms >= first


class TestApplicationCoordinate:
    def test_always_heuristic_keeps_views_identical(self):
        node = CoordinateNode("n0", NodeConfig.preset("mp"))
        for x in range(20):
            node.observe("peer", _peer(float(x)), 0.5, 50.0)
        assert node.application_coordinate.components == node.system_coordinate.components

    def test_energy_heuristic_decouples_views(self):
        node = CoordinateNode("n0", NodeConfig.preset("mp_energy"))
        for x in range(200):
            node.observe("peer", _peer(50.0), 0.5, 50.0 + (x % 7))
        # The system coordinate keeps jittering while the application view
        # is updated only at change points, so they diverge slightly.
        assert node.application_update_count < node.observation_count

    def test_application_error_uses_peer_application_coordinate(self):
        node = CoordinateNode("n0", NodeConfig.preset("mp"))
        node.observe("peer", _peer(10.0), 0.5, 50.0)
        result = node.observe(
            "peer",
            _peer(10.0),
            0.5,
            50.0,
            peer_application_coordinate=_peer(1000.0),
        )
        other = node.observe("peer", _peer(10.0), 0.5, 50.0)
        assert result.application_relative_error is not None
        assert other.application_relative_error is not None
        assert result.application_relative_error > other.application_relative_error


class TestLatencyEstimation:
    def test_estimate_latency_for_known_peer(self):
        node = CoordinateNode("n0", NodeConfig.preset("raw"))
        for _ in range(50):
            node.observe("peer", _peer(80.0), 0.2, 80.0)
        estimate = node.estimate_latency("peer")
        assert estimate is not None and estimate > 0.0

    def test_estimate_latency_unknown_peer_is_none(self):
        node = CoordinateNode("n0")
        assert node.estimate_latency("nobody") is None

    def test_estimate_latency_to_arbitrary_coordinate(self):
        node = CoordinateNode("n0")
        assert node.estimate_latency_to(_peer(30.0)) == pytest.approx(30.0)


class TestLifecycle:
    def test_forget_peer_drops_filter_and_coordinate(self):
        node = CoordinateNode("n0", NodeConfig.preset("mp"))
        node.observe("peer", _peer(10.0), 0.5, 20.0)
        node.forget_peer("peer")
        assert node.peer_coordinate("peer") is None

    def test_reset_restores_bootstrap_state(self):
        node = CoordinateNode("n0", NodeConfig.preset("mp_energy"))
        for _ in range(30):
            node.observe("peer", _peer(10.0), 0.5, 20.0)
        node.reset()
        assert node.system_coordinate.is_origin()
        assert node.observation_count == 0
        assert node.application_update_count == 0
        assert node.known_peers == []
