"""Tests for empirical CDFs, summaries, histogram bucketing, and RNG helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.distributions import LOG_BUCKETS_MS, EmpiricalCDF, histogram_counts, summarize
from repro.stats.sampling import derive_rng, derive_seed, spawn_rngs


class TestEmpiricalCDF:
    def test_fraction_below_and_above(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_below(2.0) == pytest.approx(0.5)
        assert cdf.fraction_above(2.0) == pytest.approx(0.5)
        assert cdf.fraction_below(10.0) == 1.0
        assert cdf.fraction_below(0.0) == 0.0

    def test_percentiles(self):
        cdf = EmpiricalCDF(range(101))
        assert cdf.median() == pytest.approx(50.0)
        assert cdf.percentile(95.0) == pytest.approx(95.0)

    def test_points_are_monotonic(self):
        cdf = EmpiricalCDF(np.random.default_rng(0).normal(size=500))
        points = cdf.points(max_points=50)
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_points_decimation_cap(self):
        cdf = EmpiricalCDF(range(1000))
        assert len(cdf.points(max_points=100)) == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_count(self):
        assert EmpiricalCDF([1, 2, 3]).count == 3


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize(range(1, 101))
        assert summary["count"] == 100
        assert summary["median"] == pytest.approx(50.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p95"] == pytest.approx(95.05)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestHistogramCounts:
    def test_counts_partition_all_samples(self):
        values = [50.0, 150.0, 1500.0, 5000.0]
        buckets = histogram_counts(values, LOG_BUCKETS_MS)
        assert sum(count for _, count in buckets) == len(values)

    def test_open_ended_bucket_catches_extremes(self):
        buckets = histogram_counts([10_000.0], LOG_BUCKETS_MS)
        assert buckets[-1][1] == 1

    def test_custom_buckets(self):
        buckets = histogram_counts([5.0, 15.0], [(0.0, 10.0), (10.0, 20.0)])
        assert [count for _, count in buckets] == [1, 1]


class TestSamplingHelpers:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")

    def test_derive_seed_varies_with_label_and_base(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_derive_rng_streams_are_reproducible(self):
        a = derive_rng(7, "stream").normal(size=5)
        b = derive_rng(7, "stream").normal(size=5)
        assert np.allclose(a, b)

    def test_derived_streams_are_distinct(self):
        a = derive_rng(7, "one").normal(size=5)
        b = derive_rng(7, "two").normal(size=5)
        assert not np.allclose(a, b)

    def test_spawn_rngs_count(self):
        assert len(spawn_rngs(0, 5)) == 5
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
