"""Tests for the analysis harness and the text-plot rendering."""

from __future__ import annotations

import pytest

from repro.analysis.harness import (
    ExperimentScale,
    build_dataset,
    build_trace,
    clear_caches,
    compare_presets,
    heuristic_metrics,
    replay_preset,
    sweep,
)
from repro.analysis.textplot import render_cdf, render_histogram, render_series
from repro.core.config import NodeConfig
from repro.latency.planetlab import DatasetParameters


@pytest.fixture(scope="module")
def tiny_scale() -> ExperimentScale:
    return ExperimentScale(nodes=8, duration_s=240.0, ping_interval_s=2.0, seed=3)


class TestExperimentScale:
    def test_measurement_start_is_midpoint(self):
        scale = ExperimentScale(nodes=10, duration_s=1000.0)
        assert scale.measurement_start_s == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(nodes=1)
        with pytest.raises(ValueError):
            ExperimentScale(duration_s=0.0)
        with pytest.raises(ValueError):
            ExperimentScale(ping_interval_s=0.0)


class TestWorkloadCaching:
    def test_build_dataset_is_cached(self):
        clear_caches()
        a = build_dataset(8, seed=1)
        b = build_dataset(8, seed=1)
        assert a is b

    def test_different_parameters_get_different_datasets(self):
        clear_caches()
        a = build_dataset(8, seed=1)
        b = build_dataset(8, seed=1, parameters=DatasetParameters(noiseless=True))
        assert a is not b

    def test_build_trace_is_cached_per_scale(self, tiny_scale):
        clear_caches()
        a = build_trace(tiny_scale)
        b = build_trace(tiny_scale)
        assert a is b
        assert len(a) == tiny_scale.nodes * int(
            tiny_scale.duration_s / tiny_scale.ping_interval_s
        )


class TestComparisons:
    def test_replay_preset_accepts_names_and_configs(self, tiny_scale):
        trace = build_trace(tiny_scale)
        by_name = replay_preset(trace, "mp")
        by_config = replay_preset(trace, NodeConfig.preset("mp"))
        assert by_name.records_processed == by_config.records_processed

    def test_compare_presets_returns_snapshot_per_label(self, tiny_scale):
        trace = build_trace(tiny_scale)
        snapshots = compare_presets(
            trace,
            {"raw": "raw", "mp": "mp"},
            measurement_start_s=tiny_scale.measurement_start_s,
        )
        assert set(snapshots) == {"raw", "mp"}
        assert snapshots["mp"].node_count == tiny_scale.nodes

    def test_heuristic_metrics_reports_expected_keys(self, tiny_scale):
        trace = build_trace(tiny_scale)
        row = heuristic_metrics(
            trace,
            "energy",
            {"threshold": 8.0, "window_size": 8},
            measurement_start_s=tiny_scale.measurement_start_s,
        )
        assert {"median_relative_error", "instability", "updates_per_node_per_s"} <= set(row)
        assert row["instability"] >= 0.0

    def test_sweep_attaches_parameter_value(self):
        rows = sweep([1, 2, 3], lambda v: {"metric": float(v * 10)})
        assert [row["value"] for row in rows] == [1, 2, 3]
        assert rows[2]["metric"] == 30.0


class TestTextplot:
    def test_render_cdf_contains_labels_and_percentiles(self):
        text = render_cdf({"a": [1.0, 2.0, 3.0], "b": [10.0, 20.0]}, title="demo")
        assert "demo" in text
        assert "a (n=3):" in text
        assert "p50=" in text

    def test_render_cdf_log_scale(self):
        text = render_cdf({"a": [1.0, 10.0, 100.0, 1000.0]}, log_x=True)
        assert "(log scale)" in text

    def test_render_cdf_rejects_empty(self):
        with pytest.raises(ValueError):
            render_cdf({})
        with pytest.raises(ValueError):
            render_cdf({"a": [float("nan")]})

    def test_render_series_dimensions(self):
        text = render_series([(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)], width=20, height=5)
        grid_lines = [line for line in text.splitlines() if line.startswith("  |")]
        assert len(grid_lines) == 5
        assert all(len(line) == 24 for line in grid_lines)

    def test_render_series_rejects_all_nan(self):
        with pytest.raises(ValueError):
            render_series([(0.0, float("nan"))])

    def test_render_histogram_log_bars(self):
        buckets = [((0.0, 100.0), 1000), ((100.0, 200.0), 10), ((200.0, float("inf")), 0)]
        text = render_histogram(buckets)
        lines = text.splitlines()
        assert "1000" in lines[0]
        assert lines[2].count("#") == 0

    def test_render_histogram_empty(self):
        assert "(no samples)" in render_histogram([((0.0, 1.0), 0)])
