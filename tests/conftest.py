"""Shared fixtures for the test suite.

The heavier fixtures (datasets, traces) are session-scoped: the content is
deterministic for a given seed, and the objects are treated as read-only by
tests, so sharing them keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import NodeConfig
from repro.latency.planetlab import DatasetParameters, PlanetLabDataset
from repro.latency.topology import GeographicTopology


@pytest.fixture(scope="session")
def small_topology() -> GeographicTopology:
    """A 12-host topology spanning all four default regions."""
    return GeographicTopology.generate(12, seed=1)


@pytest.fixture(scope="session")
def small_dataset() -> PlanetLabDataset:
    """A 12-host synthetic PlanetLab dataset."""
    return PlanetLabDataset.generate(12, seed=1)


@pytest.fixture(scope="session")
def noiseless_dataset() -> PlanetLabDataset:
    """A dataset whose links always return their baseline RTT."""
    return PlanetLabDataset.generate(
        10, seed=2, parameters=DatasetParameters(noiseless=True)
    )


@pytest.fixture(scope="session")
def short_trace(small_dataset: PlanetLabDataset):
    """A five-minute trace over the small dataset (read-only)."""
    return small_dataset.generate_trace(duration_s=300.0, ping_interval_s=2.0)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(123)


@pytest.fixture()
def mp_config() -> NodeConfig:
    return NodeConfig.preset("mp")


@pytest.fixture()
def raw_config() -> NodeConfig:
    return NodeConfig.preset("raw")
