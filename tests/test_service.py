"""Tests for the coordinate query service (snapshot store, indexes, planner)."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core.coordinate import Coordinate
from repro.overlay.knn import CoordinateIndex
from repro.service.index import (
    INDEX_KINDS,
    DenseIndex,
    GridIndex,
    VPTreeIndex,
    build_index,
)
from repro.service.planner import (
    LRUTTLCache,
    Query,
    QueryError,
    QueryPlanner,
)
from repro.service.snapshot import ArraySnapshot, CoordinateSnapshot, SnapshotStore
from repro.service.workload import (
    QUERY_MIXES,
    generate_queries,
    payload_checksum,
    run_workload,
)


def _random_coordinates(rng, n, *, with_heights=False):
    coordinates = {}
    for i in range(n):
        height = float(abs(rng.normal(scale=3.0))) if with_heights and i % 5 == 0 else 0.0
        coordinates[f"n{i:05d}"] = Coordinate(
            rng.normal(scale=60.0, size=3).tolist(), height=height
        )
    return coordinates


# ----------------------------------------------------------------------
# Spatial indexes vs the linear oracle
# ----------------------------------------------------------------------
class TestIndexesMatchOracle:
    """Randomized equivalence: spatial results must be identical to linear.

    The acceptance bar is 1000 randomized k-nearest trials per spatial
    index kind, spread over several universes (with and without height
    terms) plus range and placement queries.
    """

    UNIVERSES = ((100, False), (250, True), (400, False))
    TRIALS_PER_UNIVERSE = 334  # x3 universes > 1k trials per kind

    @pytest.mark.parametrize("kind", ["vptree", "grid", "dense"])
    def test_knn_identical_over_1k_random_trials(self, kind):
        rng = np.random.default_rng(42)
        for nodes, with_heights in self.UNIVERSES:
            coordinates = _random_coordinates(rng, nodes, with_heights=with_heights)
            oracle = CoordinateIndex()
            oracle.update_many(coordinates)
            index = build_index(kind)
            index.update_many(coordinates)
            for _ in range(self.TRIALS_PER_UNIVERSE):
                target = Coordinate(rng.normal(scale=70.0, size=3).tolist())
                k = int(rng.integers(1, 10))
                assert index.nearest(target, k) == oracle.nearest(target, k)

    @pytest.mark.parametrize("kind", ["vptree", "grid", "dense"])
    def test_within_identical(self, kind):
        rng = np.random.default_rng(43)
        coordinates = _random_coordinates(rng, 300, with_heights=True)
        oracle = CoordinateIndex()
        oracle.update_many(coordinates)
        index = build_index(kind)
        index.update_many(coordinates)
        for _ in range(200):
            target = Coordinate(rng.normal(scale=70.0, size=3).tolist())
            radius = float(rng.uniform(0.0, 120.0))
            assert index.within(target, radius) == oracle.within(target, radius)

    def test_min_cost_host_identical(self):
        rng = np.random.default_rng(44)
        coordinates = _random_coordinates(rng, 300, with_heights=True)
        names = sorted(coordinates)
        oracle = CoordinateIndex()
        oracle.update_many(coordinates)
        index = VPTreeIndex()
        index.update_many(coordinates)
        for _ in range(200):
            picked = rng.choice(len(names), size=int(rng.integers(1, 6)), replace=False)
            endpoints = [coordinates[names[int(i)]] for i in picked]
            assert index.min_cost_host(endpoints) == oracle.min_cost_host(endpoints)

    @pytest.mark.parametrize("kind", ["vptree", "grid", "dense"])
    def test_lattice_ties_identical_to_oracle(self, kind):
        # Regression: integer-lattice coordinates create many exact
        # distance ties, and pruning bounds computed from rounded floats
        # can land one ulp above a tied node's true distance.  Without
        # float-safe (loosened) bounds the vp-tree pruned nodes sitting
        # exactly at the k-th-best distance or the range radius.
        rng = np.random.default_rng(42)
        coordinates = {
            f"n{i:03d}": Coordinate(
                [float(int(v)) for v in rng.integers(-8, 9, size=2)]
            )
            for i in range(120)
        }
        oracle = CoordinateIndex()
        oracle.update_many(coordinates)
        index = build_index(kind)
        index.update_many(coordinates)
        for _ in range(400):
            target = Coordinate([float(int(v)) for v in rng.integers(-10, 11, size=2)])
            k = int(rng.integers(1, 12))
            assert index.nearest(target, k) == oracle.nearest(target, k)
            radius = float(int(rng.integers(0, 8)))
            assert index.within(target, radius) == oracle.within(target, radius)
        if kind == "vptree":
            names = sorted(coordinates)
            for _ in range(100):
                picked = rng.choice(len(names), size=3, replace=False)
                endpoints = [coordinates[names[int(i)]] for i in picked]
                assert index.min_cost_host(endpoints) == oracle.min_cost_host(endpoints)

    @pytest.mark.parametrize("kind", ["vptree", "grid", "dense"])
    def test_duplicate_coordinates_tie_break_matches_oracle(self, kind):
        # Exact ties must resolve by insertion order, like the oracle's
        # stable sort over its insertion-ordered dict.
        point = Coordinate([5.0, 5.0, 5.0])
        coordinates = {f"dup{i}": point for i in range(40)}
        coordinates["far"] = Coordinate([500.0, 0.0, 0.0])
        oracle = CoordinateIndex()
        oracle.update_many(coordinates)
        index = build_index(kind)
        index.update_many(coordinates)
        target = Coordinate([4.0, 5.0, 5.0])
        for k in (1, 3, 17, 41):
            assert index.nearest(target, k) == oracle.nearest(target, k)
        assert index.within(target, 10.0) == oracle.within(target, 10.0)

    @pytest.mark.parametrize("kind", ["vptree", "grid", "dense"])
    def test_exclusions_and_updates(self, kind):
        rng = np.random.default_rng(45)
        coordinates = _random_coordinates(rng, 120)
        oracle = CoordinateIndex()
        oracle.update_many(coordinates)
        index = build_index(kind)
        index.update_many(coordinates)
        target = coordinates["n00003"]
        exclude = ["n00003", "n00010", "n00042"]
        assert index.nearest(target, 5, exclude=exclude) == oracle.nearest(
            target, 5, exclude=exclude
        )
        # Mutations invalidate and rebuild lazily.
        moved = Coordinate([1000.0, 0.0, 0.0])
        for store in (oracle, index):
            store.update("n00007", moved)
            store.remove("n00001")
        assert index.nearest(moved, 4) == oracle.nearest(moved, 4)
        assert len(index) == len(oracle) == 119

    def test_empty_index_queries(self):
        for kind in ("vptree", "grid", "dense"):
            index = build_index(kind)
            assert index.nearest(Coordinate([0.0, 0.0, 0.0]), 3) == []
            assert index.within(Coordinate([0.0, 0.0, 0.0]), 10.0) == []

    def test_dense_min_cost_host_identical(self):
        rng = np.random.default_rng(46)
        coordinates = _random_coordinates(rng, 300, with_heights=True)
        names = sorted(coordinates)
        oracle = CoordinateIndex()
        oracle.update_many(coordinates)
        index = build_index("dense")
        index.update_many(coordinates)
        for _ in range(200):
            picked = rng.choice(len(names), size=int(rng.integers(1, 6)), replace=False)
            endpoints = [coordinates[names[int(i)]] for i in picked]
            assert index.min_cost_host(endpoints) == oracle.min_cost_host(endpoints)

    def test_build_index_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown index kind"):
            build_index("btree")

    def test_grid_rejects_mixed_dimensionality(self):
        index = GridIndex()
        index.update("a", Coordinate([1.0, 2.0, 3.0]))
        index.update("b", Coordinate([1.0, 2.0]))
        with pytest.raises(ValueError, match="uniform dimensionality"):
            index.nearest(Coordinate([0.0, 0.0, 0.0]), 1)


# ----------------------------------------------------------------------
# Dense batch entry points and the array snapshot bridge
# ----------------------------------------------------------------------
class TestDenseBatchAndArrays:
    def _universe(self, n=300, seed=50):
        rng = np.random.default_rng(seed)
        ids = [f"n{i:05d}" for i in range(n)]
        components = rng.normal(scale=60.0, size=(n, 3))
        heights = np.where(
            np.arange(n) % 5 == 0, np.abs(rng.normal(scale=3.0, size=n)), 0.0
        )
        coordinates = {
            node_id: Coordinate(row.tolist(), float(height))
            for node_id, row, height in zip(ids, components, heights)
        }
        return ids, components, heights, coordinates, rng

    def test_batch_entry_points_match_single_queries(self):
        ids, components, heights, coordinates, rng = self._universe()
        oracle = CoordinateIndex()
        oracle.update_many(coordinates)
        index = DenseIndex.from_arrays(ids, components, heights)
        targets = [ids[int(i)] for i in rng.integers(0, len(ids), size=150)]
        for k in (1, 4):
            for target, answer in zip(targets, index.knn_batch_by_id(targets, k)):
                assert answer == oracle.nearest(
                    coordinates[target], k, exclude=[target]
                )
        for target, answer in zip(targets, index.range_batch_by_id(targets, 60.0)):
            assert answer == oracle.within(coordinates[target], 60.0)

    def test_batch_unknown_targets_are_none(self):
        ids, components, heights, _, _ = self._universe(n=20)
        index = DenseIndex.from_arrays(ids, components, heights)
        answers = index.knn_batch_by_id(["nope", ids[0]], 2)
        assert answers[0] is None and answers[1] is not None

    def test_array_snapshot_read_api_matches_object_snapshot(self):
        ids, components, heights, coordinates, _ = self._universe(n=40)
        objectified = CoordinateSnapshot(3, coordinates, source="obj")
        arrayified = ArraySnapshot(3, ids, components, heights, source="arr")
        assert len(arrayified) == len(objectified)
        assert arrayified.node_ids() == objectified.node_ids()
        assert (ids[7] in arrayified) and ("nope" not in arrayified)
        assert arrayified.coordinate_of(ids[7]) == objectified.coordinate_of(ids[7])
        assert arrayified.coordinate_of("nope") is None
        assert dict(arrayified.items()) == dict(objectified.items())
        assert (
            arrayified.to_dict()["coordinates"] == objectified.to_dict()["coordinates"]
        )

    def test_array_snapshot_arrays_are_frozen(self):
        ids, components, heights, _, _ = self._universe(n=10)
        snapshot = ArraySnapshot(1, ids, components, heights)
        _, frozen, _ = snapshot.arrays()
        with pytest.raises(ValueError):
            frozen[0, 0] = 1.0

    def test_publish_arrays_versions_and_dense_adoption(self):
        ids, components, heights, _, _ = self._universe(n=60)
        store = SnapshotStore(index_kind="dense")
        snapshot = store.publish_arrays(ids, components, heights, source="epoch1")
        assert snapshot.version == 1 and store.version == 1
        index = store.index_for()
        # Zero-copy adoption: the dense index holds the snapshot's arrays.
        _, snap_components, snap_heights = snapshot.arrays()
        assert index._components is snap_components
        assert index._heights is snap_heights
        later = store.publish_arrays(ids, components + 1.0, heights, source="epoch2")
        assert later.version == 2
        assert store.at(1) is snapshot

    def test_publish_arrays_refuses_staged_object_updates(self):
        ids, components, heights, _, _ = self._universe(n=4)
        store = SnapshotStore()
        store.apply("x", Coordinate([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError, match="staged"):
            store.publish_arrays(ids, components, heights)

    def test_object_commit_on_top_of_array_epoch(self):
        ids, components, heights, _, _ = self._universe(n=12)
        store = SnapshotStore.from_arrays(ids, components, heights)
        store.apply(ids[0], Coordinate([0.0, 0.0, 0.0]))
        merged = store.commit()
        assert merged.version == 2
        assert merged.coordinate_of(ids[0]) == Coordinate([0.0, 0.0, 0.0])
        assert merged.coordinate_of(ids[1]) == Coordinate(
            components[1].tolist(), float(heights[1])
        )

    @pytest.mark.parametrize("kind", ["dense", "vptree", "grid"])
    def test_batched_flush_identical_to_single_queries(self, kind):
        """Batch-vs-single identity: one flushed batch must answer exactly
        like per-query execution -- results, tie order and cache behaviour
        -- for the batched dense path and the per-query fallback kinds."""
        from repro.service.planner import QueryPlanner
        from repro.service.workload import (
            generate_queries,
            payload_checksum,
            run_workload,
        )

        ids, components, heights, coordinates, _ = self._universe(n=250)
        queries = generate_queries(sorted(ids), 400, mix="mixed", seed=3)

        def planner():
            if kind == "dense":
                store = SnapshotStore.from_arrays(
                    ids, components, heights, index_kind=kind
                )
            else:
                store = SnapshotStore.from_coordinates(coordinates, index_kind=kind)
            return QueryPlanner(store, clock=lambda: 0.0, timer=lambda: 0.0)

        batched = run_workload(planner(), queries, batch_size=64, timer=lambda: 0.0)
        single_planner = planner()
        singles = [single_planner.execute(query) for query in queries]
        assert payload_checksum(singles) == batched.checksum
        assert single_planner.cache_hit_rate() == batched.cache_hit_rate
        # The linear oracle agrees end to end as well.
        linear = run_workload(
            QueryPlanner(
                SnapshotStore.from_coordinates(coordinates, index_kind="linear"),
                clock=lambda: 0.0,
                timer=lambda: 0.0,
            ),
            queries,
            batch_size=64,
            timer=lambda: 0.0,
        )
        assert linear.checksum == batched.checksum
        assert linear.stats["kinds"] == dict(batched.stats["kinds"])

    def test_grid_cell_assignment_matches_scalar_loop(self):
        """The vectorized build-time bucketing must bucket exactly like
        the per-node _cell_key loop it replaced."""
        _, _, _, coordinates, _ = self._universe(n=350, seed=51)
        index = GridIndex()
        index.update_many(coordinates)
        index._ensure_built()
        looped = {}
        for node_id, coordinate in coordinates.items():
            key = index._cell_key(coordinate.components)
            looped.setdefault(key, []).append(node_id)
        vectorized = {
            key: [node_id for _, node_id, _ in entries]
            for key, entries in index._cells.items()
        }
        assert vectorized == looped
        for key, entries in index._cells.items():
            assert index._cell_min_height[key] == min(
                coordinate.height for _, _, coordinate in entries
            )


# ----------------------------------------------------------------------
# Snapshot store
# ----------------------------------------------------------------------
class TestSnapshotStore:
    def test_versions_advance_only_on_commit(self):
        store = SnapshotStore()
        assert store.version == 0
        store.apply("a", Coordinate([1.0, 0.0]))
        assert store.version == 0
        assert store.pending_updates == 1
        snapshot = store.commit()
        assert snapshot.version == 1
        assert store.pending_updates == 0
        assert snapshot.coordinate_of("a") == Coordinate([1.0, 0.0])

    def test_noop_commit_mints_no_version(self):
        store = SnapshotStore()
        store.apply("a", Coordinate([1.0, 0.0]))
        store.commit()
        assert store.commit().version == 1

    def test_open_snapshot_is_immutable_under_later_commits(self):
        store = SnapshotStore()
        store.apply("a", Coordinate([1.0, 0.0]))
        store.commit()
        held = store.latest()
        store.apply("a", Coordinate([9.0, 0.0]))
        store.apply("b", Coordinate([2.0, 0.0]))
        store.commit()
        assert held.version == 1
        assert held.coordinate_of("a") == Coordinate([1.0, 0.0])
        assert "b" not in held
        assert store.latest().coordinate_of("a") == Coordinate([9.0, 0.0])
        with pytest.raises(TypeError):
            held.coordinates["a"] = Coordinate([0.0, 0.0])  # read-only proxy

    def test_retire_removes_on_next_commit(self):
        store = SnapshotStore.from_coordinates(
            {"a": Coordinate([1.0]), "b": Coordinate([2.0])}
        )
        store.retire("a")
        snapshot = store.commit()
        assert "a" not in snapshot
        assert "b" in snapshot

    def test_history_eviction(self):
        store = SnapshotStore(history=2)
        for i in range(4):
            store.apply("a", Coordinate([float(i)]))
            store.commit()
        assert store.at(4).coordinate_of("a") == Coordinate([3.0])
        assert store.at(3) is not None
        with pytest.raises(KeyError, match="not retained"):
            store.at(1)

    def test_index_memoised_per_version(self):
        store = SnapshotStore.from_coordinates(
            {"a": Coordinate([1.0, 0.0]), "b": Coordinate([5.0, 0.0])}
        )
        first = store.index_for()
        assert store.index_for() is first
        store.apply("c", Coordinate([2.0, 0.0]))
        store.commit()
        second = store.index_for()
        assert second is not first
        assert len(second) == 3

    def test_index_for_evicted_version_is_not_memoised(self):
        store = SnapshotStore(history=2)
        store.apply("a", Coordinate([1.0, 0.0]))
        held = store.commit()
        for i in range(4):
            store.apply("a", Coordinate([float(i + 2), 0.0]))
            store.commit()
        # Version 1 fell out of the history window; a slow reader can
        # still build an index over its snapshot, but the store must not
        # retain it (nothing would ever sweep it).
        assert store.index_for(held) is not None
        assert 1 not in store._indexes
        assert store.index_for(held) is not store.index_for(held)

    def test_ingest_collector_level_selection(self):
        from repro.metrics.collector import MetricsCollector

        collector = MetricsCollector()
        collector.record_sample(
            1.0,
            "host1",
            system_coordinate=Coordinate([1.0, 1.0]),
            application_coordinate=Coordinate([2.0, 2.0]),
        )
        store = SnapshotStore()
        store.ingest_collector(collector)
        snapshot = store.commit()
        assert snapshot.coordinate_of("host1") == Coordinate([2.0, 2.0])
        system_store = SnapshotStore()
        system_store.ingest_collector(collector, level="system")
        assert system_store.commit().coordinate_of("host1") == Coordinate([1.0, 1.0])

    def test_from_snapshot_preserves_the_saved_version(self):
        snapshot = CoordinateSnapshot(
            5, {"a": Coordinate([1.0]), "b": Coordinate([2.0])}, source="artifact"
        )
        store = SnapshotStore.from_snapshot(snapshot)
        assert store.version == 5
        planner = QueryPlanner(store)
        assert planner.execute(Query.nearest("a")).snapshot_version == 5
        store.apply("c", Coordinate([3.0]))
        assert store.commit().version == 6

    def test_snapshot_json_roundtrip(self, tmp_path):
        snapshot = CoordinateSnapshot(
            3,
            {"a": Coordinate([1.5, -2.5], height=0.5), "b": Coordinate([0.0, 4.0])},
            source="roundtrip",
        )
        path = tmp_path / "snap.json"
        snapshot.save(path)
        loaded = CoordinateSnapshot.load(path)
        assert loaded.version == 3
        assert loaded.source == "roundtrip"
        assert dict(loaded.coordinates) == dict(snapshot.coordinates)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            SnapshotStore(index_kind="nope")
        with pytest.raises(ValueError):
            SnapshotStore(history=0)


class TestConcurrentIngest:
    """Updates arriving mid-query must not bleed into an open snapshot."""

    def test_open_view_stable_while_writer_hammers_commits(self):
        rng = np.random.default_rng(7)
        store = SnapshotStore.from_coordinates(_random_coordinates(rng, 80))
        held = store.latest()
        frozen = {node_id: coordinate for node_id, coordinate in held.items()}
        held_index = store.index_for(held)
        stop = threading.Event()
        committed = []

        def writer():
            generation = 0
            while not stop.is_set():
                generation += 1
                store.apply_many(
                    {
                        f"n{i:05d}": Coordinate([float(generation), float(i), 0.0])
                        for i in range(0, 80, 3)
                    }
                )
                store.apply(f"new{generation}", Coordinate([0.5, 0.5, 0.5]))
                committed.append(store.commit().version)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            target = Coordinate([10.0, 10.0, 10.0])
            baseline = held_index.nearest(target, 5)
            for _ in range(300):
                # The open view and its index never change, no matter how
                # many versions the writer publishes underneath.
                assert held_index.nearest(target, 5) == baseline
                assert dict(held.items()) == frozen
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert held.version == 1
        assert not thread.is_alive()
        assert committed, "writer thread never committed"
        assert store.version == committed[-1]
        assert store.latest().version > held.version

    def test_flush_pins_one_version_per_batch(self):
        store = SnapshotStore.from_coordinates(
            {"a": Coordinate([0.0, 0.0]), "b": Coordinate([3.0, 0.0]), "c": Coordinate([9.0, 0.0])}
        )
        planner = QueryPlanner(store)
        for query in (Query.nearest("a"), Query.nearest("b"), Query.nearest("c")):
            planner.submit(query)
        results = planner.flush()
        assert {result.snapshot_version for result in results} == {1}
        # Stage an update mid-stream: the *next* flush sees the new version.
        planner.submit(Query.nearest("a"))
        store.apply("d", Coordinate([0.1, 0.0]))
        store.commit()
        (result,) = planner.flush()
        assert result.snapshot_version == 2
        assert result.payload["neighbors"][0]["node_id"] == "d"


# ----------------------------------------------------------------------
# Planner: cache, batching, stats
# ----------------------------------------------------------------------
class TestLRUTTLCache:
    def test_ttl_expiry_with_injected_clock(self):
        now = [0.0]
        cache = LRUTTLCache(max_entries=8, ttl_s=10.0, clock=lambda: now[0])
        cache.put("k", "v")
        assert cache.get("k") == (True, "v")
        now[0] = 10.5
        assert cache.get("k") == (False, None)
        assert cache.expirations == 1

    def test_lru_eviction_order(self):
        cache = LRUTTLCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a")[0]  # refresh a; b is now least-recent
        cache.put("c", 3)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUTTLCache(max_entries=0)
        with pytest.raises(ValueError):
            LRUTTLCache(ttl_s=0.0)

    def test_capacity_evictions_classified_lru_vs_rollover(self):
        cache = LRUTTLCache(max_entries=2)
        cache.current_version = 2
        cache.put((1, "stale-a"), 1)  # superseded version
        cache.put((2, "live-a"), 2)
        cache.put((2, "live-b"), 3)  # evicts the stale entry
        assert cache.evictions_rollover == 1 and cache.evictions_lru == 0
        cache.put((2, "live-c"), 4)  # evicts a live entry
        assert cache.evictions_rollover == 1 and cache.evictions_lru == 1

    def test_unversioned_keys_always_classify_as_lru(self):
        cache = LRUTTLCache(max_entries=1)
        cache.current_version = 5
        cache.put("plain", 1)
        cache.put("other", 2)
        assert cache.evictions_lru == 1 and cache.evictions_rollover == 0

    def test_rollover_requires_known_current_version(self):
        cache = LRUTTLCache(max_entries=1)
        cache.put((1, "a"), 1)
        cache.put((2, "b"), 2)
        # Without current_version the cache cannot call it rollover.
        assert cache.evictions_lru == 1 and cache.evictions_rollover == 0


class TestQueryPlanner:
    @pytest.fixture()
    def store(self):
        rng = np.random.default_rng(9)
        return SnapshotStore.from_coordinates(_random_coordinates(rng, 40))

    def test_cache_key_includes_snapshot_version(self, store):
        planner = QueryPlanner(store)
        query = Query.knn("n00001", k=3)
        first = planner.execute(query)
        second = planner.execute(query)
        assert not first.cached and second.cached
        assert first.payload == second.payload
        # A new coordinate generation must miss the cache.
        store.apply("n00001", Coordinate([999.0, 999.0, 999.0]))
        store.commit()
        third = planner.execute(query)
        assert not third.cached
        assert third.payload != first.payload

    def test_consumer_mutation_cannot_corrupt_the_cache(self, store):
        planner = QueryPlanner(store)
        query = Query.knn("n00002", k=3)
        first = planner.execute(query)
        pristine = json.loads(json.dumps(first.payload))
        first.payload["neighbors"].clear()
        first.payload["vandalised"] = True
        second = planner.execute(query)
        assert second.cached
        assert second.payload == pristine
        second.payload["neighbors"].pop()
        assert planner.execute(query).payload == pristine

    def test_stats_account_per_kind(self, store):
        planner = QueryPlanner(store)
        planner.execute_batch(
            [Query.knn("n00001", k=2), Query.knn("n00001", k=2), Query.pairwise("n00001", "n00002")]
        )
        stats = planner.stats()
        assert stats["kinds"]["knn"]["submitted"] == 2
        assert stats["kinds"]["knn"]["executed"] == 1
        assert stats["kinds"]["knn"]["cache_hits"] == 1
        assert stats["kinds"]["pairwise"]["executed"] == 1
        assert stats["batches_flushed"] == 1
        assert stats["kinds"]["knn"]["latency_exact"] is True
        assert planner.cache_hit_rate() == pytest.approx(1.0 / 3.0)

    def test_stats_split_rollover_from_lru_evictions(self, store):
        # A cache of 3 entries serving across a snapshot rollover: the
        # old generation's entries must evict as 'rollover', same-version
        # capacity pressure as 'lru'.
        planner = QueryPlanner(store, cache_entries=3)
        planner.execute_batch(
            [Query.knn(f"n{i:05d}", k=2) for i in range(1, 4)]
        )
        store.apply("n00001", Coordinate([123.0, 45.0, 6.0]))
        store.commit()
        planner.execute_batch(
            [Query.knn(f"n{i:05d}", k=2) for i in range(1, 4)]
        )
        stats = planner.stats()["cache"]
        assert stats["evictions_rollover"] == 3
        assert stats["evictions_lru"] == 0
        # Same-version overflow now evicts as plain LRU.
        planner.execute_batch([Query.knn("n00004", k=2)])
        stats = planner.stats()["cache"]
        assert stats["evictions_lru"] == 1
        assert stats["evictions_rollover"] == 3

    def test_query_kinds_answer_shapes(self, store):
        planner = QueryPlanner(store)
        knn = planner.execute(Query.knn("n00000", k=4)).payload
        assert len(knn["neighbors"]) == 4
        assert knn["neighbors"][0]["node_id"] != "n00000"
        nearest = planner.execute(Query.nearest("n00000")).payload
        assert nearest["neighbors"][0] == knn["neighbors"][0]
        rng_payload = planner.execute(Query.range("n00000", 80.0)).payload
        assert all(hit["predicted_rtt_ms"] <= 80.0 for hit in rng_payload["hits"])
        pair = planner.execute(Query.pairwise("n00000", "n00001")).payload
        snapshot = store.latest()
        assert pair["predicted_rtt_ms"] == snapshot.coordinate_of("n00000").distance(
            snapshot.coordinate_of("n00001")
        )
        centroid_payload = planner.execute(
            Query.centroid(("n00000", "n00001", "n00002"))
        ).payload
        assert centroid_payload["members"] == 3
        assert centroid_payload["nearest_host"] in store.latest().node_ids()

    def test_flush_isolates_failing_queries(self, store):
        # One bad request must not poison the batch: good queries before
        # and after it still get answers, the bad slot carries the error.
        planner = QueryPlanner(store)
        planner.submit(Query.knn("n00001", k=2))
        planner.submit(Query.knn("ghost", k=2))
        planner.submit(Query.knn("n00002", k=2))
        results = planner.flush()
        assert [r.error is None for r in results] == [True, False, True]
        assert results[0].payload["neighbors"]
        assert results[1].payload is None
        assert "unknown node" in results[1].error
        assert results[2].payload["neighbors"]
        assert planner.pending_queries == 0
        assert planner.stats()["kinds"]["knn"]["errors"] == 1

    def test_unknown_nodes_raise_query_error(self, store):
        planner = QueryPlanner(store)
        with pytest.raises(QueryError, match="unknown node"):
            planner.execute(Query.knn("ghost"))
        with pytest.raises(QueryError, match="unknown node"):
            planner.execute(Query.pairwise("n00000", "ghost"))
        assert planner.stats()["kinds"]["knn"]["errors"] == 1

    def test_query_validation(self):
        with pytest.raises(QueryError):
            Query(kind="teleport")
        with pytest.raises(QueryError):
            Query.knn("a", k=0)
        with pytest.raises(QueryError):
            Query(kind="knn")  # no target
        with pytest.raises(QueryError):
            Query(kind="pairwise", pair=("a", ""))


# ----------------------------------------------------------------------
# Workload generation
# ----------------------------------------------------------------------
class TestWorkload:
    def test_streams_are_deterministic(self):
        nodes = [f"n{i}" for i in range(30)]
        first = generate_queries(nodes, 100, mix="mixed", seed=5)
        second = generate_queries(nodes, 100, mix="mixed", seed=5)
        assert first == second
        assert generate_queries(nodes, 100, mix="mixed", seed=6) != first

    def test_mix_controls_kinds(self):
        nodes = [f"n{i}" for i in range(10)]
        for mix, kind in (
            ("knn", "knn"),
            ("nearest", "nearest"),
            ("pairwise-latency", "pairwise"),
            ("centroid", "centroid"),
        ):
            queries = generate_queries(nodes, 25, mix=mix, seed=1)
            assert {query.kind for query in queries} == {kind}
        mixed_kinds = {q.kind for q in generate_queries(nodes, 300, mix="mixed", seed=1)}
        assert mixed_kinds == set(QUERY_MIXES["mixed"])

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="unknown query mix"):
            generate_queries(["a", "b"], 10, mix="write-heavy")

    def test_checksum_identical_across_index_kinds(self):
        rng = np.random.default_rng(11)
        coordinates = _random_coordinates(rng, 150, with_heights=True)
        queries = generate_queries(sorted(coordinates), 400, mix="mixed", seed=2)
        checksums = set()
        for kind in INDEX_KINDS:
            store = SnapshotStore.from_coordinates(coordinates, index_kind=kind)
            report = run_workload(QueryPlanner(store), queries)
            checksums.add(report.checksum)
            assert report.query_count == 400
        assert len(checksums) == 1

    def test_zipf_skew_produces_cache_hits(self):
        rng = np.random.default_rng(12)
        coordinates = _random_coordinates(rng, 100)
        store = SnapshotStore.from_coordinates(coordinates)
        queries = generate_queries(sorted(coordinates), 500, mix="knn", seed=3)
        report = run_workload(QueryPlanner(store), queries)
        assert report.cache_hit_rate > 0.2
        assert payload_checksum(report.results) == report.checksum


# ----------------------------------------------------------------------
# Scenario integration
# ----------------------------------------------------------------------
class TestQueriesScenarioWorkload:
    def test_queries_workload_runs_and_agrees_with_oracle(self):
        from repro.engine.kernel import run_scenario
        from repro.scenarios.spec import ScenarioSpec, WorkloadSpec

        spec = ScenarioSpec(
            name="queries-tiny",
            mode="replay",
            preset="mp",
            duration_s=120.0,
            network=__import__("repro.scenarios.spec", fromlist=["NetworkSpec"]).NetworkSpec(
                nodes=8
            ),
            workload=WorkloadSpec(kind="queries", params={"count": 64, "mix": "mixed"}),
            seed=1,
        )
        result = run_scenario(spec).result
        assert result.metrics["query_count"] == 64.0
        assert result.metrics["query_index_linear_agreement"] == 1.0
        assert 0.0 <= result.metrics["query_cache_hit_rate"] <= 1.0
        assert result.workload["checksum"]
        # Deterministic: a re-run reproduces the canonical payload exactly.
        rerun = run_scenario(spec).result
        assert rerun.canonical_json() == result.canonical_json()

    def test_spec_validates_mix_and_index(self):
        from repro.scenarios.spec import ScenarioError, ScenarioSpec, WorkloadSpec

        with pytest.raises(ScenarioError, match="workload.mix"):
            ScenarioSpec(
                name="bad-mix",
                workload=WorkloadSpec(kind="queries", params={"mix": "write-heavy"}),
            )
        with pytest.raises(ScenarioError, match="workload.index"):
            ScenarioSpec(
                name="bad-index",
                workload=WorkloadSpec(kind="queries", params={"index": "btree"}),
            )


# ----------------------------------------------------------------------
# CLI: repro serve / repro query
# ----------------------------------------------------------------------
class TestServiceCli:
    @pytest.fixture()
    def snapshot_path(self, tmp_path):
        rng = np.random.default_rng(21)
        snapshot = CoordinateSnapshot(
            1, _random_coordinates(rng, 30), source="cli-test"
        )
        path = tmp_path / "snap.json"
        snapshot.save(path)
        return path

    def test_query_info(self, capsys, snapshot_path):
        from repro.analysis.cli import main

        assert main(["query", "--snapshot", str(snapshot_path), "info"]) == 0
        out = capsys.readouterr().out
        assert "30 nodes" in out

    def test_query_knn_prints_neighbors(self, capsys, snapshot_path):
        from repro.analysis.cli import main

        assert (
            main(["query", "--snapshot", str(snapshot_path), "knn", "n00004", "--k", "2"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["target"] == "n00004"
        assert len(payload["neighbors"]) == 2

    def test_malformed_snapshot_file_is_a_readable_error(self, capsys, tmp_path):
        from repro.analysis.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["query", "--snapshot", str(bad), "info"]) == 2
        assert "malformed snapshot" in capsys.readouterr().err
        bad.write_text(json.dumps({"coordinates": {"a": {"height": 1.0}}}))
        assert main(["query", "--snapshot", str(bad), "info"]) == 2
        assert "no 'components'" in capsys.readouterr().err
        bad.write_text(json.dumps({"coordinates": {"a": {"components": [None, 2.0]}}}))
        assert main(["query", "--snapshot", str(bad), "info"]) == 2
        assert "malformed snapshot" in capsys.readouterr().err

    def test_unparseable_and_missing_snapshots_are_one_line_errors(
        self, capsys, tmp_path
    ):
        # Every failure mode must exit 2 with a single clear stderr line
        # (never a traceback): missing file, invalid JSON, valid JSON of
        # the wrong shape, a directory path, and a bad version field.
        from repro.analysis.cli import main

        missing = tmp_path / "nope.json"
        assert main(["query", "--snapshot", str(missing), "info"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "does not exist" in err
        assert len(err.strip().splitlines()) == 1

        bad = tmp_path / "bad.json"
        bad.write_text("{not json at all")
        assert main(["query", "--snapshot", str(bad), "info"]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err and len(err.strip().splitlines()) == 1

        bad.write_text("[1, 2, 3]")
        assert main(["query", "--snapshot", str(bad), "info"]) == 2
        err = capsys.readouterr().err
        assert "must be an object" in err and len(err.strip().splitlines()) == 1

        assert main(["query", "--snapshot", str(tmp_path), "info"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1

        bad.write_text(json.dumps({"version": "vX", "coordinates": {}}))
        assert main(["query", "--snapshot", str(bad), "info"]) == 2
        err = capsys.readouterr().err
        assert "'version' must be an integer" in err

    def test_serve_daemon_cli_rejects_missing_snapshot_cleanly(self, capsys, tmp_path):
        from repro.analysis.cli import main

        missing = tmp_path / "nope.json"
        assert main(["serve-daemon", "--snapshot", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1

    def test_query_unknown_node_is_an_error(self, capsys, snapshot_path):
        from repro.analysis.cli import main

        assert main(["query", "--snapshot", str(snapshot_path), "knn", "ghost"]) == 2
        assert "unknown node" in capsys.readouterr().err

    def test_query_workload_compare_linear(self, capsys, snapshot_path):
        from repro.analysis.cli import main

        args = [
            "query", "--snapshot", str(snapshot_path),
            "workload", "--count", "200", "--mix", "mixed", "--compare-linear",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "identical results: True" in out
        assert "cache hit rate" in out

    def test_serve_writes_snapshot_and_serves_queries(self, capsys, tmp_path):
        from repro.analysis.cli import main
        from repro.scenarios import ScenarioSpec
        from repro.scenarios.registry import _REGISTRY, register

        name = "service-cli-test-tiny"

        def factory() -> ScenarioSpec:
            payload = ScenarioSpec(
                name=name, mode="replay", preset="mp", duration_s=120.0, seed=1
            ).to_dict()
            payload["network"] = {**payload["network"], "nodes": 6}
            return ScenarioSpec.from_dict(payload)

        register(name, factory)
        out_path = tmp_path / "served.json"
        try:
            args = [
                "serve", name,
                "--out", str(out_path),
                "--queries", "50", "--mix", "knn", "--compare-linear",
            ]
            assert main(args) == 0
        finally:
            _REGISTRY.pop(name, None)
        out = capsys.readouterr().out
        assert "snapshot v1: 6 node coordinates" in out
        assert "identical results: True" in out
        snapshot = CoordinateSnapshot.load(out_path)
        assert len(snapshot) == 6
        assert snapshot.source == name
