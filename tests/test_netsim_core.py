"""Tests for the discrete-event simulator core (events, clock, scheduling)."""

from __future__ import annotations

import pytest

from repro.netsim.events import Event, EventQueue
from repro.netsim.simulator import Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append("c"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(2.0, lambda: order.append("b"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("first"))
        queue.push(1.0, lambda: order.append("second"))
        queue.pop().callback()
        queue.pop().callback()
        assert order == ["first", "second"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert queue.pop().time_s == 2.0

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(5.0, lambda: None)
        assert queue.peek_time() == 5.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_in_is_relative_to_now(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(5.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [5.0]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [3.0]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator(start_time_s=10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_in(-1.0, lambda: None)

    def test_run_until_does_not_execute_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(5.0, lambda: fired.append("early"))
        sim.schedule_in(50.0, lambda: fired.append("late"))
        sim.run_until(10.0)
        assert fired == ["early"]
        assert sim.pending_events == 1

    def test_run_until_advances_clock_to_horizon(self):
        sim = Simulator()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def periodic():
            fired.append(sim.now)
            if sim.now < 4.5:
                sim.schedule_in(1.0, periodic)

        sim.schedule_in(1.0, periodic)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_in(float(i), lambda: None)
        sim.run_until(10.0)
        assert sim.events_processed == 5

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule_in(float(i) / 10.0, lambda: None)
        processed = sim.run_until(10.0, max_events=3)
        assert processed == 3

    def test_run_all_drains_queue(self):
        sim = Simulator()
        fired = []
        for i in range(4):
            sim.schedule_in(float(i), lambda i=i: fired.append(i))
        sim.run_all()
        assert fired == [0, 1, 2, 3]

    def test_run_until_rejects_past_horizon(self):
        sim = Simulator(start_time_s=10.0)
        with pytest.raises(ValueError):
            sim.run_until(5.0)

    def test_determinism_of_interleaved_schedules(self):
        def run_once():
            sim = Simulator()
            order = []
            sim.schedule_in(1.0, lambda: order.append("a"))
            sim.schedule_in(1.0, lambda: (order.append("b"), sim.schedule_in(0.0, lambda: order.append("c"))))
            sim.run_until(2.0)
            return order

        assert run_once() == run_once()
