"""Tests for the sharded execution engine: determinism, caching, merging."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.engine import ResultCache, ScenarioResult, execute, run_scenario
from repro.metrics.collector import MetricsCollector
from repro.scenarios import ScenarioGrid, ScenarioSpec


def _start_method() -> str:
    """Prefer fork (fast, Linux) but fall back to the portable default."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@pytest.fixture(scope="module")
def small_grid() -> list:
    base = ScenarioSpec(
        name="engine-test",
        mode="replay",
        preset="mp",
        duration_s=200.0,
        ping_interval_s=2.0,
        seed=5,
    )
    # 4 cells x 8 nodes; heterogeneous filter settings.
    base_dict = base.to_dict()
    base_dict["network"] = {**base_dict["network"], "nodes": 8}
    return ScenarioGrid(ScenarioSpec.from_dict(base_dict)).sweep(
        history=(2, 4), percentile=(25, 50)
    )


class TestDeterminism:
    def test_same_spec_twice_is_byte_identical(self, small_grid):
        first = run_scenario(small_grid[0]).result
        second = run_scenario(small_grid[0]).result
        assert first.canonical_json() == second.canonical_json()

    def test_serial_vs_parallel_byte_identical(self, small_grid):
        serial = execute(small_grid, workers=1)
        parallel = execute(small_grid, workers=2, mp_context=_start_method())
        assert parallel.workers == 2
        assert serial.canonical_json() == parallel.canonical_json()
        # Results come back in spec order regardless of completion order.
        assert [r.name for r in parallel.results] == [s.name for s in small_grid]

    def test_simulate_mode_parallel_matches_serial(self):
        base = ScenarioSpec(
            name="engine-sim-test",
            mode="simulate",
            preset="mp_energy",
            duration_s=200.0,
            seed=3,
        )
        payload = base.to_dict()
        payload["network"] = {**payload["network"], "nodes": 8}
        cells = ScenarioGrid(ScenarioSpec.from_dict(payload)).sweep(
            **{"loss_probability": (0.0, 0.05)}
        )
        serial = execute(cells, workers=1)
        parallel = execute(cells, workers=2, mp_context=_start_method())
        assert serial.canonical_json() == parallel.canonical_json()


class TestCache:
    def test_second_run_is_served_from_cache(self, small_grid, tmp_path):
        cache_dir = tmp_path / "cache"
        first = execute(small_grid, workers=1, cache_dir=cache_dir)
        assert first.cache_hits == 0
        second = execute(small_grid, workers=1, cache_dir=cache_dir)
        assert second.cache_hits == len(small_grid)
        assert all(result.cached for result in second.results)
        assert first.canonical_json() == second.canonical_json()

    def test_cache_is_incremental_per_cell(self, small_grid, tmp_path):
        cache_dir = tmp_path / "cache"
        execute(small_grid[:2], workers=1, cache_dir=cache_dir)
        report = execute(small_grid, workers=1, cache_dir=cache_dir)
        assert report.cache_hits == 2

    def test_cache_keyed_by_seed(self, small_grid, tmp_path):
        cache_dir = tmp_path / "cache"
        execute(small_grid[:1], workers=1, cache_dir=cache_dir)
        reseeded = ScenarioSpec.from_dict({**small_grid[0].to_dict(), "seed": 99})
        report = execute([reseeded], workers=1, cache_dir=cache_dir)
        assert report.cache_hits == 0

    def test_corrupt_cache_entry_is_a_miss(self, small_grid, tmp_path):
        cache_dir = tmp_path / "cache"
        execute(small_grid[:1], workers=1, cache_dir=cache_dir)
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{not json")
        report = execute(small_grid[:1], workers=1, cache_dir=cache_dir)
        assert report.cache_hits == 0

    def test_cached_result_restores_current_name(self, small_grid, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run = run_scenario(small_grid[0])
        cache.put(run.result)
        renamed = ScenarioSpec.from_dict(
            {**small_grid[0].to_dict(), "name": "renamed-cell"}
        )
        cached = cache.get(renamed)
        assert cached is not None
        assert cached.cached
        assert cached.name == "renamed-cell"
        assert cached.metrics == run.result.metrics


class TestCollectorMerging:
    def test_merged_collector_spans_the_grid(self, small_grid):
        report = execute(
            small_grid[:2], workers=2, keep_collectors=True, mp_context=_start_method()
        )
        merged = report.merged_collector()
        assert merged.system_snapshot().node_count == 16
        prefixes = {node_id.split("/")[0] for node_id in merged.node_ids()}
        assert prefixes == {small_grid[0].name, small_grid[1].name}

    def test_merged_collector_requires_keep_collectors(self, small_grid):
        report = execute(small_grid[:1], workers=1)
        with pytest.raises(ValueError, match="keep_collectors"):
            report.merged_collector()

    def test_merge_rejects_colliding_node_ids(self, small_grid):
        collector = run_scenario(small_grid[0]).collector
        with pytest.raises(ValueError, match="duplicate node id"):
            MetricsCollector.merge([collector, collector])

    def test_merge_rejects_different_measurement_windows(self, small_grid):
        # Shards from a duration sweep have different windows; windowed
        # rates (instability) would silently change meaning if merged.
        collector = run_scenario(small_grid[0]).collector
        other_spec = ScenarioSpec.from_dict(
            {**small_grid[0].to_dict(), "duration_s": 300.0}
        )
        other = run_scenario(other_spec).collector
        with pytest.raises(ValueError, match="different measurement windows"):
            MetricsCollector.merge([collector, other], prefixes=["a", "b"])

    def test_merge_preserves_aggregate_metrics(self, small_grid):
        collectors = [run_scenario(spec).collector for spec in small_grid[:2]]
        merged = MetricsCollector.merge(collectors, prefixes=["a", "b"])
        expected = sum(c.aggregate_instability(level="system") for c in collectors)
        assert merged.aggregate_instability(level="system") == pytest.approx(expected)


class TestScenarioResult:
    def test_round_trip(self, small_grid):
        result = run_scenario(small_grid[0]).result
        clone = ScenarioResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.canonical_json() == result.canonical_json()

    def test_canonical_json_excludes_timing(self, small_grid):
        result = run_scenario(small_grid[0]).result
        assert result.elapsed_s > 0.0
        assert "elapsed" not in result.canonical_json()

    def test_workers_must_be_positive(self, small_grid):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            execute(small_grid, workers=0)
