"""Calibration tests: the synthetic trace must reproduce Section III's statistics.

These tests pin the statistical properties the paper's analysis relies on,
so that changes to the latency substrate cannot silently invalidate the
experiments (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency.planetlab import PlanetLabDataset


@pytest.fixture(scope="module")
def calibration_trace():
    dataset = PlanetLabDataset.generate(24, seed=11)
    return dataset, dataset.generate_trace(duration_s=900.0, ping_interval_s=1.0, seed=11)


class TestGlobalDistribution:
    def test_fraction_above_one_second_matches_paper(self, calibration_trace):
        """The paper reports 0.4% of all samples above one second."""
        _, trace = calibration_trace
        rtts = trace.rtts()
        fraction = float((rtts >= 1000.0).mean())
        assert 0.001 < fraction < 0.02

    def test_bulk_of_samples_below_a_few_hundred_ms(self, calibration_trace):
        _, trace = calibration_trace
        rtts = trace.rtts()
        assert float(np.percentile(rtts, 90.0)) < 500.0

    def test_tail_reaches_multiple_seconds(self, calibration_trace):
        _, trace = calibration_trace
        assert trace.rtts().max() > 2000.0

    def test_distribution_spans_three_orders_of_magnitude(self, calibration_trace):
        _, trace = calibration_trace
        rtts = trace.rtts()
        assert rtts.max() / max(rtts.min(), 0.1) > 100.0


class TestPerLinkDistribution:
    def test_individual_links_have_heavy_tails(self, calibration_trace):
        """Figure 3: outliers are a per-link phenomenon."""
        dataset, _ = calibration_trace
        a, b = dataset.topology.host_ids[:2]
        stream = dataset.generate_link_stream(a, b, duration_s=5000.0, ping_interval_s=1.0)
        rtts = stream.rtts()
        assert rtts.max() > 5.0 * np.median(rtts)

    def test_link_outliers_are_spread_over_time(self, calibration_trace):
        """Figure 3 (bottom): long-latency pings keep occurring throughout."""
        dataset, _ = calibration_trace
        a, b = dataset.topology.host_ids[:2]
        stream = dataset.generate_link_stream(a, b, duration_s=8000.0, ping_interval_s=1.0)
        rtts = stream.rtts()
        threshold = 3.0 * np.median(rtts)
        halves = np.array_split(rtts, 2)
        assert all(int((half > threshold).sum()) > 0 for half in halves)

    def test_low_percentile_is_a_stable_predictor(self, calibration_trace):
        """Section III: a low percentile of recent history predicts the next value."""
        dataset, _ = calibration_trace
        a, b = dataset.topology.host_ids[:2]
        stream = dataset.generate_link_stream(a, b, duration_s=2000.0, ping_interval_s=1.0)
        rtts = stream.rtts()
        p25_first = np.percentile(rtts[: len(rtts) // 2], 25.0)
        p25_second = np.percentile(rtts[len(rtts) // 2 :], 25.0)
        assert abs(p25_first - p25_second) / p25_first < 0.2

    def test_mean_is_a_poor_predictor_compared_to_low_percentile(self, calibration_trace):
        """The long tail drags the mean above the typical observation."""
        dataset, _ = calibration_trace
        a, b = dataset.topology.host_ids[:2]
        stream = dataset.generate_link_stream(a, b, duration_s=5000.0, ping_interval_s=1.0)
        rtts = stream.rtts()
        median = float(np.median(rtts))
        assert float(rtts.mean()) > median
        assert abs(float(np.percentile(rtts, 25.0)) - median) / median < 0.15
