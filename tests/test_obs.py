"""Tests for the telemetry layer (:mod:`repro.obs`).

The load-bearing guarantees:

* histograms over a fixed :class:`BucketScheme` merge **exactly**: shard
  histograms fold into precisely the histogram a single store would have
  recorded for the union stream, bit for bit;
* bucket-read percentiles land within one multiplicative bucket width of
  the exact sample percentile (cross-checked against both
  ``np.percentile`` and :class:`StreamingPercentile` in exact mode);
* Prometheus text rendering is a pure function of the recorded values --
  same recordings, byte-identical text, regardless of creation order;
* spans cost one attribute check when disabled, and traced requests get
  ordered per-stage entries;
* the tail-regression analyzer passes a baseline against itself and a
  uniform machine-speed rescale, and fails an injected tail blow-up.
"""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.obs import get_registry, set_spans_enabled, span
from repro.obs.registry import (
    BucketScheme,
    Counter,
    DEFAULT_SCHEME,
    Gauge,
    LatencyHistogram,
    TelemetryRegistry,
)
from repro.obs.regression import (
    Thresholds,
    collect_telemetry_sections,
    compare_histograms,
    compare_payloads,
)
from repro.obs.regression import main as regression_main
from repro.obs.tracing import NOOP_SPAN, TraceRecorder, make_span
from repro.stats.percentile import StreamingPercentile


# ----------------------------------------------------------------------
# Bucket scheme
# ----------------------------------------------------------------------
class TestBucketScheme:
    def test_boundaries_are_pure_function_of_parameters(self):
        a = BucketScheme(lo=1e-3, per_decade=20, decades=8)
        b = BucketScheme(lo=1e-3, per_decade=20, decades=8)
        assert a == b
        assert a.boundaries() == b.boundaries()
        assert len(a.boundaries()) == 161
        assert a.bucket_count == 162  # finite buckets + overflow

    def test_bucket_index_uses_le_semantics(self):
        scheme = DEFAULT_SCHEME
        edges = scheme.boundaries()
        # A value exactly on an edge belongs to that edge's bucket.
        assert scheme.bucket_index(edges[0]) == 0
        assert scheme.bucket_index(edges[40]) == 40
        # Beyond the last edge: the overflow bucket.
        assert scheme.bucket_index(edges[-1] * 2.0) == len(edges)

    def test_growth_is_one_bucket_width(self):
        scheme = DEFAULT_SCHEME
        edges = scheme.boundaries()
        assert edges[1] / edges[0] == pytest.approx(scheme.growth)
        assert scheme.growth == pytest.approx(10.0 ** (1.0 / 20.0))

    def test_dict_roundtrip(self):
        scheme = BucketScheme(lo=0.5, per_decade=10, decades=4)
        assert BucketScheme.from_dict(scheme.to_dict()) == scheme

    def test_validation(self):
        with pytest.raises(ValueError, match="lo"):
            BucketScheme(lo=0.0)
        with pytest.raises(ValueError, match="per_decade"):
            BucketScheme(per_decade=0)


# ----------------------------------------------------------------------
# Instruments and the registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        registry = TelemetryRegistry()
        first = registry.counter("served_total", kind="knn")
        second = registry.counter("served_total", kind="knn")
        other = registry.counter("served_total", kind="range")
        assert first is second and first is not other
        first.inc(3)
        assert second.value == 3 and other.value == 0

    def test_type_mismatch_rejected(self):
        registry = TelemetryRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_histogram_scheme_mismatch_rejected(self):
        registry = TelemetryRegistry()
        registry.histogram("latency_ms")
        with pytest.raises(ValueError, match="different scheme"):
            registry.histogram("latency_ms", scheme=BucketScheme(lo=1.0))

    def test_counter_is_monotonic(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="monotonic"):
            counter.inc(-1)

    def test_gauge_moves_both_ways_and_tracks_high_water(self):
        gauge = Gauge("g")
        gauge.set(7.0)
        gauge.dec(2.0)
        gauge.inc(1.0)
        assert gauge.value == 6.0
        gauge.update_max(3.0)
        assert gauge.value == 6.0
        gauge.update_max(9.0)
        assert gauge.value == 9.0

    def test_histogram_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            LatencyHistogram("h").observe(float("nan"))

    def test_snapshot_is_json_safe(self):
        registry = TelemetryRegistry()
        registry.counter("a_total").inc()
        registry.histogram("b_ms").observe(1.5)
        json.dumps(registry.snapshot())


# ----------------------------------------------------------------------
# Histogram percentiles vs exact estimators
# ----------------------------------------------------------------------
class TestHistogramPercentiles:
    @pytest.fixture(scope="class")
    def lognormal_sample(self):
        rng = np.random.default_rng(17)
        return rng.lognormal(mean=1.2, sigma=0.9, size=5000)

    def test_within_one_bucket_of_np_percentile(self, lognormal_sample):
        histogram = LatencyHistogram("latency_ms")
        for value in lognormal_sample:
            histogram.observe(value)
        growth = histogram.scheme.growth
        for p in (50.0, 90.0, 99.0, 99.9):
            exact = float(np.percentile(lognormal_sample, p))
            read = histogram.percentile(p)
            # Bucket edges sit at or above their order statistic, never
            # more than one multiplicative width above it.
            assert exact <= read <= exact * growth * (1.0 + 1e-12), (p, exact, read)

    def test_agrees_with_streaming_percentile_exact_mode(self, lognormal_sample):
        histogram = LatencyHistogram("latency_ms")
        estimator = StreamingPercentile(capacity=len(lognormal_sample))
        for value in lognormal_sample:
            histogram.observe(value)
            estimator.add(value)
        assert estimator.is_exact
        growth = histogram.scheme.growth
        for p in (50.0, 99.0):
            exact = estimator.percentile(p)
            assert exact <= histogram.percentile(p) <= exact * growth * (1.0 + 1e-12)

    def test_percentile_edge_cases(self):
        histogram = LatencyHistogram("h")
        with pytest.raises(ValueError, match="no observations"):
            histogram.percentile(50.0)
        histogram.observe(3.0)
        with pytest.raises(ValueError, match="within"):
            histogram.percentile(101.0)
        # p100 clamps to the observed maximum, not a bucket edge.
        histogram.observe(8.0)
        assert histogram.percentile(100.0) == 8.0
        assert histogram.min == 3.0 and histogram.max == 8.0

    def test_overflow_bucket_reads_as_observed_max(self):
        histogram = LatencyHistogram("h")
        top = histogram.scheme.boundaries()[-1]
        histogram.observe(top * 50.0)
        histogram.observe(1.0)
        assert histogram.percentile(100.0) == top * 50.0
        assert histogram.bucket_counts()[-1] == 1

    def test_quantile_summary_keys(self):
        histogram = LatencyHistogram("h")
        for value in range(1, 200):
            histogram.observe(float(value))
        summary = histogram.quantile_summary()
        assert set(summary) == {"p50", "p90", "p99", "p999"}
        assert summary["p50"] <= summary["p90"] <= summary["p99"] <= summary["p999"]

    def test_quantile_summary_of_empty_histogram_is_all_none(self):
        # Regression: this used to raise ValueError via percentile() on
        # a zero-count histogram, breaking callers that summarize
        # instruments which simply have not observed anything yet.
        summary = LatencyHistogram("empty").quantile_summary()
        assert summary == {"p50": None, "p90": None, "p99": None, "p999": None}

    def test_observe_many_matches_sequential_observes(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(1.0, 0.8, size=500)
        one = LatencyHistogram("a")
        for value in values:
            one.observe(float(value))
        many = LatencyHistogram("b")
        many.observe_many(values)
        assert many.count == one.count
        assert many.bucket_counts() == one.bucket_counts()
        assert many.min == one.min and many.max == one.max
        # The batched sum uses math.fsum; equal to within an ulp or two.
        assert many.sum == pytest.approx(one.sum, rel=1e-12)
        with pytest.raises(ValueError, match="NaN"):
            many.observe_many([1.0, float("nan")])

    def test_registry_histogram_honors_custom_scheme(self):
        # Regression: _get_or_create used to build the instrument with
        # the default scheme and then fail its own mismatch check.
        registry = TelemetryRegistry()
        scheme = BucketScheme(lo=1e-6, per_decade=10, decades=8)
        histogram = registry.histogram("custom", scheme=scheme)
        assert histogram.scheme == scheme
        assert registry.histogram("custom", scheme=scheme) is histogram


# ----------------------------------------------------------------------
# Exact merging: the property the whole layer is built on
# ----------------------------------------------------------------------
class TestHistogramMerge:
    def test_shard_merge_equals_single_store_histogram(self):
        """histogram(A ++ B ++ C) == merge of the three shard histograms."""
        rng = np.random.default_rng(3)
        stream = rng.lognormal(mean=0.5, sigma=1.1, size=3000)
        single = LatencyHistogram("serve_ms")
        shards = [LatencyHistogram("serve_ms") for _ in range(3)]
        for position, value in enumerate(stream):
            single.observe(value)
            shards[position % 3].observe(value)
        merged = LatencyHistogram("serve_ms")
        for shard in shards:
            merged.merge(shard)
        assert merged.bucket_counts() == single.bucket_counts()
        assert merged.count == single.count
        # sum is the one float accumulator: addition order differs, so
        # it agrees to rounding, not bit-for-bit like the bucket counts.
        assert merged.sum == pytest.approx(single.sum, rel=1e-12)
        assert merged.min == single.min and merged.max == single.max
        for p in (50.0, 90.0, 99.0, 99.9):
            assert merged.percentile(p) == single.percentile(p)

    def test_merge_does_not_mutate_other(self):
        a, b = LatencyHistogram("h"), LatencyHistogram("h")
        a.observe(1.0)
        b.observe(2.0)
        before = b.to_dict()
        a.merge(b)
        assert b.to_dict() == before
        assert a.count == 2

    def test_scheme_mismatch_rejected(self):
        a = LatencyHistogram("h")
        b = LatencyHistogram("h", scheme=BucketScheme(lo=1.0))
        with pytest.raises(ValueError, match="different bucket schemes"):
            a.merge(b)

    def test_dict_roundtrip_is_exact(self):
        histogram = LatencyHistogram("h")
        rng = np.random.default_rng(9)
        for value in rng.lognormal(size=500):
            histogram.observe(value)
        restored = LatencyHistogram.from_dict(histogram.to_dict())
        assert restored.bucket_counts() == histogram.bucket_counts()
        assert restored.count == histogram.count
        assert restored.sum == histogram.sum
        assert restored.min == histogram.min and restored.max == histogram.max
        json.dumps(histogram.to_dict())  # wire form is JSON-safe


# ----------------------------------------------------------------------
# Deterministic Prometheus rendering
# ----------------------------------------------------------------------
def _populated_registry(creation_order: str) -> TelemetryRegistry:
    registry = TelemetryRegistry()

    def build_counter():
        for kind in ("knn", "range"):
            registry.counter("served_total", "Queries served.", kind=kind).inc(11)

    def build_gauge():
        registry.gauge("in_flight", "Concurrent requests.").set(4)

    def build_histogram():
        histogram = registry.histogram("latency_ms", "Serve latency.", kind="knn")
        for value in np.random.default_rng(1).lognormal(size=400):
            histogram.observe(value)

    builders = {"c": build_counter, "g": build_gauge, "h": build_histogram}
    for key in creation_order:
        builders[key]()
    return registry


class TestPrometheusRendering:
    def test_byte_identical_across_runs_and_creation_order(self):
        first = _populated_registry("cgh").render_prometheus()
        second = _populated_registry("hgc").render_prometheus()
        assert first == second
        assert isinstance(first, str) and first.endswith("\n")

    def test_exposition_structure(self):
        text = _populated_registry("cgh").render_prometheus()
        lines = text.splitlines()
        assert "# TYPE served_total counter" in lines
        assert "# TYPE in_flight gauge" in lines
        assert "# TYPE latency_ms histogram" in lines
        assert "# HELP served_total Queries served." in lines
        assert 'served_total{kind="knn"} 11' in lines
        assert 'served_total{kind="range"} 11' in lines
        assert "in_flight 4" in lines
        # The +Inf bucket always carries the full count.
        assert any(
            line.startswith("latency_ms_bucket") and 'le="+Inf"' in line
            and line.endswith(" 400")
            for line in lines
        )
        assert any(line.startswith("latency_ms_count") and line.endswith(" 400") for line in lines)

    def test_bucket_lines_are_sparse_and_cumulative(self):
        registry = TelemetryRegistry()
        histogram = registry.histogram("h_ms")
        histogram.observe(1.0)
        histogram.observe(1.0)
        histogram.observe(100.0)
        lines = registry.render_prometheus().splitlines()
        buckets = [line for line in lines if line.startswith("h_ms_bucket")]
        # Two populated edges plus +Inf -- zero buckets are not emitted.
        assert len(buckets) == 3
        assert buckets[0].endswith(" 2")
        assert buckets[1].endswith(" 3")
        assert 'le="+Inf"' in buckets[2] and buckets[2].endswith(" 3")

    def test_label_escaping(self):
        registry = TelemetryRegistry()
        registry.counter("c_total", source='say "hi"\nback\\slash').inc()
        text = registry.render_prometheus()
        assert 'source="say \\"hi\\"\\nback\\\\slash"' in text

    def test_empty_registry_renders_empty(self):
        assert TelemetryRegistry().render_prometheus() == ""


# ----------------------------------------------------------------------
# Spans and tracing
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_is_the_shared_noop(self):
        registry = TelemetryRegistry()
        assert registry.span("anything", shard=3) is NOOP_SPAN
        assert make_span(registry, "x", None, {}) is NOOP_SPAN
        # No instruments materialise from no-op spans.
        with registry.span("anything"):
            pass
        assert registry.instruments() == []

    def test_enabled_span_records_into_span_ms(self):
        registry = TelemetryRegistry(spans_enabled=True)
        with registry.span("query.scatter", shard=1):
            pass
        with registry.span("query.scatter", shard=1):
            pass
        histogram = registry.histogram("span_ms", span="query.scatter", shard=1)
        assert histogram.count == 2

    def test_trace_recorder_collects_ordered_stages(self):
        registry = TelemetryRegistry()  # spans disabled: trace still records
        trace = TraceRecorder()
        with registry.span("daemon.request", trace=trace, op="knn"):
            with registry.span("query.scatter", trace=trace, shard=0):
                pass
            with registry.span("query.merge", trace=trace):
                pass
        stages = trace.as_payload()
        # Inner spans close first, so they precede the enclosing request.
        assert [entry["stage"] for entry in stages] == [
            "query.scatter",
            "query.merge",
            "daemon.request",
        ]
        assert stages[0]["shard"] == 0
        assert all(entry["ms"] >= 0.0 for entry in stages)
        json.dumps(stages)

    def test_global_registry_helpers(self):
        registry = get_registry()
        try:
            set_spans_enabled(True)
            with span("obs.test.stage", probe=1):
                pass
            histogram = registry.histogram("span_ms", span="obs.test.stage", probe=1)
            assert histogram.count >= 1
        finally:
            set_spans_enabled(False)
        assert span("obs.test.other") is NOOP_SPAN


# ----------------------------------------------------------------------
# The tail-regression analyzer
# ----------------------------------------------------------------------
def _report_with_histogram(values) -> dict:
    """A minimal load-report-shaped document with one telemetry kind."""
    histogram = LatencyHistogram("load_latency_ms")
    for value in values:
        histogram.observe(float(value))
    return {
        "query_count": len(values),
        "telemetry": {
            "unit": "ms",
            "kinds": {
                "knn": {
                    "count": histogram.count,
                    "p50_ms": histogram.percentile(50.0),
                    "p99_ms": histogram.percentile(99.0),
                    "histogram": histogram.to_dict(),
                }
            },
        },
    }


@pytest.fixture(scope="module")
def baseline_report():
    rng = np.random.default_rng(23)
    return _report_with_histogram(rng.lognormal(mean=1.0, sigma=0.4, size=2000))


class TestTailRegressionAnalyzer:
    def test_baseline_against_itself_is_clean(self, baseline_report):
        findings, compared = compare_payloads(baseline_report, baseline_report)
        assert findings == [] and compared == 1

    def test_uniform_machine_speed_rescale_is_clean(self, baseline_report):
        # 4x slower across the board: amplification and the aligned
        # bucket shape are both invariant, so the gate must not flap.
        rng = np.random.default_rng(23)
        slower = _report_with_histogram(
            rng.lognormal(mean=1.0, sigma=0.4, size=2000) * 4.0
        )
        findings, compared = compare_payloads(baseline_report, slower)
        assert findings == [] and compared == 1

    def test_injected_tail_shift_fails(self, baseline_report):
        # 3% of requests stall for ~100x the median: a classic lock
        # convoy.  Throughput ratios barely move; the tail gate must.
        rng = np.random.default_rng(29)
        values = rng.lognormal(mean=1.0, sigma=0.4, size=2000)
        stalled = values.copy()
        stalled[: len(stalled) // 33] *= 100.0
        current = _report_with_histogram(stalled)
        findings, compared = compare_payloads(baseline_report, current)
        assert compared == 1
        assert findings, "a 100x stall mode on 3% of requests must be flagged"
        assert any("amplification" in finding for finding in findings)

    def test_getting_faster_never_fails(self, baseline_report):
        # A tighter distribution (tail collapsed toward the median) is an
        # improvement; the direction-aware gate stays quiet.
        rng = np.random.default_rng(23)
        tighter = _report_with_histogram(
            np.minimum(rng.lognormal(mean=1.0, sigma=0.4, size=2000), 4.0)
        )
        findings, _ = compare_payloads(baseline_report, tighter)
        assert not any("amplification" in finding for finding in findings)

    def test_small_sections_are_skipped_not_judged(self):
        noisy_base = _report_with_histogram([1.0, 2.0, 3.0])
        noisy_cur = _report_with_histogram([1.0, 2.0, 300.0])
        findings, compared = compare_payloads(noisy_base, noisy_cur)
        assert compared == 1 and findings == []

    def test_no_shared_telemetry_passes_vacuously(self, baseline_report):
        findings, compared = compare_payloads({"qps": 100.0}, baseline_report)
        assert findings == [] and compared == 0

    def test_collect_sections_walks_nested_documents(self, baseline_report):
        document = {
            "benchmark": "server_load",
            "shard_scaling": [
                {"shards": 1, "telemetry": baseline_report["telemetry"]},
                {"shards": 2, "telemetry": baseline_report["telemetry"]},
            ],
            "ingest": {"telemetry": baseline_report["telemetry"]},
        }
        sections = collect_telemetry_sections(document)
        assert set(sections) == {
            "shard_scaling[0]",
            "shard_scaling[1]",
            "ingest",
        }
        top = collect_telemetry_sections(baseline_report)
        assert set(top) == {"<root>"}

    def test_compare_histograms_thresholds(self):
        rng = np.random.default_rng(5)
        base = LatencyHistogram("h")
        for value in rng.lognormal(size=1000):
            base.observe(value)
        findings = compare_histograms(
            base, base, context="t", thresholds=Thresholds(min_count=2000)
        )
        assert findings == []  # below min_count: skipped

    def test_cli_exit_codes(self, tmp_path, baseline_report, capsys):
        baseline_path = tmp_path / "base.json"
        baseline_path.write_text(json.dumps(baseline_report))
        assert regression_main([str(baseline_path), str(baseline_path)]) == 0
        assert "tail gate clean" in capsys.readouterr().out

        shifted = copy.deepcopy(baseline_report)
        hist = shifted["telemetry"]["kinds"]["knn"]["histogram"]
        counts = {int(k): v for k, v in hist["counts"].items()}
        median_idx = max(counts, key=counts.get)
        moved = counts[median_idx] // 2
        counts[median_idx] -= moved
        counts[median_idx + 45] = counts.get(median_idx + 45, 0) + moved
        hist["counts"] = {str(k): v for k, v in counts.items() if v}
        hist["max"] = max(hist["max"], 1e4)
        current_path = tmp_path / "cur.json"
        current_path.write_text(json.dumps(shifted))
        assert regression_main([str(baseline_path), str(current_path)]) == 1
        assert "TAIL REGRESSION" in capsys.readouterr().out

        assert regression_main([str(baseline_path), str(tmp_path / "missing.json")]) == 2
