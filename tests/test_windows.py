"""Tests for the two-window change-detection bookkeeping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.windows import ChangeDetectionWindows


class TestWindowMechanics:
    def test_requires_positive_window_size(self):
        with pytest.raises(ValueError):
            ChangeDetectionWindows(0)

    def test_not_ready_before_two_windows_of_data(self):
        windows = ChangeDetectionWindows(4)
        for value in range(7):
            windows.add(value)
        assert not windows.ready

    def test_ready_after_two_windows_of_data(self):
        windows = ChangeDetectionWindows(4)
        for value in range(8):
            windows.add(value)
        assert windows.ready

    def test_start_window_freezes_at_first_k_elements(self):
        windows = ChangeDetectionWindows(3)
        for value in range(10):
            windows.add(value)
        assert windows.start_window == [0, 1, 2]

    def test_current_window_slides(self):
        windows = ChangeDetectionWindows(3)
        for value in range(10):
            windows.add(value)
        assert windows.current_window == [7, 8, 9]

    def test_both_windows_share_prefix_while_filling(self):
        windows = ChangeDetectionWindows(4)
        for value in range(3):
            windows.add(value)
        assert windows.start_window == [0, 1, 2]
        assert windows.current_window == [0, 1, 2]

    def test_extend_matches_repeated_add(self):
        a = ChangeDetectionWindows(3)
        b = ChangeDetectionWindows(3)
        values = list(range(9))
        a.extend(values)
        for value in values:
            b.add(value)
        assert a.start_window == b.start_window
        assert a.current_window == b.current_window

    def test_declare_change_point_resets_everything(self):
        windows = ChangeDetectionWindows(3)
        for value in range(10):
            windows.add(value)
        windows.declare_change_point()
        assert windows.start_window == []
        assert windows.current_window == []
        assert windows.observations_since_reset == 0
        assert not windows.ready

    def test_windows_refill_after_change_point(self):
        windows = ChangeDetectionWindows(2)
        windows.extend([1, 2, 3, 4])
        windows.declare_change_point()
        windows.extend([10, 11, 12, 13])
        assert windows.start_window == [10, 11]
        assert windows.current_window == [12, 13]
        assert windows.ready

    def test_len_counts_observations_since_reset(self):
        windows = ChangeDetectionWindows(4)
        windows.extend(range(6))
        assert len(windows) == 6

    def test_reset_is_alias_for_change_point(self):
        windows = ChangeDetectionWindows(2)
        windows.extend([1, 2, 3])
        windows.reset()
        assert len(windows) == 0

    def test_window_copies_are_independent(self):
        windows = ChangeDetectionWindows(2)
        windows.extend([1, 2, 3, 4])
        snapshot = windows.current_window
        snapshot.append(99)
        assert windows.current_window == [3, 4]

    def test_generic_over_element_type(self):
        windows: ChangeDetectionWindows[str] = ChangeDetectionWindows(2)
        windows.extend(["a", "b", "c"])
        assert windows.start_window == ["a", "b"]

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=0, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_window_sizes_never_exceed_k(self, k, n):
        windows = ChangeDetectionWindows(k)
        windows.extend(range(n))
        assert len(windows.start_window) == min(k, n)
        assert len(windows.current_window) == min(k, n)
        assert windows.ready == (n >= 2 * k)

    @given(st.integers(min_value=1, max_value=10), st.lists(st.integers(), min_size=0, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_current_window_is_stream_suffix(self, k, values):
        windows = ChangeDetectionWindows(k)
        windows.extend(values)
        assert windows.current_window == values[-k:] if values else windows.current_window == []
