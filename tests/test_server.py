"""Tests for the async coordinate-serving daemon (:mod:`repro.server`).

The load-bearing guarantees:

* sharded scatter-gather answers are byte-identical -- floats, ordering,
  ties -- to the single-store linear oracle, for every shard count and
  index kind;
* a response is always internally consistent with exactly one published
  snapshot version, even while epochs stream in concurrently (no torn
  reads across shards);
* the wire protocol round-trips payloads exactly, and the daemon's
  replies over TCP checksum-match the in-process oracle;
* admission control sheds load explicitly and shutdown is clean.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import numpy as np
import pytest

from repro.core.coordinate import Coordinate
from repro.server.client import AsyncCoordinateClient
from repro.server.daemon import CoordinateServer
from repro.server.load import run_load, synthetic_coordinates
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    HEADER,
    ProtocolError,
    decode_frame,
    encode_frame,
    frame_length,
    query_to_request,
    request_to_query,
    split_frames,
)
from repro.server.sharding import ShardGeneration, ShardedCoordinateStore, shard_of
from repro.service.planner import Query, QueryError, QueryPlanner
from repro.service.snapshot import SnapshotStore
from repro.service.workload import generate_queries, payload_checksum, run_workload

SHARD_COUNTS = (1, 2, 3, 5)
INDEX_KINDS = ("linear", "vptree", "grid", "dense")


def oracle_payloads(coords, queries):
    """The single-store linear oracle's payloads, in stream order."""
    store = SnapshotStore.from_coordinates(coords, index_kind="linear", source="t")
    planner = QueryPlanner(store, clock=lambda: 0.0, timer=lambda: 0.0)
    report = run_workload(planner, queries, timer=lambda: 0.0)
    return [result.payload for result in report.results], report.checksum


@pytest.fixture(scope="module")
def universe():
    coords = synthetic_coordinates(180, seed=3)
    queries = generate_queries(list(coords), 400, mix="mixed", seed=11, k=4)
    payloads, checksum = oracle_payloads(coords, queries)
    return coords, queries, payloads, checksum


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_roundtrip(self):
        request = {"id": 3, "op": "knn", "target": "n1", "k": 5}
        frame = encode_frame(request)
        assert frame_length(frame[: HEADER.size]) == len(frame) - HEADER.size
        assert decode_frame(frame[HEADER.size :]) == request

    def test_split_frames_handles_partials(self):
        a = encode_frame({"id": 1, "op": "ping"})
        b = encode_frame({"id": 2, "op": "version"})
        frames, rest = split_frames(a + b[:3])
        assert [frame["id"] for frame in frames] == [1]
        assert rest == b[:3]
        frames, rest = split_frames(rest + b[3:])
        assert [frame["id"] for frame in frames] == [2]
        assert rest == b""

    def test_oversized_length_prefix_rejected(self):
        header = HEADER.pack(MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            frame_length(header)

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b"[1,2,3]")
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame(b"{nope")

    def test_request_to_query_and_back(self):
        for query in (
            Query.knn("a", k=7),
            Query.nearest("b"),
            Query.range("c", 12.5),
            Query.pairwise("a", "b"),
            Query.centroid(("a", "b", "c")),
        ):
            assert request_to_query(query_to_request(query, 1)) == query

    def test_request_validation_errors(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            request_to_query({"op": "explode"})
        with pytest.raises(QueryError, match="target"):
            request_to_query({"op": "knn", "k": 3})
        with pytest.raises(QueryError, match="must be an integer"):
            request_to_query({"op": "knn", "target": "a", "k": "three"})
        with pytest.raises(QueryError, match="numeric"):
            request_to_query({"op": "range", "target": "a"})
        with pytest.raises(QueryError, match="list of node ids"):
            request_to_query({"op": "centroid", "members": "abc"})
        assert request_to_query({"op": "stats"}) is None


# ----------------------------------------------------------------------
# Shard partitioning and scatter-gather identity
# ----------------------------------------------------------------------
class TestSharding:
    def test_shard_of_is_stable_and_in_range(self):
        for shards in (1, 2, 7):
            for node_id in ("a", "b", "node000123", ""):
                owner = shard_of(node_id, shards)
                assert 0 <= owner < shards
                assert owner == shard_of(node_id, shards)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_sharded_answers_identical_to_oracle(self, universe, shards, kind):
        coords, queries, payloads, _ = universe
        store = ShardedCoordinateStore.from_coordinates(
            coords, shards=shards, index_kind=kind, source="t"
        )
        served = [store.serve(query)[0] for query in queries]
        assert served == payloads

    def test_tie_order_matches_oracle_on_lattice(self):
        # A lattice is maximally tie-heavy: many nodes at identical
        # distances.  The merged order must still equal the oracle's
        # insertion-order tie-break.
        coords = {
            f"p{i:03d}": Coordinate([float(i % 5), float(i // 5)]) for i in range(25)
        }
        queries = [Query.knn(f"p{i:03d}", k=6) for i in range(25)]
        queries += [Query.range(f"p{i:03d}", 2.0) for i in range(25)]
        payloads, _ = oracle_payloads(coords, queries)
        for shards in SHARD_COUNTS:
            store = ShardedCoordinateStore.from_coordinates(
                coords, shards=shards, index_kind="vptree"
            )
            assert [store.serve(query)[0] for query in queries] == payloads

    def test_publish_arrays_identical_to_object_publish(self):
        coords = synthetic_coordinates(90, seed=5)
        node_ids = list(coords)
        components = np.asarray([coords[n].components for n in node_ids])
        heights = np.zeros(len(node_ids))
        by_arrays = ShardedCoordinateStore(3, index_kind="dense")
        by_arrays.publish_arrays(node_ids, components, heights, source="arr")
        by_objects = ShardedCoordinateStore.from_coordinates(
            coords, shards=3, index_kind="dense"
        )
        queries = generate_queries(node_ids, 150, mix="mixed", seed=2)
        assert [by_arrays.serve(q)[0] for q in queries] == [
            by_objects.serve(q)[0] for q in queries
        ]
        assert by_arrays.version == 1

    def test_incremental_commits_match_single_store_semantics(self):
        # Updates in place, new nodes appended: the sharded router must
        # reproduce the single store's merged insertion order exactly.
        first = {f"n{i}": Coordinate([float(i), 0.0]) for i in range(12)}
        moved = {f"n{i}": Coordinate([float(i), 1.0]) for i in range(0, 12, 2)}
        moved["extra0"] = Coordinate([0.5, 0.5])
        moved["extra1"] = Coordinate([1.5, 0.5])

        sharded = ShardedCoordinateStore(3, index_kind="vptree")
        sharded.publish_coordinates(first, source="t")
        sharded.publish_coordinates(moved, source="t")

        single = SnapshotStore(index_kind="linear")
        single.apply_many(first)
        single.commit(source="t")
        single.apply_many(moved)
        single.commit(source="t")

        merged = dict(first)
        merged.update(moved)
        queries = generate_queries(list(merged), 200, mix="mixed", seed=9)
        planner = QueryPlanner(single, clock=lambda: 0.0, timer=lambda: 0.0)
        oracle = run_workload(planner, queries, timer=lambda: 0.0)
        assert sharded.version == 2
        assert [sharded.serve(q)[0] for q in queries] == [
            r.payload for r in oracle.results
        ]

    def test_generation_pinning_and_retention(self):
        store = ShardedCoordinateStore(2, index_kind="linear", history=2)
        a = {f"n{i}": Coordinate([float(i)]) for i in range(4)}
        store.publish_coordinates(a)
        pinned = store.generation()
        for round_no in range(4):
            store.publish_coordinates(
                {f"n{i}": Coordinate([float(i + round_no)]) for i in range(4)}
            )
        # The pinned generation still answers from its own coordinates.
        payload = pinned.knn("n0", 1)
        assert payload["neighbors"][0]["predicted_rtt_ms"] == 1.0
        assert store.version == 5
        with pytest.raises(KeyError, match="not retained"):
            store.at(1)
        assert store.at(store.version) is store.generation()

    def test_unknown_nodes_and_empty_store_raise(self):
        store = ShardedCoordinateStore(2)
        with pytest.raises(QueryError, match="unknown node"):
            store.serve(Query.knn("ghost"))
        with pytest.raises(QueryError, match="empty snapshot"):
            store.serve(Query.centroid(()))
        store.publish_coordinates({"a": Coordinate([0.0]), "b": Coordinate([1.0])})
        with pytest.raises(QueryError, match="unknown node 'ghost'"):
            store.serve(Query.pairwise("a", "ghost"))

    def test_cache_serves_repeats_and_respects_rollover(self):
        coords = {f"n{i}": Coordinate([float(i)]) for i in range(6)}
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2)
        query = Query.knn("n0", k=2)
        payload, version, cached = store.serve(query)
        repeat, _, cached_again = store.serve(query)
        assert not cached and cached_again and repeat == payload
        # New generation: the cache key includes the version, so the
        # answer is recomputed against the new coordinates.
        store.publish_coordinates({"n0": Coordinate([10.0])})
        moved, version2, cached3 = store.serve(query)
        assert version2 == version + 1 and not cached3
        assert moved != payload
        stats = store.stats()
        assert stats["cache"]["hits"] == 1
        assert stats["kinds"]["knn"]["served"] == 3

    def test_stats_shape(self):
        coords = synthetic_coordinates(24, seed=1)
        store = ShardedCoordinateStore.from_coordinates(coords, shards=3)
        store.serve(Query.nearest(next(iter(coords))))
        stats = store.stats()
        assert stats["shards"]["count"] == 3
        assert sum(stats["shards"]["sizes"]) == 24
        assert stats["ingest"]["versions_published"] == 1
        assert stats["version"] == 1 and stats["nodes"] == 24
        json.dumps(stats)  # JSON-safe

    def test_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedCoordinateStore(0)
        with pytest.raises(ValueError, match="unknown index kind"):
            ShardedCoordinateStore(2, index_kind="octree")


# ----------------------------------------------------------------------
# The daemon over TCP
# ----------------------------------------------------------------------
def serve_in_thread(store, **kwargs):
    return CoordinateServer(store, **kwargs).run_in_thread()


class TestDaemon:
    def test_wire_results_identical_to_oracle_closed_loop(self, universe):
        coords, queries, _, checksum = universe
        store = ShardedCoordinateStore.from_coordinates(
            coords, shards=3, index_kind="vptree", source="t"
        )
        with serve_in_thread(store) as handle:
            report = run_load(
                handle.address, queries, mode="closed", concurrency=8, connections=2
            )
        assert report.errors == 0
        assert report.checksum == checksum
        assert report.versions == (1,)
        assert set(report.kinds) == {"knn", "nearest", "range", "pairwise", "centroid"}
        for summary in report.kinds.values():
            assert summary["latency_exact"]

    def test_wire_results_identical_to_oracle_open_loop(self, universe):
        coords, queries, _, checksum = universe
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2)
        with serve_in_thread(store) as handle:
            report = run_load(
                handle.address,
                queries[:100],
                mode="open",
                rate_qps=5000.0,
                connections=2,
            )
        assert report.errors == 0
        assert report.offered_qps == 5000.0
        _, expected = oracle_payloads(coords, queries[:100])
        assert report.checksum == expected

    def test_admin_ops(self):
        coords = synthetic_coordinates(16, seed=2)
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2, source="adm")

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                pong = await client.op("ping")
                version = await client.op("version")
                nodes = await client.op("nodes")
                stats = await client.op("stats")
                dump = await client.op("snapshot")
                bad = await client.op("knn", target="ghost")
                malformed = await client.request({"op": "warp"})
                return pong, version, nodes, stats, dump, bad, malformed

        with serve_in_thread(store) as handle:
            pong, version, nodes, stats, dump, bad, malformed = asyncio.run(
                scenario(handle.address)
            )
        assert pong["ok"] and pong["payload"] == {"pong": True}
        assert version["payload"] == {"version": 1, "nodes": 16, "source": "adm"}
        assert sorted(nodes["payload"]["node_ids"]) == sorted(coords)
        assert stats["payload"]["admission"]["connections_total"] == 1
        assert stats["payload"]["shards"]["count"] == 2
        restored = {
            node_id: Coordinate(entry["components"], entry["height"])
            for node_id, entry in dump["payload"]["coordinates"].items()
        }
        assert restored == dict(coords)
        assert not bad["ok"] and "unknown node" in bad["error"]
        assert not malformed["ok"] and "unknown op" in malformed["error"]

    def test_admission_control_sheds_load(self):
        store = ShardedCoordinateStore.from_coordinates(
            synthetic_coordinates(8, seed=1), shards=1
        )
        server = CoordinateServer(store, admission_limit=1)
        assert server._admit() is True
        assert server._admit() is False
        server._release()
        assert server._admit() is True
        stats = server.admission_stats()
        assert stats["rejected_overload"] == 1
        assert stats["admitted"] == 2
        assert stats["max_in_flight"] == 1

    def test_corrupt_frame_gets_error_then_close(self):
        store = ShardedCoordinateStore.from_coordinates(
            synthetic_coordinates(8, seed=1), shards=1
        )

        async def scenario(address):
            reader, writer = await asyncio.open_connection(*address)
            writer.write(HEADER.pack(MAX_FRAME_BYTES + 5))
            await writer.drain()
            header = await reader.readexactly(HEADER.size)
            body = await reader.readexactly(frame_length(header))
            response = decode_frame(body)
            trailer = await reader.read()  # server closes after the error
            writer.close()
            return response, trailer

        with serve_in_thread(store) as handle:
            response, trailer = asyncio.run(scenario(handle.address))
        assert not response["ok"] and "exceeds" in response["error"]
        assert trailer == b""

    def test_shutdown_op_stops_daemon_cleanly(self):
        store = ShardedCoordinateStore.from_coordinates(
            synthetic_coordinates(8, seed=1), shards=1
        )
        handle = serve_in_thread(store)
        address = handle.start()

        async def shutdown(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                return await client.op("shutdown")

        response = asyncio.run(shutdown(address))
        assert response["ok"] and response["payload"] == {"stopping": True}
        handle.stop()  # joins; the shutdown op already initiated the stop
        with pytest.raises(OSError):
            asyncio.run(shutdown(address))


# ----------------------------------------------------------------------
# Telemetry over the wire: metrics op, error stats, per-request tracing
# ----------------------------------------------------------------------
class TestTelemetryWire:
    def test_metrics_op_renders_prometheus_text(self, universe):
        coords, queries, _, _ = universe
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2)

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                for query in queries[:20]:
                    await client.request(query_to_request(query, None))
                return await client.op("metrics")

        with serve_in_thread(store) as handle:
            response = asyncio.run(scenario(handle.address))
        assert response["ok"]
        payload = response["payload"]
        assert payload["content_type"].startswith("text/plain")
        text = payload["text"]
        assert "# TYPE store_serve_latency_ms histogram" in text
        assert "# TYPE store_served_total counter" in text
        assert "# TYPE daemon_connections_total counter" in text
        # The store's serve counters agree with the rendered samples.
        served = sum(
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("store_served_total{")
        )
        assert served == 20

    def test_stats_op_reports_per_op_error_counts(self):
        store = ShardedCoordinateStore.from_coordinates(
            synthetic_coordinates(12, seed=4), shards=2
        )

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                await client.op("knn", target="ghost")
                await client.op("knn", target="ghost")
                await client.op("range", target="ghost", radius_ms=5.0)
                await client.request({"op": "warp"})
                await client.op("ping")
                stats = await client.op("stats")
                return stats

        with serve_in_thread(store) as handle:
            stats = asyncio.run(scenario(handle.address))
        errors = stats["payload"]["errors"]
        assert errors["by_op"] == {"knn": 2, "range": 1, "invalid": 1}
        assert errors["total"] == 4
        json.dumps(errors)

    def test_traced_request_carries_stage_breakdown(self):
        store = ShardedCoordinateStore.from_coordinates(
            synthetic_coordinates(24, seed=6), shards=3
        )

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                traced = await client.request(
                    {"op": "knn", "target": next(iter(store.generation().node_order)), "k": 3, "trace": True}
                )
                plain = await client.op("knn", target=store.generation().node_order[0], k=3)
                return traced, plain

        with serve_in_thread(store) as handle:
            traced, plain = asyncio.run(scenario(handle.address))
        assert traced["ok"] and "trace" not in plain
        stages = [entry["stage"] for entry in traced["trace"]]
        # Per-shard scatter legs, then the merge, then the enclosing
        # stages in close order.
        assert stages.count("query.scatter") == 3
        assert {entry["shard"] for entry in traced["trace"] if entry["stage"] == "query.scatter"} == {0, 1, 2}
        for stage in ("store.cache", "query.merge", "store.serve", "daemon.admission", "daemon.request"):
            assert stage in stages, stages
        assert stages.index("query.merge") < stages.index("daemon.request")
        assert all(entry["ms"] >= 0.0 for entry in traced["trace"])

    def test_span_histograms_recorded_when_enabled(self):
        coords = synthetic_coordinates(12, seed=8)
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2)
        server = CoordinateServer(store, trace_spans=True)

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                await client.op("knn", target=next(iter(coords)), k=2)

        with server.run_in_thread() as handle:
            asyncio.run(scenario(handle.address))
        text = server.registry.render_prometheus()
        assert 'span_ms_count{op="knn",span="daemon.request"} 1' in text
        assert 'span="query.scatter"' in text


# ----------------------------------------------------------------------
# Load-harness telemetry: determinism and schema stability (satellites)
# ----------------------------------------------------------------------
class TestLoadTelemetry:
    def run_deterministic(self, universe, registry):
        from repro.server.load import run_load as _run_load

        coords, queries, _, _ = universe
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2)
        with serve_in_thread(store) as handle:
            return _run_load(
                handle.address,
                queries,
                mode="closed",
                concurrency=8,
                connections=2,
                registry=registry,
                deterministic_timing=True,
            )

    def test_deterministic_timing_is_byte_identical_across_runs(self, universe):
        from repro.obs.registry import TelemetryRegistry

        first_registry = TelemetryRegistry()
        second_registry = TelemetryRegistry()
        first = self.run_deterministic(universe, first_registry)
        second = self.run_deterministic(universe, second_registry)
        assert first.telemetry == second.telemetry
        assert (
            first_registry.render_prometheus() == second_registry.render_prometheus()
        )
        assert "load_latency_ms_bucket" in first_registry.render_prometheus()

    def test_histogram_percentiles_within_one_bucket_of_exact(self, universe):
        from repro.obs.registry import LatencyHistogram

        coords, queries, _, _ = universe
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2)
        with serve_in_thread(store) as handle:
            report = run_load(
                handle.address, queries, mode="closed", concurrency=8
            )
        for kind, exact in report.kinds.items():
            assert exact["latency_exact"]
            entry = report.telemetry["kinds"][kind]
            histogram = LatencyHistogram.from_dict(entry["histogram"])
            growth = histogram.scheme.growth
            assert histogram.count == exact["count"]
            for label in ("p50_ms", "p99_ms"):
                # Reservoir percentiles are exact here; the bucket
                # read-out sits within one multiplicative bucket width.
                percentile = 50.0 if label == "p50_ms" else 99.0
                read = histogram.percentile(percentile)
                assert exact[label] <= read * (1.0 + 1e-9)
                assert read <= exact[label] * growth * (1.0 + 1e-9)

    def test_report_schema_is_stable_with_additive_telemetry(self, universe):
        report = self.run_deterministic(universe, None)
        payload = report.as_dict()
        # Every pre-telemetry key survives with its original meaning.
        assert set(payload) == {
            "mode", "query_count", "ok", "errors", "overloaded", "elapsed_s",
            "qps", "offered_qps", "kinds", "checksum", "versions", "telemetry",
            "health", "error_kinds", "degraded",
        }
        assert payload["query_count"] == payload["ok"] == 400
        assert payload["error_kinds"] == {} and payload["degraded"] == 0
        for kind, summary in payload["kinds"].items():
            assert set(summary) == {"count", "p50_ms", "p99_ms", "latency_exact"}
        telemetry = payload["telemetry"]
        assert telemetry["unit"] == "ms" and telemetry["deterministic_timing"]
        for kind, entry in telemetry["kinds"].items():
            assert set(entry) == {
                "count", "p50_ms", "p99_ms", "p999_ms", "latency_exact", "histogram",
            }
            assert entry["count"] == payload["kinds"][kind]["count"]
        json.dumps(payload)

    def test_report_health_section_is_deterministic(self, universe):
        first = self.run_deterministic(universe, None)
        second = self.run_deterministic(universe, None)
        assert first.health, "load report carries no health section"
        assert json.dumps(first.health, sort_keys=True) == json.dumps(
            second.health, sort_keys=True
        )
        # --deterministic-timing stubs the timer-based staleness figures
        # so the whole section is byte-reproducible.
        assert first.health["staleness"] == {
            "deterministic_timing": True,
            "generation_age_s": None,
            "publish_to_serve_age_ms": None,
        }
        assert first.health["relative_error"]["count"] > 0
        assert first.health["generation"]["nodes"] == 180


# ----------------------------------------------------------------------
# Coordinate health and the event log over the wire
# ----------------------------------------------------------------------
class TestHealthWire:
    def make_store(self, epochs=3, nodes=40, shards=3):
        node_ids = [f"h{i:03d}" for i in range(nodes)]
        rng = np.random.default_rng(11)
        base = rng.uniform(-80.0, 80.0, size=(nodes, 3))
        store = ShardedCoordinateStore(
            shards, index_kind="vptree", history=epochs + 2, health_seed=5
        )
        for epoch in range(epochs):
            store.publish_arrays(
                node_ids, base + epoch * 2.0, np.zeros(nodes), source=f"e{epoch}"
            )
        return store

    def test_health_op_payload_shape(self):
        store = self.make_store()

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                full = await client.op("health")
                partial = await client.op("health", sections=["relative_error"])
                return full, partial

        with serve_in_thread(store) as handle:
            full, partial = asyncio.run(scenario(handle.address))
        assert full["ok"] and full["version"] == 3
        payload = full["payload"]
        assert list(payload) == [
            "generation", "relative_error", "drift", "neighbor_churn", "staleness",
        ]
        assert payload["generation"]["version"] == 3
        assert payload["generation"]["mode"] == "self-reference"
        assert payload["relative_error"]["count"] > 0
        # Translated epochs preserve distances: the self-referenced
        # relative error stays at floating-point noise.
        assert payload["relative_error"]["p95"] < 1e-9
        assert payload["drift"]["mean_velocity"] == pytest.approx(
            2.0 * np.sqrt(3.0)
        )
        assert payload["neighbor_churn"]["last"] == 0.0
        json.dumps(payload)
        assert list(partial["payload"]) == ["relative_error"]

    def test_health_op_unknown_section_is_error_envelope(self):
        store = self.make_store(epochs=1)

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                unknown = await client.request(
                    {"id": 41, "op": "health", "sections": ["bogus"]}
                )
                bad_type = await client.request(
                    {"id": 42, "op": "health", "sections": "drift"}
                )
                return unknown, bad_type

        with serve_in_thread(store) as handle:
            unknown, bad_type = asyncio.run(scenario(handle.address))
        # The exact error envelope: id + ok + error, nothing else.
        assert set(unknown) == {"id", "ok", "error"} and not unknown["ok"]
        assert "unknown health section" in unknown["error"]
        assert "bogus" in unknown["error"]
        assert set(bad_type) == {"id", "ok", "error"} and not bad_type["ok"]
        assert "list of section names" in bad_type["error"]

    def test_health_op_trace_interplay(self):
        store = self.make_store(epochs=2)

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                traced = await client.request({"op": "health", "trace": True})
                plain = await client.op("health")
                return traced, plain

        with serve_in_thread(store) as handle:
            traced, plain = asyncio.run(scenario(handle.address))
        assert traced["ok"] and "trace" not in plain
        stages = [entry["stage"] for entry in traced["trace"]]
        assert "daemon.health" in stages
        assert "daemon.request" in stages
        assert traced["payload"]["generation"]["version"] == 2

    def test_events_op_tail_and_validation(self):
        store = self.make_store(epochs=3)

        async def scenario(address):
            async with await AsyncCoordinateClient.connect(*address) as client:
                everything = await client.op("events")
                tail = await client.op("events", limit=2)
                invalid = await client.op("events", limit=-1)
                return everything, tail, invalid

        with serve_in_thread(store) as handle:
            everything, tail, invalid = asyncio.run(scenario(handle.address))
        events = everything["payload"]["events"]
        # 3 epochs x (published, swapped, health_snapshot).
        assert len(events) == 9
        assert [event["seq"] for event in events] == list(range(9))
        kinds = {event["kind"] for event in events}
        assert kinds == {"epoch_published", "generation_swapped", "health_snapshot"}
        stats = everything["payload"]["stats"]
        assert stats["emitted"] == 9 and stats["dropped"] == 0
        assert [event["seq"] for event in tail["payload"]["events"]] == [7, 8]
        assert not invalid["ok"]
        assert "non-negative integer" in invalid["error"]

    def test_sharded_health_equals_single_store_health(self):
        node_ids = [f"h{i:03d}" for i in range(36)]
        rng = np.random.default_rng(23)
        base = rng.uniform(-50.0, 50.0, size=(36, 4))
        payloads = []
        for shards in (1, 4):
            store = ShardedCoordinateStore(
                shards, index_kind="linear", history=8, health_seed=9
            )
            for epoch in range(4):
                store.publish_arrays(
                    node_ids,
                    base * (1.0 + 0.05 * epoch),
                    np.full(36, 0.5),
                    source=f"e{epoch}",
                )
            payloads.append(
                store.health(
                    ["generation", "relative_error", "drift", "neighbor_churn"]
                )
            )
        assert json.dumps(payloads[0], sort_keys=True) == json.dumps(
            payloads[1], sort_keys=True
        )


# ----------------------------------------------------------------------
# Concurrent ingest while serving: no torn reads (satellite)
# ----------------------------------------------------------------------
class TestIngestWhileServing:
    def test_every_response_consistent_with_exactly_one_version(self):
        """The torn-read detector.

        Epochs with *disjoint* coordinate sets stream into the daemon
        while concurrent clients hammer knn/range/centroid queries.  A
        response claiming version v must equal a re-serve of the same
        query against the retained generation v -- any cross-shard
        mixing of generations changes some distance and fails the
        comparison.
        """
        n = 48
        node_ids = [f"h{i:03d}" for i in range(n)]
        rng = np.random.default_rng(7)
        base = rng.uniform(-100.0, 100.0, size=(n, 3))
        epochs = 24
        store = ShardedCoordinateStore(3, index_kind="vptree", history=epochs + 2)
        store.publish_arrays(node_ids, base.copy(), np.zeros(n), source="e0")

        stop = threading.Event()

        def ingest():
            # Every epoch translates the whole universe, so distances
            # between any cross-epoch pair differ from both epochs' own.
            for epoch in range(1, epochs):
                shifted = base + epoch * 13.37
                store.publish_arrays(
                    node_ids, shifted, np.zeros(n), source=f"e{epoch}"
                )
                time.sleep(0.002)
            stop.set()

        queries = generate_queries(node_ids, 600, mix="mixed", seed=5, k=3)
        server = CoordinateServer(store)
        with server.run_in_thread() as handle:
            writer = threading.Thread(target=ingest)
            writer.start()
            report = run_load(
                handle.address, queries, mode="closed", concurrency=6, connections=3
            )
            writer.join()
        assert report.errors == 0
        versions_seen = set()
        for query, response in zip(queries, report.responses):
            version = int(response["version"])
            versions_seen.add(version)
            generation = store.at(version)
            assert response["payload"] == generation.answer(query), (
                f"torn read: version {version}, query {query}"
            )
        assert versions_seen <= set(range(1, epochs + 1))

    def test_serving_store_cache_never_leaks_across_versions(self):
        coords = {f"n{i}": Coordinate([float(i)]) for i in range(8)}
        store = ShardedCoordinateStore.from_coordinates(coords, shards=2)
        query = Query.knn("n3", k=2)
        before, v1, _ = store.serve(query)
        store.publish_coordinates(
            {f"n{i}": Coordinate([float(i) * 3.0]) for i in range(8)}
        )
        after, v2, cached = store.serve(query)
        assert v2 == v1 + 1 and not cached
        assert before != after


# ----------------------------------------------------------------------
# The queries-live scenario workload
# ----------------------------------------------------------------------
class TestQueriesLiveScenario:
    @pytest.fixture(scope="class")
    def live_spec(self):
        from repro.scenarios.spec import ScenarioSpec

        return ScenarioSpec.from_dict(
            {
                "name": "live-test",
                "mode": "simulate",
                "network": {"nodes": 32},
                "preset": "mp",
                "duration_s": 150.0,
                "backend": "vectorized",
                "workload": {
                    "kind": "queries-live",
                    "params": {
                        "count": 96,
                        "live_count": 24,
                        "shards": 2,
                        "publish_every_ticks": 5,
                    },
                },
                "seed": 3,
            }
        )

    def test_end_to_end_metrics(self, live_spec):
        from repro.engine.kernel import run_scenario

        profile: dict = {}
        run = run_scenario(live_spec, collect_profile=True)
        metrics = run.result.metrics
        assert metrics["query_oracle_agreement"] == 1.0
        assert metrics["live_ok_rate"] == 1.0
        assert metrics["live_consistency"] == 1.0
        assert metrics["query_error_count"] == 0.0
        assert metrics["query_count"] == 96.0
        assert metrics["live_query_count"] == 24.0
        # 150s / 5s interval = 30 ticks; publish every 5 -> 6 + final.
        assert metrics["epochs_published"] == 7.0
        payload = run.result.workload
        assert payload["checksum"] == payload["oracle_checksum"]
        assert payload["shards"] == 2
        assert run.profile and "measured_serve_qps" in run.profile

    def test_results_deterministic_across_runs(self, live_spec):
        from repro.engine.kernel import run_scenario

        first = run_scenario(live_spec).result.canonical_json()
        second = run_scenario(live_spec).result.canonical_json()
        assert first == second

    def test_spec_validation(self):
        from repro.scenarios.spec import ScenarioError, ScenarioSpec

        with pytest.raises(ScenarioError, match="backend='vectorized'"):
            ScenarioSpec.from_dict(
                {
                    "name": "bad",
                    "mode": "simulate",
                    "preset": "mp",
                    "workload": {"kind": "queries-live"},
                }
            )
        with pytest.raises(ScenarioError, match="shards"):
            ScenarioSpec.from_dict(
                {
                    "name": "bad",
                    "mode": "simulate",
                    "preset": "mp",
                    "backend": "vectorized",
                    "workload": {"kind": "queries-live", "params": {"shards": 0}},
                }
            )
        with pytest.raises(ScenarioError, match="publish_every_ticks"):
            ScenarioSpec.from_dict(
                {
                    "name": "bad",
                    "mode": "simulate",
                    "preset": "mp",
                    "backend": "vectorized",
                    "workload": {
                        "kind": "queries-live",
                        "params": {"publish_every_ticks": 0},
                    },
                }
            )


# ----------------------------------------------------------------------
# CLI: serve-daemon + load
# ----------------------------------------------------------------------
class TestServerCli:
    def test_serve_daemon_and_load_roundtrip(self, tmp_path, capsys):
        from repro.server.cli import main

        ready = tmp_path / "ready.txt"
        # Nested, not-yet-existing directories: the CLI must create them.
        out = tmp_path / "artifacts" / "load.json"
        metrics_out = tmp_path / "artifacts" / "prom" / "load-metrics.prom"
        health_out = tmp_path / "artifacts" / "health.json"
        events_out = tmp_path / "artifacts" / "events.jsonl"
        daemon_rc: list = []

        def run_daemon():
            daemon_rc.append(
                main(
                    [
                        "serve-daemon",
                        "--synthetic", "64",
                        "--shards", "2",
                        "--ready-file", str(ready),
                        "--max-seconds", "60",
                    ]
                )
            )

        thread = threading.Thread(target=run_daemon)
        thread.start()
        try:
            deadline = time.time() + 15.0
            # Wait for the full "host port" line, not just the file: the
            # ready file briefly exists empty while being written.
            fields: list = []
            while time.time() < deadline:
                if ready.exists():
                    fields = ready.read_text().split()
                    if len(fields) == 2:
                        break
                time.sleep(0.01)
            assert len(fields) == 2, "daemon never wrote the ready file"
            host, port = fields
            metrics_rc = main(["metrics", "--host", host, "--port", port])
            assert metrics_rc == 0
            rc = main(
                [
                    "load",
                    "--host", host,
                    "--port", port,
                    "--count", "300",
                    "--mix", "mixed",
                    "--verify-oracle",
                    "--deterministic-timing",
                    "--shutdown",
                    "--out", str(out),
                    "--metrics-out", str(metrics_out),
                    "--health-out", str(health_out),
                    "--events-out", str(events_out),
                ]
            )
            assert rc == 0
        finally:
            thread.join(timeout=15.0)
        assert not thread.is_alive()
        assert daemon_rc == [0]
        captured = capsys.readouterr().out
        assert "# TYPE store_version gauge" in captured  # metrics command output
        assert "identical: True" in captured
        assert "daemon acknowledged shutdown" in captured
        assert "daemon stopped cleanly" in captured
        report = json.loads(out.read_text())
        assert report["ok"] == 300 and report["errors"] == 0
        assert report["telemetry"]["kinds"]
        metrics_text = metrics_out.read_text()
        assert "# TYPE load_latency_ms histogram" in metrics_text
        assert 'load_requests_total{outcome="ok"} 300' in metrics_text
        health = json.loads(health_out.read_text())
        assert health == report["health"]
        assert health["relative_error"]["count"] > 0
        events = [
            json.loads(line) for line in events_out.read_text().splitlines()
        ]
        assert events and {"epoch_published", "generation_swapped"} <= {
            event["kind"] for event in events
        }
        assert [event["seq"] for event in events] == sorted(
            event["seq"] for event in events
        )

    def test_health_cli_is_deterministic_and_hardens_paths(self, tmp_path, capsys):
        from repro.server.cli import main

        node_ids = [f"h{i:02d}" for i in range(30)]
        rng = np.random.default_rng(2)
        base = rng.uniform(-40.0, 40.0, size=(30, 3))
        store = ShardedCoordinateStore(
            2, index_kind="vptree", history=8, health_seed=3
        )
        for epoch in range(3):
            store.publish_arrays(
                node_ids, base + epoch * 1.5, np.zeros(30), source=f"e{epoch}"
            )
        # Deterministic sections only: staleness reads the wall clock.
        sections = "generation,relative_error,drift,neighbor_churn"
        with serve_in_thread(store) as handle:
            host, port = handle.address
            base_args = ["health", "--host", host, "--port", str(port)]
            assert main(base_args + ["--sections", sections]) == 0
            first = capsys.readouterr().out
            assert main(base_args + ["--sections", sections]) == 0
            second = capsys.readouterr().out
            assert first == second
            assert "generation: v3" in first
            assert "relative_error: median" in first
            assert "staleness" not in first

            nested = tmp_path / "deep" / "dir" / "health.json"
            assert main(base_args + ["--json", "--out", str(nested)]) == 0
            payload = json.loads(nested.read_text())
            assert payload["generation"]["version"] == 3
            capsys.readouterr()

            blocker = tmp_path / "blocker"
            blocker.write_text("a file, not a directory\n")
            rc = main(base_args + ["--out", str(blocker / "x.txt")])
            assert rc == 2
            err = capsys.readouterr().err
            assert err.startswith("error:") and err.strip().count("\n") == 0

            assert (
                main(
                    [
                        "watch",
                        "--host", host,
                        "--port", str(port),
                        "--interval", "0.01",
                        "--iterations", "2",
                    ]
                )
                == 0
            )
            watch_out = capsys.readouterr().out
            assert "served queries (cumulative)" in watch_out
            assert "relative_error: median" in watch_out

    def test_load_against_dead_port_is_clean_error(self, capsys):
        from repro.server.cli import main

        rc = main(["load", "--port", "1", "--count", "10"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_health_against_dead_port_is_clean_error(self, capsys):
        from repro.server.cli import main

        rc = main(["health", "--port", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_watch_validation_and_dead_port(self, capsys):
        from repro.analysis.cli import main  # exercises top-level dispatch

        rc = main(["watch", "--port", "1", "--iterations", "0"])
        assert rc == 2
        assert "--iterations" in capsys.readouterr().err
        rc = main(["watch", "--port", "1", "--iterations", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_health_top_level_dispatch(self, capsys):
        from repro.analysis.cli import main

        rc = main(["health", "--port", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_against_dead_port_is_clean_error(self, capsys):
        from repro.server.cli import main

        rc = main(["metrics", "--port", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_top_level_dispatch(self, capsys):
        from repro.analysis.cli import main

        rc = main(["metrics", "--port", "1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_top_level_dispatch(self, capsys):
        from repro.analysis.cli import main

        rc = main(["load", "--port", "1", "--count", "10"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
