"""Vectorized backend: equivalence with the scalar oracle, spec wiring,
and the benchmark regression gate.

The central contract is that the NumPy batch write path
(:mod:`repro.core.vectorized` driven by :mod:`repro.netsim.batch`)
reproduces the scalar per-node core *byte for byte* on the same tick
schedule.  The documented public tolerance is ``COORDINATE_TOLERANCE_MS``
(what callers may rely on across NumPy versions); these tests additionally
pin the current implementation to exact equality so any silent divergence
surfaces immediately.
"""

from __future__ import annotations

import importlib.util
import json
from dataclasses import asdict
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
from repro.core.vectorized import (
    BackendUnsupportedError,
    VectorizedNodeState,
    unsupported_reasons,
)
from repro.core.vivaldi import VivaldiConfig
from repro.engine.kernel import run_scenario
from repro.latency.planetlab import PlanetLabDataset
from repro.netsim.batch import BatchChurnSchedule, run_batch_simulation
from repro.netsim.churn import ChurnConfig
from repro.netsim.runner import SimulationConfig
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import NetworkSpec, ScenarioError, ScenarioSpec

#: Documented vectorized-vs-scalar agreement bar for final coordinates, in
#: milliseconds of coordinate space.  The implementation currently achieves
#: exact (bitwise) agreement; the tolerance is the public contract.
COORDINATE_TOLERANCE_MS = 1e-9


def _run_pair(config: SimulationConfig):
    """Run both backends on one shared universe."""
    dataset = PlanetLabDataset.generate(
        config.nodes, seed=config.seed, parameters=config.dataset
    )
    scalar = run_batch_simulation(config, backend="scalar", dataset=dataset)
    vectorized = run_batch_simulation(config, backend="vectorized", dataset=dataset)
    return scalar, vectorized


def _max_coordinate_delta(a, b) -> float:
    deltas = [
        abs(u - v)
        for left, right in zip(a, b)
        for u, v in zip(left.components, right.components)
    ]
    return max(deltas) if deltas else 0.0


def _assert_equivalent(scalar, vectorized, *, exact: bool = True) -> None:
    delta = _max_coordinate_delta(scalar.final_system, vectorized.final_system)
    assert delta <= COORDINATE_TOLERANCE_MS, f"system coordinates diverged by {delta}"
    app_delta = _max_coordinate_delta(
        scalar.final_application, vectorized.final_application
    )
    assert app_delta <= COORDINATE_TOLERANCE_MS
    assert scalar.samples_attempted == vectorized.samples_attempted
    assert scalar.samples_completed == vectorized.samples_completed
    if exact:
        snap_s = json.dumps(asdict(scalar.metrics.system_snapshot()), sort_keys=True)
        snap_v = json.dumps(asdict(vectorized.metrics.system_snapshot()), sort_keys=True)
        assert snap_s == snap_v
        assert scalar.metrics.per_node_error_percentile(
            95.0, level="application"
        ) == vectorized.metrics.per_node_error_percentile(95.0, level="application")
        assert scalar.metrics.per_node_instability(
            level="application"
        ) == vectorized.metrics.per_node_instability(level="application")


class TestBackendEquivalence:
    @pytest.mark.parametrize(
        "preset",
        [
            "mp",
            "raw",
            "mp_energy",
            "mp_system",
            "mp_application",
            "mp_application_centroid",
            "mp_relative",
            "raw_energy",
            "cluster_confidence",
        ],
    )
    def test_preset_equivalence_is_byte_identical(self, preset):
        # 80 ticks: enough for the energy/relative windows (2 * 32
        # observations) to become ready, so the window statistics and the
        # RELATIVE nearest-neighbor scan actually execute.
        config = SimulationConfig(
            nodes=16,
            duration_s=400.0,
            node_config=NodeConfig.preset(preset),
            seed=5,
        )
        scalar, vectorized = _run_pair(config)
        _assert_equivalent(scalar, vectorized)

    @pytest.mark.parametrize(
        "preset", ["mp", "mp_energy", "mp_relative", "mp_application_centroid"]
    )
    def test_height_equivalence_is_byte_identical(self, preset):
        """The height-augmented space: spring, error metrics and centroid
        heights must match the scalar oracle bit for bit."""
        config = SimulationConfig(
            nodes=14,
            duration_s=400.0,
            node_config=NodeConfig.preset(preset, vivaldi=VivaldiConfig(use_height=True)),
            seed=13,
        )
        scalar, vectorized = _run_pair(config)
        _assert_equivalent(scalar, vectorized)
        heights = [c.height for c in vectorized.final_system]
        assert any(h > 0.0 for h in heights), "height spring never engaged"
        assert [c.height for c in scalar.final_system] == heights

    @pytest.mark.parametrize(
        "filter_config",
        [
            FilterConfig("ewma", {"alpha": 0.05}),
            FilterConfig("threshold", {"threshold_ms": 120.0}),
            FilterConfig("mp", {"history": 4, "percentile": 25.0, "warmup": 2}),
            FilterConfig("median", {"history": 5}),
        ],
        ids=lambda cfg: cfg.kind,
    )
    def test_filter_equivalence(self, filter_config):
        config = SimulationConfig(
            nodes=12,
            duration_s=250.0,
            node_config=NodeConfig(filter=filter_config),
            seed=2,
        )
        scalar, vectorized = _run_pair(config)
        _assert_equivalent(scalar, vectorized)

    def test_churn_equivalence(self):
        config = SimulationConfig(
            nodes=24,
            duration_s=500.0,
            node_config=NodeConfig.preset("mp_energy"),
            churn=ChurnConfig(
                churning_fraction=0.4, mean_session_s=150.0, mean_downtime_s=60.0
            ),
            seed=11,
        )
        scalar, vectorized = _run_pair(config)
        assert scalar.churn_transitions == vectorized.churn_transitions > 0
        _assert_equivalent(scalar, vectorized)

    @settings(max_examples=12, deadline=None)
    @given(
        nodes=st.integers(min_value=4, max_value=14),
        dimensions=st.integers(min_value=2, max_value=4),
        churn_fraction=st.sampled_from([0.0, 0.25, 0.5]),
        loss=st.sampled_from([0.0, 0.01, 0.05]),
        preset=st.sampled_from(["mp", "raw", "mp_application"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_sweep_agrees_within_tolerance(
        self, nodes, dimensions, churn_fraction, loss, preset, seed
    ):
        """Sweeping node counts, dimensionality and churn rates, the
        vectorized backend agrees with the scalar oracle within the
        documented coordinate tolerance."""
        from repro.netsim.network import NetworkConfig

        node_config = NodeConfig.preset(
            preset, vivaldi=VivaldiConfig(dimensions=dimensions)
        )
        config = SimulationConfig(
            nodes=nodes,
            duration_s=120.0,
            node_config=node_config,
            network=NetworkConfig(loss_probability=loss),
            churn=(
                ChurnConfig(churning_fraction=churn_fraction, mean_session_s=60.0)
                if churn_fraction > 0.0
                else None
            ),
            seed=seed,
        )
        scalar, vectorized = _run_pair(config)
        _assert_equivalent(scalar, vectorized)

    @settings(max_examples=10, deadline=None)
    @given(
        nodes=st.integers(min_value=5, max_value=14),
        dimensions=st.integers(min_value=2, max_value=4),
        churn_fraction=st.sampled_from([0.0, 0.3]),
        use_height=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_relative_height_property_sweep(
        self, nodes, dimensions, churn_fraction, use_height, seed
    ):
        """RELATIVE (+ optional height) across node counts, dimensionality
        and churn: byte-identical to the scalar oracle.  80 ticks so the
        change-detection windows become ready and the locale-scaled
        trigger can fire."""
        node_config = NodeConfig.preset(
            "mp_relative",
            vivaldi=VivaldiConfig(dimensions=dimensions, use_height=use_height),
        )
        config = SimulationConfig(
            nodes=nodes,
            duration_s=400.0,
            node_config=node_config,
            churn=(
                ChurnConfig(churning_fraction=churn_fraction, mean_session_s=120.0)
                if churn_fraction > 0.0
                else None
            ),
            seed=seed,
        )
        scalar, vectorized = _run_pair(config)
        _assert_equivalent(scalar, vectorized)
        assert [c.height for c in scalar.final_application] == [
            c.height for c in vectorized.final_application
        ]

    def test_strict_equivalence_scenario_passes(self):
        run = run_scenario(get_scenario("vectorized-strict-small"))
        assert run.result.metrics["strict_equivalence"] == 1.0
        assert run.result.metrics["ticks"] == 48.0

    def test_strict_relative_height_scenario_passes(self):
        """The paper RELATIVE + height pipeline under the strict guard."""
        run = run_scenario(get_scenario("vectorized-strict-relative"))
        assert run.result.metrics["strict_equivalence"] == 1.0
        assert run.result.metrics["ticks"] == 96.0

    def test_profile_phases_reported(self):
        run = run_scenario(get_scenario("vectorized-strict-small"), collect_profile=True)
        assert run.profile is not None
        for phase in ("sample_s", "filter_s", "update_s", "heuristic_s", "metrics_s"):
            assert phase in run.profile


class TestSupportSurface:
    def test_whole_scalar_surface_is_vectorized(self):
        """Every preset -- RELATIVE and height included -- runs vectorized."""
        from repro.core.config import PRESETS

        for name in PRESETS:
            config = NodeConfig.preset(name)
            assert unsupported_reasons(config) == [], name
        assert unsupported_reasons(NodeConfig.preset("mp_relative")) == []
        assert (
            unsupported_reasons(NodeConfig(vivaldi=VivaldiConfig(use_height=True)))
            == []
        )
        VectorizedNodeState(4, NodeConfig.preset("mp_relative"), 2)

    def test_unknown_kind_still_raises_at_construction(self):
        import repro.core.vectorized as vectorized_module

        config = NodeConfig.preset("mp_relative")
        surface = tuple(
            kind
            for kind in vectorized_module.VECTORIZED_HEURISTIC_KINDS
            if kind != "relative"
        )
        original = vectorized_module.VECTORIZED_HEURISTIC_KINDS
        vectorized_module.VECTORIZED_HEURISTIC_KINDS = surface
        try:
            assert unsupported_reasons(config)
            with pytest.raises(BackendUnsupportedError, match="relative"):
                VectorizedNodeState(4, config, 2)
        finally:
            vectorized_module.VECTORIZED_HEURISTIC_KINDS = original

    def test_unsupported_spec_error_names_heuristic_and_fallback(self, monkeypatch):
        """The validation error must name the offending heuristic and
        point at the scalar-backend fallback, not be a generic rejection."""
        import repro.core.vectorized as vectorized_module

        monkeypatch.setattr(
            vectorized_module,
            "VECTORIZED_HEURISTIC_KINDS",
            tuple(
                kind
                for kind in vectorized_module.VECTORIZED_HEURISTIC_KINDS
                if kind != "relative"
            ),
        )
        with pytest.raises(
            ScenarioError, match=r"heuristic kind 'relative'.*backend='scalar'"
        ):
            ScenarioSpec(
                name="bad", mode="simulate", preset="mp_relative", backend="vectorized"
            )

    def test_relative_spec_validates_on_vectorized_backend(self):
        spec = ScenarioSpec(
            name="ok",
            mode="simulate",
            preset="mp_relative",
            use_height=True,
            backend="vectorized",
        )
        assert spec.node_config().vivaldi.use_height is True
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        flat_twin = ScenarioSpec.from_dict({**spec.to_dict(), "use_height": False})
        assert spec.spec_hash() != flat_twin.spec_hash()

    def test_vectorized_requires_simulate_mode(self):
        with pytest.raises(ScenarioError, match="requires mode='simulate'"):
            ScenarioSpec(name="bad", mode="replay", backend="vectorized")

    def test_strict_requires_vectorized(self):
        with pytest.raises(ScenarioError, match="strict_equivalence requires"):
            ScenarioSpec(name="bad", mode="simulate", strict_equivalence=True)

    def test_backend_round_trips_and_hashes(self):
        spec = ScenarioSpec(
            name="vec",
            mode="simulate",
            network=NetworkSpec(nodes=8),
            backend="vectorized",
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        scalar_twin = ScenarioSpec.from_dict({**spec.to_dict(), "backend": "scalar"})
        assert spec.spec_hash() != scalar_twin.spec_hash()


class TestSnapshotPublishBridge:
    def test_epochs_published_into_store(self):
        """run_batch_simulation pushes array epochs straight into a
        SnapshotStore: one version per publish interval plus the final
        state, no per-node objects on the way in."""
        from repro.service.snapshot import ArraySnapshot, SnapshotStore

        store = SnapshotStore(index_kind="dense", history=32)
        config = SimulationConfig(
            nodes=16, duration_s=100.0, node_config=NodeConfig.preset("mp"), seed=3
        )
        sim = run_batch_simulation(
            config,
            backend="vectorized",
            publish_store=store,
            publish_every_ticks=5,
            collect_profile=True,
        )
        # 20 ticks -> 4 interval epochs + the final publish.
        assert sim.snapshots_published == 5
        assert store.version == 5
        latest = store.latest()
        assert isinstance(latest, ArraySnapshot)
        assert latest.source.endswith("final")
        final = dict(zip(sim.host_ids, sim.final_application))
        for host_id, coordinate in final.items():
            assert latest.coordinate_of(host_id) == coordinate
        assert "publish_s" in sim.profile

    def test_final_arrays_match_object_coordinates(self):
        config = SimulationConfig(
            nodes=10, duration_s=60.0, node_config=NodeConfig.preset("mp"), seed=1
        )
        for backend in ("scalar", "vectorized"):
            sim = run_batch_simulation(config, backend=backend)
            components, heights = sim.final_application_arrays
            for row, coordinate in enumerate(sim.final_application):
                assert tuple(components[row].tolist()) == tuple(coordinate.components)
                assert float(heights[row]) == coordinate.height

    def test_publish_interval_requires_store(self):
        config = SimulationConfig(
            nodes=4, duration_s=20.0, node_config=NodeConfig.preset("mp"), seed=0
        )
        with pytest.raises(ValueError, match="publish_store"):
            run_batch_simulation(config, publish_every_ticks=2)


class TestBatchChurnSchedule:
    def test_masks_alternate_and_transitions_counted(self):
        schedule = BatchChurnSchedule(
            40,
            ChurnConfig(churning_fraction=0.5, mean_session_s=100.0, mean_downtime_s=50.0),
            duration_s=1000.0,
            seed=1,
        )
        assert schedule.churners.shape[0] == 20
        assert schedule.transitions > 0
        saw_offline = False
        for t in np.linspace(0.0, 1000.0, 21):
            mask = schedule.online_mask(float(t))
            assert mask.shape == (40,)
            non_churners = np.setdiff1d(np.arange(40), schedule.churners)
            assert mask[non_churners].all()
            if not mask.all():
                saw_offline = True
        assert saw_offline

    def test_zero_fraction_means_everyone_stays_up(self):
        schedule = BatchChurnSchedule(
            10, ChurnConfig(churning_fraction=0.0), duration_s=500.0, seed=0
        )
        assert schedule.transitions == 0
        assert schedule.online_mask(250.0).all()


# ----------------------------------------------------------------------
# Benchmark regression gate
# ----------------------------------------------------------------------
def _load_check_regression():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("check_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _vectorized_artifact(speedups, *, identical=True) -> dict:
    return {
        "benchmark": "vectorized_backend",
        "smoke": True,
        "sizes": [
            {
                "nodes": nodes,
                "speedup": value,
                "coords_byte_identical": identical,
            }
            for nodes, value in speedups.items()
        ],
        "energy_sizes": [],
    }


class TestRegressionGate:
    def test_passes_within_tolerance(self, tmp_path, capsys):
        gate = _load_check_regression()
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        name = "BENCH_vectorized_smoke.json"
        (baseline_dir / name).write_text(
            json.dumps(_vectorized_artifact({200: 20.0, 1000: 40.0}))
        )
        current = tmp_path / name
        # 25% below baseline at one size: inside the 30% tolerance.
        current.write_text(json.dumps(_vectorized_artifact({200: 15.0, 1000: 41.0})))
        assert gate.main([str(current), "--baseline-dir", str(baseline_dir)]) == 0

    def test_fails_on_throughput_regression(self, tmp_path, capsys):
        gate = _load_check_regression()
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        name = "BENCH_vectorized_smoke.json"
        (baseline_dir / name).write_text(
            json.dumps(_vectorized_artifact({200: 20.0, 1000: 40.0}))
        )
        current = tmp_path / name
        # >30% drop at 1000 nodes: the gate must fail.
        current.write_text(json.dumps(_vectorized_artifact({200: 20.0, 1000: 20.0})))
        assert gate.main([str(current), "--baseline-dir", str(baseline_dir)]) == 1

    def test_fails_on_correctness_check(self, tmp_path, capsys):
        gate = _load_check_regression()
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        name = "BENCH_vectorized_smoke.json"
        (baseline_dir / name).write_text(json.dumps(_vectorized_artifact({200: 20.0})))
        current = tmp_path / name
        current.write_text(
            json.dumps(_vectorized_artifact({200: 21.0}, identical=False))
        )
        assert gate.main([str(current), "--baseline-dir", str(baseline_dir)]) == 1

    def test_missing_baseline_is_an_error(self, tmp_path, capsys):
        gate = _load_check_regression()
        current = tmp_path / "BENCH_vectorized_smoke.json"
        current.write_text(json.dumps(_vectorized_artifact({200: 20.0})))
        empty = tmp_path / "nothing"
        empty.mkdir()
        assert gate.main([str(current), "--baseline-dir", str(empty)]) == 2

    def test_committed_baselines_parse(self):
        gate = _load_check_regression()
        baseline_dir = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
        names = sorted(p.name for p in baseline_dir.glob("BENCH_*.json"))
        assert names == [
            "BENCH_chaos_smoke.json",
            "BENCH_gateway_smoke.json",
            "BENCH_pipeline_smoke.json",
            "BENCH_publish_smoke.json",
            "BENCH_server_smoke.json",
            "BENCH_service_smoke.json",
            "BENCH_vectorized_smoke.json",
        ]
        for path in baseline_dir.glob("BENCH_*.json"):
            payload = json.loads(path.read_text())
            extractor = gate.EXTRACTORS[payload["benchmark"]]
            ratios, checks = extractor(payload)
            assert ratios, f"{path.name} yields no ratio metrics"
            assert all(checks.values()), f"{path.name} baselined a failing check"
