"""Tests for the Wilcoxon rank-sum test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.ranksum import RankSumResult, rank_sum_test


class TestRankSum:
    def test_identical_samples_are_not_significant(self):
        result = rank_sum_test([1.0, 2.0, 3.0, 4.0], [1.0, 2.0, 3.0, 4.0])
        assert result.p_value > 0.5
        assert not result.significant()

    def test_clearly_shifted_samples_are_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(loc=0.0, size=40)
        b = rng.normal(loc=5.0, size=40)
        result = rank_sum_test(a, b)
        assert result.significant(alpha=0.01)

    def test_same_distribution_usually_not_significant(self):
        rng = np.random.default_rng(1)
        rejections = 0
        trials = 40
        for _ in range(trials):
            a = rng.normal(size=30)
            b = rng.normal(size=30)
            if rank_sum_test(a, b).significant(alpha=0.05):
                rejections += 1
        # The false positive rate should be near alpha, certainly below 20%.
        assert rejections / trials < 0.2

    def test_symmetry_of_p_value(self):
        a = [1.0, 2.0, 3.0, 10.0, 11.0]
        b = [5.0, 6.0, 7.0, 8.0, 9.0]
        assert rank_sum_test(a, b).p_value == pytest.approx(
            rank_sum_test(b, a).p_value, rel=1e-6
        )

    def test_handles_ties(self):
        result = rank_sum_test([1.0, 1.0, 1.0, 2.0], [1.0, 1.0, 2.0, 2.0])
        assert 0.0 <= result.p_value <= 1.0

    def test_all_identical_values_gives_p_one(self):
        result = rank_sum_test([3.0, 3.0, 3.0], [3.0, 3.0])
        assert result.p_value == 1.0
        assert result.z_score == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            rank_sum_test([], [1.0])

    def test_matches_scipy_when_available(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(3)
        a = rng.normal(size=25)
        b = rng.normal(loc=0.8, size=30)
        ours = rank_sum_test(a, b)
        theirs = scipy_stats.mannwhitneyu(a, b, alternative="two-sided")
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=0.02)

    def test_result_is_dataclass_with_fields(self):
        result = rank_sum_test([1.0, 2.0], [3.0, 4.0])
        assert isinstance(result, RankSumResult)
        assert hasattr(result, "u_statistic")
        assert hasattr(result, "z_score")
