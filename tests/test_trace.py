"""Tests for trace records, containers, and persistence."""

from __future__ import annotations

import pytest

from repro.latency.trace import LatencyTrace, TraceRecord


def _record(t: float, src: str = "a", dst: str = "b", rtt: float = 10.0) -> TraceRecord:
    return TraceRecord(time_s=t, src=src, dst=dst, rtt_ms=rtt)


class TestTraceRecord:
    def test_link_is_direction_agnostic(self):
        assert _record(0.0, "a", "b").link() == _record(0.0, "b", "a").link()

    def test_link_is_sorted(self):
        assert _record(0.0, "z", "a").link() == ("a", "z")


class TestLatencyTrace:
    def test_records_are_sorted_by_time_on_construction(self):
        trace = LatencyTrace([_record(5.0), _record(1.0), _record(3.0)])
        times = [r.time_s for r in trace]
        assert times == sorted(times)

    def test_len_and_indexing(self):
        trace = LatencyTrace([_record(1.0), _record(2.0)])
        assert len(trace) == 2
        assert trace[0].time_s == 1.0

    def test_append_enforces_time_order(self):
        trace = LatencyTrace([_record(5.0)])
        with pytest.raises(ValueError):
            trace.append(_record(1.0))

    def test_append_accepts_equal_timestamps(self):
        trace = LatencyTrace([_record(5.0)])
        trace.append(_record(5.0))
        assert len(trace) == 2

    def test_duration_and_bounds(self):
        trace = LatencyTrace([_record(10.0), _record(40.0)])
        assert trace.start_time_s == 10.0
        assert trace.end_time_s == 40.0
        assert trace.duration_s == 30.0

    def test_empty_trace_has_zero_duration(self):
        assert LatencyTrace().duration_s == 0.0

    def test_nodes_lists_all_participants(self):
        trace = LatencyTrace([_record(1.0, "a", "b"), _record(2.0, "c", "a")])
        assert trace.nodes() == ["a", "b", "c"]

    def test_rtts_returns_all_values(self):
        trace = LatencyTrace([_record(1.0, rtt=5.0), _record(2.0, rtt=7.0)])
        assert list(trace.rtts()) == [5.0, 7.0]

    def test_per_link_groups_both_directions_together(self):
        trace = LatencyTrace([_record(1.0, "a", "b"), _record(2.0, "b", "a")])
        links = trace.per_link()
        assert list(links) == [("a", "b")]
        assert len(links[("a", "b")]) == 2

    def test_per_source_groups_by_measuring_node(self):
        trace = LatencyTrace([_record(1.0, "a", "b"), _record(2.0, "b", "a"), _record(3.0, "a", "c")])
        sources = trace.per_source()
        assert len(sources["a"]) == 2
        assert len(sources["b"]) == 1

    def test_link_stream_is_time_ordered_subset(self):
        trace = LatencyTrace(
            [_record(1.0, "a", "b"), _record(2.0, "a", "c"), _record(3.0, "b", "a")]
        )
        stream = trace.link_stream("a", "b")
        assert [r.time_s for r in stream] == [1.0, 3.0]

    def test_time_slice_is_half_open(self):
        trace = LatencyTrace([_record(float(t)) for t in range(10)])
        window = trace.time_slice(2.0, 5.0)
        assert [r.time_s for r in window] == [2.0, 3.0, 4.0]

    def test_time_slice_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            LatencyTrace().time_slice(5.0, 2.0)

    def test_csv_roundtrip(self, tmp_path):
        trace = LatencyTrace(
            [_record(1.25, "a", "b", 10.5), _record(2.5, "b", "c", 220.125)]
        )
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = LatencyTrace.from_csv(path)
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert restored.time_s == pytest.approx(original.time_s)
            assert restored.src == original.src
            assert restored.dst == original.dst
            assert restored.rtt_ms == pytest.approx(original.rtt_ms)

    def test_from_csv_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("x,y\n1,2\n")
        with pytest.raises(ValueError):
            LatencyTrace.from_csv(path)

    def test_csv_string_contains_header_and_rows(self):
        trace = LatencyTrace([_record(1.0)])
        text = trace.to_csv_string()
        assert text.splitlines()[0] == "time_s,src,dst,rtt_ms"
        assert len(text.splitlines()) == 2
