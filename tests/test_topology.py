"""Tests for the geographic topology generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency.topology import DEFAULT_REGIONS, GeographicTopology, Host, Region, Site


class TestGeneration:
    def test_generates_requested_number_of_hosts(self):
        topo = GeographicTopology.generate(17, seed=0)
        assert topo.size == 17
        assert len(topo.host_ids) == 17

    def test_host_ids_are_unique(self):
        topo = GeographicTopology.generate(40, seed=0)
        assert len(set(topo.host_ids)) == 40

    def test_generation_is_deterministic_for_a_seed(self):
        a = GeographicTopology.generate(20, seed=7)
        b = GeographicTopology.generate(20, seed=7)
        assert a.host_ids == b.host_ids
        for x, y in zip(a.host_ids, a.host_ids[1:]):
            assert a.base_rtt_ms(x, y) == b.base_rtt_ms(x, y)

    def test_different_seeds_give_different_topologies(self):
        a = GeographicTopology.generate(20, seed=1)
        b = GeographicTopology.generate(20, seed=2)
        pair = (a.host_ids[0], a.host_ids[1])
        assert a.base_rtt_ms(*pair) != pytest.approx(b.base_rtt_ms(*pair))

    def test_every_host_belongs_to_a_known_region(self, small_topology):
        regions = set(small_topology.regions())
        for host_id in small_topology.host_ids:
            assert small_topology.region_of(host_id) in regions

    def test_custom_region_weights(self):
        topo = GeographicTopology.generate(
            30, seed=0, region_weights=[1.0, 0.0, 0.0, 0.0]
        )
        assert all(topo.region_of(h) == "us-east" for h in topo.host_ids)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GeographicTopology.generate(0)
        with pytest.raises(ValueError):
            GeographicTopology.generate(5, sites_per_region=0)
        with pytest.raises(ValueError):
            GeographicTopology.generate(5, region_weights=[1.0])

    def test_duplicate_host_ids_rejected(self):
        host = Host("h0", "s0", "us-east", 1.0)
        site = Site("s0", "us-east", (0.0, 0.0))
        region = Region("us-east", (0.0, 0.0))
        with pytest.raises(ValueError):
            GeographicTopology([host, host], {"s0": site}, {"us-east": region})


class TestBaseRtt:
    def test_self_latency_is_zero(self, small_topology):
        host = small_topology.host_ids[0]
        assert small_topology.base_rtt_ms(host, host) == 0.0

    def test_symmetry(self, small_topology):
        hosts = small_topology.host_ids
        for a, b in zip(hosts, hosts[1:]):
            assert small_topology.base_rtt_ms(a, b) == pytest.approx(
                small_topology.base_rtt_ms(b, a)
            )

    def test_all_rtts_positive(self, small_topology):
        for a, b in small_topology.pairs():
            assert small_topology.base_rtt_ms(a, b) > 0.0

    def test_intra_region_faster_than_inter_continental(self):
        topo = GeographicTopology.generate(60, seed=3)
        intra, inter = [], []
        for a, b in topo.pairs():
            rtt = topo.base_rtt_ms(a, b)
            if topo.region_of(a) == topo.region_of(b):
                intra.append(rtt)
            elif {topo.region_of(a), topo.region_of(b)} == {"us-east", "asia"}:
                inter.append(rtt)
        assert intra and inter
        assert np.median(intra) < np.median(inter)

    def test_inter_continental_rtts_in_plausible_range(self):
        topo = GeographicTopology.generate(60, seed=3)
        values = [
            topo.base_rtt_ms(a, b)
            for a, b in topo.pairs()
            if {topo.region_of(a), topo.region_of(b)} == {"europe", "asia"}
        ]
        assert values
        assert 80.0 < float(np.median(values)) < 500.0

    def test_same_site_hosts_are_sub_5ms(self):
        topo = GeographicTopology.generate(120, seed=4)
        same_site_pairs = [
            (a, b)
            for a, b in topo.pairs()
            if topo.host(a).site_id == topo.host(b).site_id
        ]
        if not same_site_pairs:
            pytest.skip("no co-located hosts generated for this seed")
        for a, b in same_site_pairs:
            assert topo.base_rtt_ms(a, b) < 5.0

    def test_rtt_matrix_matches_pairwise_calls(self, small_topology):
        matrix = small_topology.rtt_matrix()
        hosts = small_topology.host_ids
        assert matrix.shape == (len(hosts), len(hosts))
        assert matrix[0, 1] == pytest.approx(small_topology.base_rtt_ms(hosts[0], hosts[1]))
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)

    def test_pairs_enumerates_each_unordered_pair_once(self, small_topology):
        pairs = list(small_topology.pairs())
        n = small_topology.size
        assert len(pairs) == n * (n - 1) // 2
        assert len(set(frozenset(p) for p in pairs)) == len(pairs)

    def test_hosts_in_region_partition_the_hosts(self, small_topology):
        total = sum(len(small_topology.hosts_in_region(r)) for r in small_topology.regions())
        assert total == small_topology.size
