"""Tests for configuration dataclasses and presets."""

from __future__ import annotations

import pytest

from repro.core.config import PRESETS, FilterConfig, HeuristicConfig, NodeConfig
from repro.core.filters import EWMAFilter, MovingPercentileFilter, NoFilter
from repro.core.heuristics import AlwaysUpdateHeuristic, EnergyHeuristic, RelativeHeuristic
from repro.core.vivaldi import VivaldiConfig


class TestFilterConfig:
    def test_build_creates_configured_filter(self):
        config = FilterConfig("mp", {"history": 8, "percentile": 50.0})
        built = config.build()
        assert isinstance(built, MovingPercentileFilter)
        assert built.history == 8

    def test_build_creates_fresh_instances(self):
        config = FilterConfig("ewma", {"alpha": 0.1})
        assert config.build() is not config.build()

    def test_with_params_merges(self):
        config = FilterConfig("mp", {"history": 4}).with_params(percentile=50.0)
        assert dict(config.params) == {"history": 4, "percentile": 50.0}


class TestHeuristicConfig:
    def test_build_creates_configured_heuristic(self):
        config = HeuristicConfig("energy", {"threshold": 4.0, "window_size": 16})
        built = config.build()
        assert isinstance(built, EnergyHeuristic)
        assert built.threshold == 4.0

    def test_with_params_overrides(self):
        config = HeuristicConfig("energy", {"threshold": 4.0}).with_params(threshold=8.0)
        assert dict(config.params) == {"threshold": 8.0}


class TestPresets:
    def test_all_presets_build(self):
        for name in PRESETS:
            config = NodeConfig.preset(name)
            assert config.filter.build() is not None
            assert config.heuristic.build() is not None

    def test_raw_preset_has_no_filter(self):
        config = NodeConfig.preset("raw")
        assert isinstance(config.filter.build(), NoFilter)
        assert isinstance(config.heuristic.build(), AlwaysUpdateHeuristic)

    def test_mp_preset_uses_paper_parameters(self):
        built = NodeConfig.preset("mp").filter.build()
        assert isinstance(built, MovingPercentileFilter)
        assert built.history == 4
        assert built.percentile == 25.0

    def test_mp_energy_preset_uses_deployed_parameters(self):
        heuristic = NodeConfig.preset("mp_energy").heuristic.build()
        assert isinstance(heuristic, EnergyHeuristic)
        assert heuristic.threshold == 8.0
        assert heuristic.window_size == 32

    def test_mp_relative_preset(self):
        heuristic = NodeConfig.preset("mp_relative").heuristic.build()
        assert isinstance(heuristic, RelativeHeuristic)
        assert heuristic.relative_threshold == 0.3

    def test_cluster_confidence_preset_sets_margin(self):
        config = NodeConfig.preset("cluster_confidence")
        assert config.vivaldi.error_margin_ms == 3.0

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            NodeConfig.preset("turbo")

    def test_preset_overrides_replace_fields(self):
        config = NodeConfig.preset("mp_energy", vivaldi=VivaldiConfig(dimensions=2))
        assert config.vivaldi.dimensions == 2
        assert config.heuristic.kind == "energy"

    def test_describe_is_flat_and_complete(self):
        info = NodeConfig.preset("mp_energy").describe()
        assert info["filter"] == "mp"
        assert info["heuristic"] == "energy"
        assert info["dimensions"] == 3
        assert info["cc"] == 0.25

    def test_vivaldi_constants_match_paper_default(self):
        config = NodeConfig.preset("mp")
        assert config.vivaldi.cc == 0.25
        assert config.vivaldi.ce == 0.25
