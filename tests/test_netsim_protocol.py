"""Tests for the network, host, and sampling-protocol layers."""

from __future__ import annotations

import pytest

from repro.core.config import NodeConfig
from repro.netsim.host import SimulatedHost
from repro.netsim.network import Network, NetworkConfig
from repro.netsim.protocol import PingProtocol, ProtocolConfig
from repro.netsim.simulator import Simulator


class TestNetwork:
    def test_measure_rtt_returns_positive_latency(self, small_dataset):
        sim = Simulator()
        network = Network(sim, small_dataset, config=NetworkConfig(loss_probability=0.0))
        a, b = small_dataset.topology.host_ids[:2]
        rtt = network.measure_rtt(a, b)
        assert rtt is not None and rtt > 0.0

    def test_loss_probability_one_is_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(loss_probability=1.0)

    def test_lossy_network_drops_some_pings(self, small_dataset):
        sim = Simulator()
        network = Network(
            sim, small_dataset, config=NetworkConfig(loss_probability=0.5), seed=1
        )
        a, b = small_dataset.topology.host_ids[:2]
        outcomes = [network.measure_rtt(a, b) for _ in range(200)]
        losses = sum(1 for o in outcomes if o is None)
        assert 50 < losses < 150
        assert network.messages_lost == losses
        assert network.messages_sent == 200

    def test_send_ping_delivers_response_after_rtt(self, small_dataset):
        sim = Simulator()
        network = Network(sim, small_dataset, config=NetworkConfig(loss_probability=0.0))
        a, b = small_dataset.topology.host_ids[:2]
        received = []
        network.send_ping(a, b, lambda rtt: received.append((sim.now, rtt)))
        sim.run_until(60.0)
        assert len(received) == 1
        delivered_at, rtt = received[0]
        assert delivered_at == pytest.approx(rtt / 1000.0, rel=1e-6)

    def test_lost_ping_invokes_loss_callback(self, small_dataset):
        sim = Simulator()
        network = Network(
            sim, small_dataset, config=NetworkConfig(loss_probability=0.999), seed=2
        )
        a, b = small_dataset.topology.host_ids[:2]
        losses = []
        network.send_ping(a, b, lambda rtt: None, on_loss=lambda: losses.append(sim.now))
        sim.run_until(10.0)
        assert losses == [2.0]


class TestSimulatedHost:
    def test_bounded_neighbor_set(self):
        host = SimulatedHost("h0", NodeConfig.preset("raw"), max_neighbors=2)
        assert host.add_neighbor("a")
        assert host.add_neighbor("b")
        assert not host.add_neighbor("c")
        assert host.neighbors == ["a", "b"]

    def test_does_not_add_self_or_duplicates(self):
        host = SimulatedHost("h0", NodeConfig.preset("raw"))
        assert not host.add_neighbor("h0")
        assert host.add_neighbor("a")
        assert not host.add_neighbor("a")

    def test_round_robin_sampling_order(self):
        host = SimulatedHost("h0", NodeConfig.preset("raw"), initial_neighbors=["a", "b", "c"])
        samples = [host.next_sample_target() for _ in range(6)]
        assert samples == ["a", "b", "c", "a", "b", "c"]

    def test_no_neighbors_means_no_target(self):
        host = SimulatedHost("h0", NodeConfig.preset("raw"))
        assert host.next_sample_target() is None

    def test_gossip_address_comes_from_neighbor_set(self):
        host = SimulatedHost("h0", NodeConfig.preset("raw"), initial_neighbors=["a", "b"])
        assert host.gossip_address(0.0) == "a"
        assert host.gossip_address(0.6) == "b"
        assert SimulatedHost("x", NodeConfig.preset("raw")).gossip_address(0.5) is None

    def test_max_neighbors_validation(self):
        with pytest.raises(ValueError):
            SimulatedHost("h0", NodeConfig.preset("raw"), max_neighbors=0)


class TestPingProtocol:
    def _build(self, dataset, preset="mp", sampling_interval_s=2.0, seed=0, loss=0.0):
        sim = Simulator()
        network = Network(sim, dataset, config=NetworkConfig(loss_probability=loss), seed=seed)
        host_ids = dataset.topology.host_ids[:6]
        # Bootstrap as a ring: each host only knows its successor, so gossip
        # is what spreads the remaining addresses.
        hosts = {
            host_id: SimulatedHost(
                host_id,
                NodeConfig.preset(preset),
                initial_neighbors=[host_ids[(index + 1) % len(host_ids)]],
            )
            for index, host_id in enumerate(host_ids)
        }
        observations = []
        protocol = PingProtocol(
            sim,
            network,
            hosts,
            config=ProtocolConfig(
                sampling_interval_s=sampling_interval_s, initial_phase_spread_s=1.0
            ),
            seed=seed,
            on_observation=lambda t, host, peer, rtt, result: observations.append(
                (t, host.host_id, peer)
            ),
        )
        return sim, protocol, hosts, observations

    def test_samples_flow_and_coordinates_move(self, small_dataset):
        sim, protocol, hosts, observations = self._build(small_dataset)
        protocol.start()
        sim.run_until(120.0)
        assert protocol.samples_completed > 0
        assert observations
        moved = [h for h in hosts.values() if not h.system_coordinate.is_origin()]
        assert moved

    def test_sampling_rate_matches_configuration(self, small_dataset):
        sim, protocol, hosts, _ = self._build(small_dataset, sampling_interval_s=5.0)
        protocol.start()
        sim.run_until(100.0)
        # 6 hosts, one sample each 5 s for 100 s => about 120 attempts.
        assert 90 <= protocol.samples_attempted <= 130

    def test_gossip_grows_neighbor_sets(self, small_dataset):
        sim, protocol, hosts, _ = self._build(small_dataset)
        initial = {h: len(host.neighbors) for h, host in hosts.items()}
        protocol.start()
        sim.run_until(300.0)
        grown = [
            host_id
            for host_id, host in hosts.items()
            if len(host.neighbors) > initial[host_id]
        ]
        assert grown

    def test_protocol_requires_hosts(self, small_dataset):
        sim = Simulator()
        network = Network(sim, small_dataset)
        with pytest.raises(ValueError):
            PingProtocol(sim, network, {})

    def test_observation_callback_receives_simulation_time(self, small_dataset):
        sim, protocol, hosts, observations = self._build(small_dataset)
        protocol.start()
        sim.run_until(60.0)
        assert all(0.0 <= t <= 60.0 for t, _, _ in observations)

    def test_runs_are_deterministic_for_a_seed(self, small_dataset):
        def run_once():
            sim, protocol, hosts, observations = self._build(small_dataset, seed=4)
            protocol.start()
            sim.run_until(60.0)
            return [(round(t, 9), a, b) for t, a, b in observations]

        assert run_once() == run_once()
