"""Tests for node churn in the protocol simulation."""

from __future__ import annotations

import pytest

from repro.core.config import NodeConfig
from repro.netsim.churn import ChurnConfig, ChurnModel
from repro.netsim.host import SimulatedHost
from repro.netsim.runner import SimulationConfig, run_simulation
from repro.netsim.simulator import Simulator


def _hosts(count: int) -> dict:
    return {
        f"h{i}": SimulatedHost(f"h{i}", NodeConfig.preset("raw"), initial_neighbors=["h0"])
        for i in range(count)
    }


class TestChurnConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(churning_fraction=1.5)
        with pytest.raises(ValueError):
            ChurnConfig(mean_session_s=0.0)
        with pytest.raises(ValueError):
            ChurnConfig(mean_downtime_s=-1.0)


class TestChurnModel:
    def test_zero_fraction_means_no_transitions(self):
        sim = Simulator()
        hosts = _hosts(10)
        model = ChurnModel(sim, hosts, config=ChurnConfig(churning_fraction=0.0), seed=1)
        model.start()
        sim.run_until(5000.0)
        assert model.transitions == 0
        assert all(host.online for host in hosts.values())

    def test_churners_toggle_online_state(self):
        sim = Simulator()
        hosts = _hosts(10)
        model = ChurnModel(
            sim,
            hosts,
            config=ChurnConfig(churning_fraction=0.5, mean_session_s=100.0, mean_downtime_s=50.0),
            seed=2,
        )
        model.start()
        assert len(model.churning_hosts) == 5
        sim.run_until(2000.0)
        assert model.transitions > 0

    def test_non_churners_stay_online(self):
        sim = Simulator()
        hosts = _hosts(10)
        model = ChurnModel(
            sim,
            hosts,
            config=ChurnConfig(churning_fraction=0.3, mean_session_s=50.0, mean_downtime_s=50.0),
            seed=3,
        )
        model.start()
        sim.run_until(2000.0)
        stable = [h for h in hosts if h not in model.churning_hosts]
        assert all(hosts[h].online for h in stable)

    def test_churn_is_deterministic_per_seed(self):
        def run_once():
            sim = Simulator()
            hosts = _hosts(8)
            model = ChurnModel(
                sim,
                hosts,
                config=ChurnConfig(churning_fraction=0.5, mean_session_s=80.0, mean_downtime_s=40.0),
                seed=4,
            )
            model.start()
            sim.run_until(1000.0)
            return model.transitions, sorted(model.churning_hosts)

        assert run_once() == run_once()


class TestChurnInSimulation:
    def test_simulation_with_churn_still_converges(self):
        config = SimulationConfig(
            nodes=12,
            duration_s=900.0,
            churn=ChurnConfig(churning_fraction=0.25, mean_session_s=200.0, mean_downtime_s=60.0),
            seed=5,
        )
        result = run_simulation(config)
        assert result.churn_transitions > 0
        snapshot = result.snapshot
        assert snapshot.median_of_median_application_error is not None
        assert snapshot.median_of_median_application_error < 1.0

    def test_offline_hosts_do_not_complete_samples(self):
        """With everyone churning and long downtimes, fewer samples complete."""
        static = run_simulation(SimulationConfig(nodes=10, duration_s=600.0, seed=6))
        churny = run_simulation(
            SimulationConfig(
                nodes=10,
                duration_s=600.0,
                churn=ChurnConfig(
                    churning_fraction=1.0, mean_session_s=100.0, mean_downtime_s=200.0
                ),
                seed=6,
            )
        )
        assert churny.samples_completed < static.samples_completed
