"""Tests for the per-link observation models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency.linkmodel import (
    ClusterLink,
    HeavyTailLink,
    HeavyTailParameters,
    LinkModel,
    ShiftingLink,
    StableLink,
)


class TestStableLink:
    def test_samples_cluster_tightly_around_baseline(self, rng):
        link = StableLink(base_rtt_ms=100.0, jitter_fraction=0.02)
        samples = np.array([link.sample(rng, 0.0) for _ in range(2000)])
        assert abs(np.median(samples) - 100.0) < 5.0
        assert samples.max() < 150.0

    def test_zero_jitter_is_exact(self, rng):
        link = StableLink(base_rtt_ms=42.0, jitter_fraction=0.0)
        assert link.sample(rng, 0.0) == pytest.approx(42.0)

    def test_true_rtt_is_constant(self):
        link = StableLink(base_rtt_ms=42.0)
        assert link.true_rtt_ms(0.0) == link.true_rtt_ms(1e6) == 42.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StableLink(base_rtt_ms=-1.0)


class TestHeavyTailLink:
    def test_bulk_of_samples_near_baseline(self, rng):
        link = HeavyTailLink(base_rtt_ms=100.0)
        samples = np.array([link.sample(rng, 0.0) for _ in range(5000)])
        assert abs(np.median(samples) - 100.0) < 15.0

    def test_tail_spans_orders_of_magnitude(self, rng):
        link = HeavyTailLink(base_rtt_ms=100.0)
        samples = np.array([link.sample(rng, 0.0) for _ in range(20000)])
        assert samples.max() > 10.0 * np.median(samples)

    def test_outlier_fraction_roughly_matches_parameter(self, rng):
        params = HeavyTailParameters(outlier_probability=0.01)
        link = HeavyTailLink(base_rtt_ms=100.0, parameters=params)
        samples = np.array([link.sample(rng, 0.0) for _ in range(20000)])
        fraction = float((samples >= 1000.0).mean())
        assert 0.004 < fraction < 0.03

    def test_samples_are_always_positive(self, rng):
        link = HeavyTailLink(base_rtt_ms=1.0)
        samples = [link.sample(rng, 0.0) for _ in range(2000)]
        assert min(samples) > 0.0

    def test_mean_exceeds_median_because_of_the_tail(self, rng):
        link = HeavyTailLink(base_rtt_ms=100.0)
        samples = np.array([link.sample(rng, 0.0) for _ in range(20000)])
        assert samples.mean() > np.median(samples)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HeavyTailParameters(spike_probability=1.5)
        with pytest.raises(ValueError):
            HeavyTailParameters(spike_probability=0.6, outlier_probability=0.6)
        with pytest.raises(ValueError):
            HeavyTailParameters(outlier_range_ms=(500.0, 100.0))


class TestClusterLink:
    def test_bulk_is_sub_1_2ms(self, rng):
        link = ClusterLink()
        samples = np.array([link.sample(rng, 0.0) for _ in range(5000)])
        assert 0.3 < np.median(samples) < 1.2

    def test_tail_fraction_roughly_five_percent(self, rng):
        link = ClusterLink()
        samples = np.array([link.sample(rng, 0.0) for _ in range(20000)])
        tail = float((samples > 1.2).mean())
        assert 0.02 < tail < 0.09

    def test_samples_positive(self, rng):
        link = ClusterLink()
        assert min(link.sample(rng, 0.0) for _ in range(2000)) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterLink(base_rtt_ms=0.0)


class TestShiftingLink:
    def test_baseline_shifts_at_scheduled_time(self, rng):
        inner = StableLink(base_rtt_ms=100.0, jitter_fraction=0.0)
        link = ShiftingLink(inner=inner, shifts=((1000.0, 1.5),))
        assert link.true_rtt_ms(0.0) == pytest.approx(100.0)
        assert link.true_rtt_ms(2000.0) == pytest.approx(150.0)

    def test_multiple_shifts_apply_latest(self):
        inner = StableLink(base_rtt_ms=100.0, jitter_fraction=0.0)
        link = ShiftingLink(inner=inner, shifts=((100.0, 2.0), (200.0, 0.5)))
        assert link.true_rtt_ms(150.0) == pytest.approx(200.0)
        assert link.true_rtt_ms(300.0) == pytest.approx(50.0)

    def test_drift_grows_baseline_over_time(self):
        inner = StableLink(base_rtt_ms=100.0, jitter_fraction=0.0)
        link = ShiftingLink(inner=inner, drift_fraction_per_hour=0.1)
        assert link.true_rtt_ms(3600.0) == pytest.approx(110.0)

    def test_samples_follow_the_shifted_baseline(self, rng):
        inner = StableLink(base_rtt_ms=100.0, jitter_fraction=0.01)
        link = ShiftingLink(inner=inner, shifts=((10.0, 2.0),))
        late_samples = np.array([link.sample(rng, 100.0) for _ in range(500)])
        assert abs(np.median(late_samples) - 200.0) < 20.0

    def test_unordered_shifts_rejected(self):
        inner = StableLink(base_rtt_ms=10.0)
        with pytest.raises(ValueError):
            ShiftingLink(inner=inner, shifts=((100.0, 1.0), (50.0, 2.0)))

    def test_non_positive_multiplier_rejected(self):
        inner = StableLink(base_rtt_ms=10.0)
        with pytest.raises(ValueError):
            ShiftingLink(inner=inner, shifts=((10.0, 0.0),))


class TestProtocolConformance:
    def test_all_models_satisfy_the_link_model_protocol(self):
        models = [
            StableLink(10.0),
            HeavyTailLink(10.0),
            ClusterLink(),
            ShiftingLink(inner=StableLink(10.0)),
        ]
        for model in models:
            assert isinstance(model, LinkModel)
