"""Example: sweep a scenario grid on the sharded engine.

Expands the churn scenario over a (churning fraction x filter warm-up)
grid, runs it across worker processes with result caching, and prints a
comparison table -- the programmatic equivalent of::

    repro scenarios sweep planetlab-churn-30pct \
        --set churning_fraction=0.1,0.3 --set warmup=1,2 --workers 2

Usage::

    python examples/scenario_sweep.py [--nodes 12] [--minutes 10] [--workers 2]
"""

from __future__ import annotations

import argparse
import multiprocessing
import tempfile

from repro.engine import execute
from repro.scenarios import ScenarioGrid, ScenarioSpec, get_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=12, help="hosts per grid cell")
    parser.add_argument("--minutes", type=float, default=10.0, help="simulated minutes")
    parser.add_argument("--workers", type=int, default=2, help="worker processes")
    args = parser.parse_args()

    base = get_scenario("planetlab-churn-30pct")
    payload = base.to_dict()
    payload["network"] = {**payload["network"], "nodes": args.nodes}
    payload["duration_s"] = args.minutes * 60.0
    base = ScenarioSpec.from_dict(payload)

    cells = ScenarioGrid(base).sweep(churning_fraction=(0.1, 0.3), warmup=(1, 2))
    start_method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"

    with tempfile.TemporaryDirectory(prefix="scenario-cache-") as cache_dir:
        report = execute(
            cells, workers=args.workers, cache_dir=cache_dir, mp_context=start_method
        )
        rerun = execute(
            cells, workers=args.workers, cache_dir=cache_dir, mp_context=start_method
        )

    print(f"{'cell':<52} {'med app err':>12} {'instab ms/s':>12} {'transitions':>12}")
    for result in report.results:
        median_error = result.metrics["median_of_median_application_error"]
        print(
            f"{result.name:<52} "
            f"{median_error if median_error is not None else float('nan'):>12.3f} "
            f"{result.metrics['aggregate_application_instability']:>12.2f} "
            f"{int(result.metrics['churn_transitions']):>12d}"
        )
    print(
        f"\nfirst sweep: {report.elapsed_s:.1f}s with {report.workers} worker(s); "
        f"re-run: {rerun.elapsed_s:.1f}s with {rerun.cache_hits}/{len(cells)} cells "
        "served from the cache"
    )


if __name__ == "__main__":
    main()
