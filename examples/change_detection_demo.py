#!/usr/bin/env python3
"""Standalone demonstration of the two-window energy change detector.

The heart of the paper's ENERGY heuristic is general-purpose: detect a
statistically significant change in a multi-dimensional stream by comparing
a frozen start window against a sliding current window with the
Szekely-Rizzo energy distance (Section V-A, after Kifer/Ben-David/Gehrke).

This example feeds the detector a synthetic 3-D stream that:

* stays stationary around one centre,
* then drifts to a new centre (a genuine change),
* then stays stationary again but with heavier noise (no change in
  location, only in spread -- the detector should be far less excited).

Run it with::

    python examples/change_detection_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core.coordinate import Coordinate
from repro.core.energy import energy_distance
from repro.core.windows import ChangeDetectionWindows


def main() -> None:
    rng = np.random.default_rng(11)
    window_size = 32
    threshold = 8.0

    windows: ChangeDetectionWindows[Coordinate] = ChangeDetectionWindows(window_size)
    change_points = []

    def feed(points: np.ndarray, phase: str) -> None:
        for point in points:
            windows.add(Coordinate(point.tolist()))
            if windows.ready:
                statistic = energy_distance(windows.start_window, windows.current_window)
                if statistic > threshold:
                    change_points.append((phase, len(change_points) + 1, statistic))
                    print(f"  change point detected during '{phase}' (energy statistic {statistic:.1f})")
                    windows.declare_change_point()

    print(f"two-window energy change detector: window={window_size}, threshold={threshold}\n")

    print("phase 1: stationary around (0, 0, 0)")
    feed(rng.normal(loc=[0.0, 0.0, 0.0], scale=2.0, size=(150, 3)), "stationary")

    print("phase 2: drift to (25, -10, 5)")
    drift = np.linspace([0.0, 0.0, 0.0], [25.0, -10.0, 5.0], num=150) + rng.normal(
        scale=2.0, size=(150, 3)
    )
    feed(drift, "drift")

    print("phase 3: stationary at the new centre, noisier")
    feed(rng.normal(loc=[25.0, -10.0, 5.0], scale=4.0, size=(150, 3)), "noisy stationary")

    detections_by_phase = {}
    for phase, _, _ in change_points:
        detections_by_phase[phase] = detections_by_phase.get(phase, 0) + 1
    print("\ndetections per phase:", detections_by_phase or "none")
    print(
        "Expected shape: no (or almost no) detections while stationary, several during the "
        "drift, and few afterwards -- increased noise alone is not a location change."
    )


if __name__ == "__main__":
    main()
