#!/usr/bin/env python3
"""Quickstart: build a stable coordinate system over a synthetic network.

The example walks through the library's main moving parts:

1. generate a synthetic PlanetLab-like network (topology + per-link
   heavy-tailed observation models);
2. replay a short ping trace through the full coordinate subsystem
   (MP filter + Vivaldi + ENERGY application updates);
3. compare predicted and true round-trip times for a few pairs;
4. contrast accuracy and stability with raw (unfiltered) Vivaldi.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import NodeConfig
from repro.latency import PlanetLabDataset
from repro.netsim import replay_trace


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A synthetic network universe: 20 hosts in four regions.
    # ------------------------------------------------------------------
    dataset = PlanetLabDataset.generate(nodes=20, seed=42)
    print(f"generated {dataset.topology.size} hosts in regions: {dataset.topology.regions()}")

    # ------------------------------------------------------------------
    # 2. A 20-minute ping trace (every node pings a peer every 2 seconds),
    #    replayed through the stabilised coordinate subsystem.
    # ------------------------------------------------------------------
    trace = dataset.generate_trace(duration_s=1200.0, ping_interval_s=2.0)
    print(f"trace: {len(trace)} observations over {trace.duration_s:.0f} s")

    stable = replay_trace(trace, NodeConfig.preset("mp_energy"))
    raw = replay_trace(trace, NodeConfig.preset("raw"))

    # ------------------------------------------------------------------
    # 3. Predicted vs true RTT for a few pairs (application coordinates).
    # ------------------------------------------------------------------
    node_ids = dataset.topology.host_ids
    print("\npredicted vs baseline RTT (stabilised coordinates):")
    for a, b in [(node_ids[0], node_ids[5]), (node_ids[1], node_ids[10]), (node_ids[2], node_ids[15])]:
        predicted = stable.nodes[a].application_coordinate.distance(
            stable.nodes[b].application_coordinate
        )
        true_rtt = dataset.true_rtt_ms(a, b)
        print(f"  {a} <-> {b}: predicted {predicted:7.1f} ms   baseline {true_rtt:7.1f} ms")

    # ------------------------------------------------------------------
    # 4. Accuracy/stability with and without the paper's enhancements.
    # ------------------------------------------------------------------
    stable_snapshot = stable.snapshot
    raw_snapshot = raw.snapshot
    print("\nsecond-half metrics (median over nodes):")
    print(
        f"  raw Vivaldi        : median rel. error {raw_snapshot.median_of_median_application_error:.3f}, "
        f"aggregate instability {raw_snapshot.aggregate_application_instability:.1f} ms/s"
    )
    print(
        f"  MP filter + ENERGY : median rel. error {stable_snapshot.median_of_median_application_error:.3f}, "
        f"aggregate instability {stable_snapshot.aggregate_application_instability:.1f} ms/s"
    )
    error_gain = (
        1.0
        - stable_snapshot.median_of_median_application_error
        / raw_snapshot.median_of_median_application_error
    ) * 100.0
    stability_gain = (
        1.0
        - stable_snapshot.aggregate_application_instability
        / raw_snapshot.aggregate_application_instability
    ) * 100.0
    print(f"  improvement        : {error_gain:.0f}% accuracy, {stability_gain:.0f}% stability")


if __name__ == "__main__":
    main()
