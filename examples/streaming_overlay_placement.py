#!/usr/bin/env python3
"""Operator placement on top of network coordinates (the motivating application).

The paper's authors built coordinates for a stream-based overlay where a
coordinate update can trigger operator migrations -- heavyweight work that
should only happen when the network genuinely changed.  This example
quantifies that cost:

1. build a coordinate system over a synthetic network (replayed trace);
2. register a handful of streaming operators, each connecting producers and
   consumers in different regions;
3. every time a node's *application-level* coordinate changes, update the
   placement index and re-evaluate the affected operators, counting
   re-evaluations and migrations;
4. compare raw Vivaldi coordinates against the stabilised (MP + ENERGY)
   application coordinates.

The stabilised coordinates trigger a small fraction of the application-level
work while keeping placement quality (predicted producer/consumer latency)
essentially the same.

Run it with::

    python examples/streaming_overlay_placement.py
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.config import NodeConfig
from repro.core.coordinate import Coordinate
from repro.latency import PlanetLabDataset
from repro.netsim import replay_trace
from repro.overlay import CoordinateIndex, OperatorPlacement


def build_operators(dataset: PlanetLabDataset) -> List[Tuple[str, List[str]]]:
    """Three operators, each joining producers/consumers from two regions."""
    topology = dataset.topology
    regions = topology.regions()
    operators: List[Tuple[str, List[str]]] = []
    for i in range(3):
        producers = topology.hosts_in_region(regions[i % len(regions)])[:2]
        consumers = topology.hosts_in_region(regions[(i + 1) % len(regions)])[:2]
        operators.append((f"operator{i}", [*producers, *consumers]))
    return operators


def run_configuration(preset: str, dataset: PlanetLabDataset, trace) -> Dict[str, float]:
    """Replay the trace, driving placement from application-coordinate updates."""
    index = CoordinateIndex()
    placement = OperatorPlacement(index, migration_hysteresis_ms=5.0)
    operators = build_operators(dataset)

    last_app_coordinate: Dict[str, Coordinate] = {}
    operators_registered = False
    app_updates = 0

    def on_record(time_s: float, node) -> None:
        nonlocal operators_registered, app_updates
        current = node.application_coordinate
        previous = last_app_coordinate.get(node.node_id)
        if previous is not None and previous.euclidean_distance(current) == 0.0:
            return  # the application's view did not change: no work triggered
        last_app_coordinate[node.node_id] = current
        index.update(node.node_id, current)
        app_updates += 1

        if not operators_registered:
            # Register the operators once every endpoint has a coordinate.
            needed = {endpoint for _, endpoints in operators for endpoint in endpoints}
            if needed.issubset(set(index.node_ids())):
                for operator_id, endpoints in operators:
                    placement.register_operator(operator_id, endpoints)
                    placement.evaluate(operator_id)
                operators_registered = True
            return
        # A coordinate changed: the overlay re-evaluates placements.
        placement.evaluate_all()

    replay_trace(trace, NodeConfig.preset(preset), on_record=on_record)

    decisions = placement.evaluate_all() if operators_registered else []
    mean_cost = (
        sum(d.predicted_cost_ms for d in decisions) / len(decisions) if decisions else float("nan")
    )
    return {
        "application coordinate updates": float(app_updates),
        "placement evaluations": float(placement.evaluations),
        "operator migrations": float(placement.migrations),
        "mean predicted operator cost (ms)": mean_cost,
    }


def main() -> None:
    dataset = PlanetLabDataset.generate(nodes=24, seed=7)
    trace = dataset.generate_trace(duration_s=1200.0, ping_interval_s=2.0)
    print(f"replaying {len(trace)} observations over {trace.duration_s:.0f}s for two configurations\n")

    results = {}
    for label, preset in (("raw Vivaldi", "raw"), ("MP filter + ENERGY", "mp_energy")):
        metrics = run_configuration(preset, dataset, trace)
        results[label] = metrics
        print(f"{label}:")
        for key, value in metrics.items():
            print(f"  {key:<36} {value:12.1f}")
        print()

    raw_work = results["raw Vivaldi"]["placement evaluations"]
    stable_work = results["MP filter + ENERGY"]["placement evaluations"]
    if raw_work > 0:
        print(
            f"The stabilised configuration performs {stable_work / raw_work * 100:.1f}% of the "
            "placement work of raw Vivaldi while placing operators equally well."
        )


if __name__ == "__main__":
    main()
