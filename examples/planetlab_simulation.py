#!/usr/bin/env python3
"""Full protocol simulation: the paper's Section VI "PlanetLab" experiment.

Runs the complete distributed system -- gossip neighbor discovery,
round-robin sampling every five seconds, lossy message delivery -- for four
configurations sharing the same network universe:

* raw Vivaldi (no filter, application tracks system),
* ENERGY updates over unfiltered Vivaldi,
* the MP filter with continuous application updates,
* the deployed configuration: MP filter + ENERGY (window 32, tau 8).

It then prints the per-node error/instability summaries and the headline
improvements that correspond to the paper's Figure 13.

Run it with::

    python examples/planetlab_simulation.py [--nodes 30] [--minutes 60]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.config import NodeConfig
from repro.latency import PlanetLabDataset
from repro.netsim import SimulationConfig, run_simulation

CONFIGURATIONS = {
    "Raw No Filter": "raw",
    "Energy+No Filter": "raw_energy",
    "Raw MP Filter": "mp",
    "Energy+MP Filter": "mp_energy",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=30, help="number of simulated hosts")
    parser.add_argument("--minutes", type=float, default=60.0, help="simulated duration")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    duration_s = args.minutes * 60.0
    dataset = PlanetLabDataset.generate(args.nodes, seed=args.seed)
    print(
        f"simulating {args.nodes} hosts for {args.minutes:.0f} simulated minutes "
        "(4 configurations over one shared network universe)\n"
    )

    results = {}
    for label, preset in CONFIGURATIONS.items():
        config = SimulationConfig(
            nodes=args.nodes,
            duration_s=duration_s,
            node_config=NodeConfig.preset(preset),
            seed=args.seed,
        )
        result = run_simulation(config, dataset=dataset)
        results[label] = result
        collector = result.collector
        p95 = list(collector.per_node_error_percentile(95.0, level="application").values())
        instability = list(collector.per_node_instability(level="application").values())
        print(
            f"{label:<20} samples={result.samples_completed:6d}  "
            f"median p95 rel. error={np.median(p95):6.3f}  "
            f"nodes with p95 error > 1: {np.mean([v > 1 for v in p95]) * 100:4.0f}%  "
            f"median node instability={np.median(instability):8.4f} ms/s"
        )

    def _median_p95(label: str) -> float:
        collector = results[label].collector
        return float(
            np.median(list(collector.per_node_error_percentile(95.0, level="application").values()))
        )

    def _median_instability(label: str) -> float:
        collector = results[label].collector
        return float(
            np.median(list(collector.per_node_instability(level="application").values()))
        )

    base_err, best_err = _median_p95("Raw No Filter"), _median_p95("Energy+MP Filter")
    base_inst, best_inst = (
        _median_instability("Raw No Filter"),
        _median_instability("Energy+MP Filter"),
    )
    print(
        f"\nheadline improvements (Energy+MP vs raw Vivaldi): "
        f"{(1 - best_err / base_err) * 100:.0f}% accuracy, "
        f"{(1 - best_inst / base_inst) * 100:.0f}% stability "
        "(paper: 54% and 96%)"
    )


if __name__ == "__main__":
    main()
