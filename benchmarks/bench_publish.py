"""Publish-latency benchmark: delta generations vs full rebuilds by churn.

The paper's coordinates are stable -- most nodes barely move between
update windows -- so a live store should not pay a full generation
rebuild (mean seconds at 50k nodes, see ``BENCH_server.json``) for an
epoch that changed a fraction of the rows.  This benchmark drives the
same seeded epoch sequence into two :class:`ShardedCoordinateStore`\\ s,
one via :meth:`publish_delta` and one via :meth:`publish_epoch`, across
index kinds and churn fractions, and records:

* median publish seconds per path (steady-state rollover; means and
  maxima expose periodic overlay compactions) and their ratio
  (``speedup``) -- the
  headline: delta publish >=10x faster than the full rebuild at 50k
  nodes and <=5% churn for the ``vptree`` serving default
  (hard-enforced on full runs).  All index kinds are measured and
  reported, but only vptree is gated: dense and grid full rebuilds are
  already near-free array adoptions, so their ratios say nothing about
  the rollover cost the delta path exists to remove;
* equivalence booleans -- after every epoch the delta-built generation
  must be byte-identical to the full rebuild (coordinates, sampled
  query payloads including tie order) and the deterministic health
  sections must match at the end of each cell.  Any divergence fails
  the run outright, full or smoke.

The smoke artifact is baselined under ``benchmarks/baselines/`` and
gated by ``check_regression.py``: a >30% speedup regression or any
delta/full divergence fails CI.

Run directly::

    PYTHONPATH=src python benchmarks/bench_publish.py          # full (50k nodes)
    PYTHONPATH=src python benchmarks/bench_publish.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.server.load import synthetic_arrays
from repro.server.sharding import HEALTH_SECTIONS, ShardedCoordinateStore
from repro.service.planner import Query
from repro.service.publish import EpochDelta

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_publish.json"

FULL_NODES = 50_000
SMOKE_NODES = 2_000
INDEX_KINDS = ("vptree", "grid", "dense")
CHURN_FRACTIONS = (0.005, 0.05, 0.2)
SHARDS = 2
#: The full-run win condition: delta >= this many times faster than the
#: full rebuild at every churn fraction <= LOW_CHURN, for the gated
#: (serving-default) index kind.
SPEEDUP_FLOOR = 10.0
LOW_CHURN = 0.05
GATED_INDEX_KIND = "vptree"

DETERMINISTIC_HEALTH = tuple(s for s in HEALTH_SECTIONS if s != "staleness")


def _sample_queries(node_ids: List[str]) -> List[Query]:
    return [
        Query.knn(node_ids[0], k=7),
        Query.knn(node_ids[len(node_ids) // 3], k=3),
        Query.range(node_ids[-1], 40.0),
        Query.nearest(node_ids[len(node_ids) // 2]),
        Query.pairwise(node_ids[1], node_ids[-2]),
    ]


def bench_cell(
    index_kind: str,
    churn: float,
    node_ids: List[str],
    components: np.ndarray,
    heights: np.ndarray,
    *,
    epochs: int,
) -> Dict[str, object]:
    """One (index kind, churn fraction) cell: timed epochs on both paths."""
    n = len(node_ids)
    changed_count = max(1, int(round(n * churn)))
    delta_store = ShardedCoordinateStore(SHARDS, index_kind=index_kind, history=4)
    full_store = ShardedCoordinateStore(SHARDS, index_kind=index_kind, history=4)
    delta_store.publish_epoch(node_ids, components.copy(), heights.copy(), source="e0")
    full_store.publish_epoch(node_ids, components.copy(), heights.copy(), source="e0")

    rng = np.random.default_rng(101)
    work_components = components.copy()
    work_heights = heights.copy()
    queries = _sample_queries(node_ids)
    delta_times: List[float] = []
    full_times: List[float] = []
    arrays_identical = True
    queries_identical = True
    for epoch in range(1, epochs + 1):
        rows = np.sort(rng.choice(n, size=changed_count, replace=False))
        work_components[rows] += rng.normal(scale=2.0, size=(changed_count, components.shape[1]))
        work_heights[rows] = np.abs(
            work_heights[rows] + rng.normal(scale=0.2, size=changed_count)
        )
        delta = EpochDelta(
            [node_ids[row] for row in rows],
            work_components[rows].copy(),
            work_heights[rows].copy(),
            source=f"e{epoch}",
            epoch=epoch,
        )
        started = time.perf_counter()
        delta_generation = delta_store.publish_delta(delta)
        delta_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        full_generation = full_store.publish_epoch(
            node_ids, work_components.copy(), work_heights.copy(), source=f"e{epoch}"
        )
        full_times.append(time.perf_counter() - started)

        d_ids, d_comps, d_hts = delta_generation.snapshot.arrays()
        f_ids, f_comps, f_hts = full_generation.snapshot.arrays()
        if not (
            d_ids == f_ids
            and np.asarray(d_comps).tobytes() == np.asarray(f_comps).tobytes()
            and np.asarray(d_hts).tobytes() == np.asarray(f_hts).tobytes()
        ):
            arrays_identical = False
        for query in queries:
            d_payload, d_version, _ = delta_store.serve(query)
            f_payload, f_version, _ = full_store.serve(query)
            if d_payload != f_payload or d_version != f_version:
                queries_identical = False
    health_identical = delta_store.health(DETERMINISTIC_HEALTH) == full_store.health(
        DETERMINISTIC_HEALTH
    )
    median_delta_s = float(np.median(delta_times))
    median_full_s = float(np.median(full_times))
    return {
        "index_kind": index_kind,
        "churn": churn,
        "changed_rows": changed_count,
        "epochs": epochs,
        # The headline ratio uses medians: the steady-state rollover cost
        # the delta path exists to shrink.  Periodic overlay compactions
        # (a full rebuild inside one delta publish) stay visible through
        # the mean and max.
        "median_delta_publish_s": round(median_delta_s, 6),
        "median_full_publish_s": round(median_full_s, 6),
        "mean_delta_publish_s": round(float(np.mean(delta_times)), 6),
        "mean_full_publish_s": round(float(np.mean(full_times)), 6),
        "max_delta_publish_s": round(float(np.max(delta_times)), 6),
        "speedup": round(median_full_s / median_delta_s, 3) if median_delta_s > 0 else None,
        "arrays_identical": arrays_identical,
        "queries_identical": queries_identical,
        "health_identical": health_identical,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small universe for CI"
    )
    parser.add_argument(
        "--out", type=Path, default=ARTIFACT, help="artifact path (BENCH_publish.json)"
    )
    args = parser.parse_args(argv)

    nodes = SMOKE_NODES if args.smoke else FULL_NODES
    epochs = 4 if args.smoke else 5
    print(f"building {nodes}-node universe...", flush=True)
    node_ids, components, heights = synthetic_arrays(nodes)

    artifact: Dict[str, object] = {
        "benchmark": "publish_delta",
        "smoke": args.smoke,
        "host_cpu_count": os.cpu_count(),
        "nodes": nodes,
        "shards": SHARDS,
        "epochs": epochs,
        "speedup_floor": SPEEDUP_FLOOR,
        "low_churn": LOW_CHURN,
        "cells": [],
    }
    for index_kind in INDEX_KINDS:
        for churn in CHURN_FRACTIONS:
            print(
                f"{index_kind} at {churn:.1%} churn "
                f"({max(1, int(round(nodes * churn)))} rows/epoch)...",
                flush=True,
            )
            cell = bench_cell(
                index_kind, churn, node_ids, components, heights, epochs=epochs
            )
            artifact["cells"].append(cell)  # type: ignore[union-attr]
            print(
                f"  delta {cell['median_delta_publish_s'] * 1e3:>9.2f} ms  "
                f"full {cell['median_full_publish_s'] * 1e3:>9.2f} ms  "
                f"(max delta {cell['max_delta_publish_s'] * 1e3:>9.2f} ms)  "
                f"speedup {cell['speedup']:>8.2f}x  "
                f"identical {cell['arrays_identical'] and cell['queries_identical'] and cell['health_identical']}"
            )

    cells = artifact["cells"]
    low_churn_speedups = [
        cell["speedup"]
        for cell in cells
        if cell["churn"] <= LOW_CHURN and cell["index_kind"] == GATED_INDEX_KIND
    ]
    artifact["win"] = {
        "index_kind": GATED_INDEX_KIND,
        "low_churn_speedup_min": min(low_churn_speedups),
        "threshold": SPEEDUP_FLOOR,
        "enforced": not args.smoke,
    }
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"artifact written to {args.out}")

    diverged = [
        f"{cell['index_kind']}@{cell['churn']}"
        for cell in cells
        if not (
            cell["arrays_identical"]
            and cell["queries_identical"]
            and cell["health_identical"]
        )
    ]
    if diverged:
        print(
            f"error: delta publish diverged from full rebuild: {diverged}",
            file=sys.stderr,
        )
        return 1
    floor_min = artifact["win"]["low_churn_speedup_min"]
    if not args.smoke and floor_min < SPEEDUP_FLOOR:
        print(
            f"error: {GATED_INDEX_KIND} delta speedup at <= {LOW_CHURN:.0%} churn "
            f"is {floor_min}x, below the {SPEEDUP_FLOOR}x win condition at "
            f"{nodes} nodes",
            file=sys.stderr,
        )
        return 1
    print(
        f"{GATED_INDEX_KIND} delta publish at <= {LOW_CHURN:.0%} churn: "
        f">= {floor_min}x faster than full rebuild at {nodes} nodes "
        f"({'enforced' if not args.smoke else 'reported; enforced on full runs'})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
