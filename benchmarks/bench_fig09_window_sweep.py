"""Benchmark: regenerate Figure 9 (window-size sweep).

Paper claim reproduced: larger change-detection windows reduce the
application update frequency (and do not hurt accuracy) over the 2^2-2^8
range the paper explores.
"""

from __future__ import annotations

from repro.analysis.experiments import fig09_window_sweep


def test_fig09_window_sweep(run_once):
    result = run_once(
        fig09_window_sweep.run,
        nodes=14,
        duration_s=700.0,
        seed=0,
        window_sizes=(4, 16, 64),
    )
    energy_updates = [row["updates_per_node_per_s"] for row in result.energy_rows]
    assert energy_updates[-1] <= energy_updates[0]
    energy_error = [row["median_relative_error"] for row in result.energy_rows]
    assert energy_error[-1] <= energy_error[0] * 2.0 + 0.05
    print()
    print(fig09_window_sweep.format_report(result))
