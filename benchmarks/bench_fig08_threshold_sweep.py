"""Benchmark: regenerate Figure 8 (threshold sweep for ENERGY and RELATIVE).

Paper claim reproduced: instability declines as the update threshold grows,
while accuracy stays roughly flat over the conservative threshold range.
"""

from __future__ import annotations

from repro.analysis.experiments import fig08_threshold_sweep


def test_fig08_threshold_sweep(run_once):
    result = run_once(
        fig08_threshold_sweep.run,
        nodes=14,
        duration_s=700.0,
        seed=0,
        window_size=16,
        energy_thresholds=(1.0, 4.0, 16.0, 64.0, 256.0),
        relative_thresholds=(0.1, 0.3, 0.5, 0.7, 0.9),
    )
    assert result.energy_rows[-1]["instability"] <= result.energy_rows[0]["instability"]
    assert result.relative_rows[-1]["instability"] <= result.relative_rows[0]["instability"]
    # Accuracy at the paper's chosen operating points stays close to the
    # most permissive setting.
    assert result.energy_rows[2]["median_relative_error"] <= (
        result.energy_rows[0]["median_relative_error"] * 2.0 + 0.05
    )
    print()
    print(fig08_threshold_sweep.format_report(result))
