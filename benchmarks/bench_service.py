"""Query-service benchmark: linear scan versus spatial indexes at scale.

Builds synthetic clustered coordinate snapshots at 1k / 10k / 100k nodes,
serves identical k-nearest query streams through the linear oracle, the
vp-tree and the grid index, and records queries/sec plus exact p50/p99
per-query latency (the ``StreamingPercentile`` capacity is sized above the
query count, so the reported tails are exact, not reservoir estimates)
into ``BENCH_service.json`` at the repo root.  A second section reports
end-to-end serving throughput -- the batching planner with its
snapshot-versioned cache on the vp-tree index under the ``mixed``
workload.

Every spatial result is checked for equality against the linear oracle on
the shared query prefix; the artifact records the check.  The acceptance
bar is a >=10x queries/sec advantage for the vp-tree over the linear scan
at the largest size.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py          # full (1k/10k/100k)
    PYTHONPATH=src python benchmarks/bench_service.py --smoke  # CI-sized

``--smoke`` shrinks the sizes and query counts so the script finishes in
seconds; the artifact is tagged ``"smoke": true`` and the 10x bar is
reported but not enforced.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.core.coordinate import Coordinate
from repro.overlay.knn import CoordinateIndex
from repro.service.index import build_index
from repro.service.planner import QueryPlanner
from repro.service.snapshot import SnapshotStore
from repro.service.workload import generate_queries, run_workload
from repro.stats.percentile import StreamingPercentile

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_service.json"

#: Full-run sizes and per-kind query counts (linear is too slow at 100k to
#: serve as many queries as the sub-linear indexes; qps normalises).
FULL_SIZES = (1_000, 10_000, 100_000)
SMOKE_SIZES = (1_000, 5_000)
K = 3


def synth_coordinates(n: int, *, seed: int = 7, clusters: int = 12) -> Dict[str, Coordinate]:
    """A clustered 3-D coordinate universe, like a multi-region deployment."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-300.0, 300.0, size=(clusters, 3))
    assignments = rng.integers(0, clusters, size=n)
    points = centers[assignments] + rng.normal(scale=25.0, size=(n, 3))
    return {
        f"node{i:06d}": Coordinate(points[i].tolist()) for i in range(n)
    }


def query_points(coords: Dict[str, Coordinate], count: int, *, seed: int = 11) -> List[Coordinate]:
    """Query targets drawn from the same distribution as the nodes."""
    rng = np.random.default_rng(seed)
    keys = list(coords)
    picked = rng.integers(0, len(keys), size=count)
    jitter = rng.normal(scale=5.0, size=(count, 3))
    return [
        Coordinate(
            [c + j for c, j in zip(coords[keys[int(i)]].components, row)]
        )
        for i, row in zip(picked, jitter)
    ]


def bench_index(index: CoordinateIndex, targets: List[Coordinate]) -> Dict[str, float]:
    """Serve k-NN queries one at a time; exact latency percentiles."""
    latency = StreamingPercentile(capacity=max(len(targets), 1))
    results = []
    started = time.perf_counter()
    for target in targets:
        t0 = time.perf_counter()
        results.append(index.nearest(target, K))
        latency.add((time.perf_counter() - t0) * 1e6)
    elapsed = time.perf_counter() - started
    assert latency.is_exact
    return {
        "queries": len(targets),
        "elapsed_s": round(elapsed, 4),
        "qps": round(len(targets) / elapsed, 1) if elapsed > 0 else float("inf"),
        "p50_us": round(latency.percentile(50.0), 1),
        "p99_us": round(latency.percentile(99.0), 1),
        "results": results,  # stripped before serialisation
    }


def bench_size(nodes: int, *, smoke: bool) -> Dict[str, object]:
    coords = synth_coordinates(nodes)
    # Enough queries for stable numbers, few enough that the linear scan
    # at 100k nodes stays tractable.
    linear_queries = 100 if nodes <= 10_000 else 30
    fast_queries = 500 if not smoke else 200
    if smoke:
        linear_queries = min(linear_queries, 50)
    targets = query_points(coords, max(linear_queries, fast_queries))

    report: Dict[str, object] = {"nodes": nodes, "kinds": {}}
    kinds_report: Dict[str, Dict[str, object]] = report["kinds"]  # type: ignore[assignment]

    linear = CoordinateIndex()
    linear.update_many(coords)
    linear_bench = bench_index(linear, targets[:linear_queries])
    linear_results = linear_bench.pop("results")
    kinds_report["linear"] = linear_bench

    for kind in ("vptree", "grid"):
        index = build_index(kind)
        index.update_many(coords)
        build_start = time.perf_counter()
        index.nearest(targets[0], 1)  # force the lazy build
        build_s = time.perf_counter() - build_start
        bench = bench_index(index, targets[:fast_queries])
        results = bench.pop("results")
        identical = results[:linear_queries] == linear_results
        bench["build_s"] = round(build_s, 3)
        bench["identical_to_linear"] = identical
        bench["speedup_vs_linear"] = round(bench["qps"] / linear_bench["qps"], 2)
        kinds_report[kind] = bench
    return report


def bench_serving(nodes: int, *, smoke: bool) -> Dict[str, object]:
    """End-to-end planner throughput: batching + cache on the vp-tree."""
    coords = synth_coordinates(nodes)
    store = SnapshotStore.from_coordinates(coords, index_kind="vptree", source="bench")
    store.index_for()  # pay the build before timing the serving path
    count = 2_000 if smoke else 20_000
    queries = generate_queries(list(coords), count, mix="mixed", seed=3, k=K)
    planner = QueryPlanner(store)
    report = run_workload(planner, queries, batch_size=128)
    stats = dict(report.stats)
    return {
        "nodes": nodes,
        "mix": "mixed",
        "queries": report.query_count,
        "elapsed_s": round(report.elapsed_s, 3),
        "qps": round(report.queries_per_s, 1),
        "cache_hit_rate": round(report.cache_hit_rate, 4),
        "batches": stats["batches_flushed"],
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes / query counts for CI; 10x bar reported, not enforced",
    )
    parser.add_argument(
        "--out", type=Path, default=ARTIFACT, help="artifact path (BENCH_service.json)"
    )
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES
    artifact: Dict[str, object] = {
        "benchmark": "service_query_scaling",
        "smoke": args.smoke,
        "k": K,
        "host_cpu_count": os.cpu_count(),
        "sizes": [],
    }
    for nodes in sizes:
        print(f"benchmarking {nodes} nodes...", flush=True)
        entry = bench_size(nodes, smoke=args.smoke)
        artifact["sizes"].append(entry)  # type: ignore[union-attr]
        for kind, numbers in entry["kinds"].items():  # type: ignore[union-attr]
            extras = ""
            if kind != "linear":
                extras = (
                    f"  build {numbers['build_s']}s  "
                    f"speedup {numbers['speedup_vs_linear']}x  "
                    f"identical {numbers['identical_to_linear']}"
                )
            print(
                f"  {kind:<7} {numbers['qps']:>10.1f} q/s  "
                f"p99 {numbers['p99_us']:>8.1f} us{extras}"
            )

    serving_nodes = sizes[-1]
    print(f"serving benchmark (planner + cache, {serving_nodes} nodes)...", flush=True)
    artifact["serving"] = bench_serving(serving_nodes, smoke=args.smoke)
    print(
        f"  planner {artifact['serving']['qps']:>10.1f} q/s  "
        f"cache hit rate {artifact['serving']['cache_hit_rate']:.1%}"
    )

    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"artifact written to {args.out}")

    largest = artifact["sizes"][-1]  # type: ignore[index]
    checks = [
        kinds["identical_to_linear"]
        for size in artifact["sizes"]  # type: ignore[union-attr]
        for name, kinds in size["kinds"].items()
        if name != "linear"
    ]
    if not all(checks):
        print("error: a spatial index diverged from the linear oracle", file=sys.stderr)
        return 1
    speedup = largest["kinds"]["vptree"]["speedup_vs_linear"]
    bar = f"vptree speedup at {largest['nodes']} nodes: {speedup}x (bar: >=10x)"
    if args.smoke:
        print(bar + " [smoke: not enforced]")
        return 0
    print(bar)
    if speedup < 10.0:
        print("error: vp-tree did not clear the 10x bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
