"""Shared helpers for the benchmark suite.

Every paper table and figure has a benchmark module that regenerates it.
The experiments are deterministic end-to-end simulations, not micro-kernels,
so each one is run exactly once per benchmark session (``rounds=1``): the
timing then reports the cost of regenerating that figure, and the assertions
check the figure's qualitative claim.  Micro-benchmarks of the hot paths
(``bench_micro.py``) use pytest-benchmark's normal calibration instead.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
