"""Ablation: confidence building on a wide-area network.

The paper reports that on the wide area the confidence-building margin has
only a small effect (8.8% on median relative error, 2.3% on stability) --
eliminating large spurious observations matters far more than measuring
small latencies precisely.  This ablation verifies the margin neither helps
dramatically nor hurts when combined with the MP filter on WAN workloads.
"""

from __future__ import annotations

from repro.analysis.harness import ExperimentScale, build_trace
from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
from repro.core.vivaldi import VivaldiConfig
from repro.netsim.replay import replay_trace


def test_confidence_building_has_minor_effect_on_wan(run_once):
    scale = ExperimentScale(nodes=16, duration_s=900.0, ping_interval_s=2.0, seed=7)
    trace = build_trace(scale)

    def run_both():
        without_margin = replay_trace(
            trace, NodeConfig.preset("mp"), measurement_start_s=scale.measurement_start_s
        ).snapshot
        with_margin = replay_trace(
            trace,
            NodeConfig(
                vivaldi=VivaldiConfig(error_margin_ms=3.0),
                filter=FilterConfig("mp", {"history": 4, "percentile": 25.0}),
                heuristic=HeuristicConfig("always"),
            ),
            measurement_start_s=scale.measurement_start_s,
        ).snapshot
        return without_margin, with_margin

    without_margin, with_margin = run_once(run_both)
    base_error = without_margin.median_of_median_error
    margin_error = with_margin.median_of_median_error
    # The margin changes WAN accuracy by well under 50% in either direction.
    assert abs(margin_error - base_error) / base_error < 0.5
    print()
    print(f"MP filter, no margin : error {base_error:.3f}")
    print(f"MP filter, 3ms margin: error {margin_error:.3f}")
