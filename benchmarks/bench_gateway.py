"""Gateway benchmark: HTTP-over-TCP overhead and multi-tenant serving.

Two legs:

1. **Overhead** -- the same store construction is served by the TCP
   daemon and by the HTTP gateway; for each query mix the harness drives
   the identical query stream over both transports (same concurrency,
   same connection count, best-of-three legs each) and reports the
   gateway's queries/sec relative to the daemon's
   (``http_over_tcp_qps_<mix>``).  Before timing anything it replays an
   aligned-correlation-id stream through both transports and asserts the
   gateway's response bodies are byte-identical to the TCP frame bodies
   (``bodies_identical_<mix>``) -- the tentpole property, gated outright.
2. **Multi-tenant** -- one gateway serves four tenants with distinct
   synthetic universes; four closed-loop mixed workloads run
   concurrently, one per tenant, and each tenant's response checksum
   must equal its own single-store linear oracle
   (``oracle_identical_<tenant>``).  Per-tenant throughput and p99 are
   reported (not gated: four concurrent loops on a small CI host flap),
   along with the min-over-max fairness ratio.

Ratios compare two transports measured on the same machine moments
apart, so they are stable across the CI runner lottery; the committed
smoke baselines hold them at deliberately conservative values (see
benchmarks/README.md).  Emits ``BENCH_gateway.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_gateway.py          # full
    PYTHONPATH=src python benchmarks/bench_gateway.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.gateway.app import GatewayServer
from repro.gateway.client import GatewayClient
from repro.gateway.config import parse_gateway_config
from repro.gateway.tenants import build_store
from repro.server.client import AsyncCoordinateClient
from repro.server.daemon import CoordinateServer
from repro.server.load import run_load, run_load_async, synthetic_coordinates
from repro.server.protocol import encode_body, query_to_request
from repro.service.planner import QueryPlanner
from repro.service.snapshot import SnapshotStore
from repro.service.workload import generate_queries, run_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_gateway.json"

SHARDS = 2
SEED = 3
#: Query mixes timed in the overhead leg (every pure kind plus the blend).
MIXES = ("knn", "nearest", "pairwise-latency", "centroid", "mixed")
#: The multi-tenant leg: four tenants, distinct universes.
TENANT_SEEDS = {"acme": 3, "globex": 5, "initech": 7, "umbrella": 9}
API_KEYS = {name: f"{name}-bench-key-01" for name in TENANT_SEEDS}


def make_config(nodes: int) -> Any:
    return parse_gateway_config(
        {
            "tenants": [
                {
                    "name": "bench",
                    "api_key": "bench-key-000001",
                    "shards": SHARDS,
                    "quota": None,
                    "data": {"synthetic": nodes, "seed": SEED},
                }
            ]
        }
    )


def check_byte_identity(
    gateway_address, tcp_address, requests: List[Dict[str, Any]]
) -> int:
    """Replay ``requests`` over both transports with aligned ids.

    Returns the mismatch count (0 = the gateway body equals the TCP
    frame body for every request).  Both servers see the identical
    stream in lockstep, so even cache-hit flags line up.
    """

    async def scenario() -> int:
        gateway = GatewayClient(*gateway_address, "bench", "bench-key-000001")
        tcp = await AsyncCoordinateClient.connect(*tcp_address)
        mismatches = 0
        try:
            for position, request in enumerate(requests, start=1):
                tcp_response = await tcp.request(dict(request))
                _, body = await gateway.request_raw({**request, "id": position})
                if encode_body(tcp_response) != body:
                    mismatches += 1
        finally:
            await gateway.close()
            await tcp.close()
        return mismatches

    return asyncio.run(scenario())


def gateway_connect_factory(address, tenant: str, api_key: str):
    base_url = f"http://{address[0]}:{address[1]}"

    async def connect():
        return await GatewayClient.connect(base_url, tenant, api_key)

    return connect


def bench_overhead(nodes: int, query_count: int, identity_count: int) -> List[Dict[str, Any]]:
    config = make_config(nodes)
    spec = config.tenant("bench")
    gateway_server = GatewayServer(config)
    tcp_server = CoordinateServer(build_store(spec))
    node_ids = list(synthetic_coordinates(nodes, seed=SEED))
    cells: List[Dict[str, Any]] = []

    load_kwargs = dict(
        mode="closed", concurrency=4, connections=4, collect_health=False
    )
    with gateway_server.run_in_thread() as gw_handle:
        with tcp_server.run_in_thread() as tcp_handle:
            connect = gateway_connect_factory(
                gw_handle.address, "bench", "bench-key-000001"
            )
            for mix in MIXES:
                identity_queries = generate_queries(
                    node_ids, identity_count, mix=mix, seed=23
                )
                mismatches = check_byte_identity(
                    gw_handle.address,
                    tcp_handle.address,
                    [query_to_request(query, None) for query in identity_queries],
                )
                queries = generate_queries(node_ids, query_count, mix=mix, seed=17)
                # Warm lap each side, then best of three: filters
                # scheduler hiccups so the ratio compares steady states.
                run_load(tcp_handle.address, queries, **load_kwargs)
                tcp_qps = max(
                    run_load(
                        tcp_handle.address, queries, **load_kwargs
                    ).queries_per_s
                    for _ in range(3)
                )
                run_load(gw_handle.address, queries, connect=connect, **load_kwargs)
                http_qps = max(
                    run_load(
                        gw_handle.address, queries, connect=connect, **load_kwargs
                    ).queries_per_s
                    for _ in range(3)
                )
                cells.append(
                    {
                        "mix": mix,
                        "queries": query_count,
                        "tcp_qps": round(tcp_qps, 1),
                        "http_qps": round(http_qps, 1),
                        "http_over_tcp_qps": round(http_qps / tcp_qps, 3),
                        "identity_checked": len(identity_queries),
                        "identity_mismatches": mismatches,
                        "bodies_identical": mismatches == 0,
                    }
                )
                print(
                    f"  {mix:>16}: tcp {tcp_qps:>8.1f} q/s  http {http_qps:>8.1f}"
                    f"  ratio {http_qps / tcp_qps:.3f}"
                    f"  identical {mismatches == 0}"
                )
    return cells


def _p99(latencies) -> Optional[float]:
    values = sorted(value for value in latencies if value is not None)
    if not values:
        return None
    return round(values[min(len(values) - 1, int(0.99 * len(values)))], 4)


def bench_multi_tenant(nodes: int, query_count: int) -> Dict[str, Any]:
    config = parse_gateway_config(
        {
            "tenants": [
                {
                    "name": name,
                    "api_key": API_KEYS[name],
                    "shards": SHARDS,
                    "quota": None,
                    "data": {"synthetic": nodes, "seed": seed},
                }
                for name, seed in TENANT_SEEDS.items()
            ]
        }
    )
    server = GatewayServer(config)
    workloads = {}
    oracles = {}
    for name, seed in TENANT_SEEDS.items():
        coords = synthetic_coordinates(nodes, seed=seed)
        queries = generate_queries(
            list(coords), query_count, mix="mixed", seed=17 + seed
        )
        workloads[name] = queries
        oracle_store = SnapshotStore.from_coordinates(
            coords, index_kind="linear", source="bench"
        )
        oracles[name] = run_workload(
            QueryPlanner(oracle_store, clock=lambda: 0.0, timer=lambda: 0.0),
            queries,
            timer=lambda: 0.0,
        ).checksum

    async def drive(address):
        async def one(name):
            return name, await run_load_async(
                address,
                workloads[name],
                mode="closed",
                concurrency=2,
                connections=2,
                collect_health=False,
                connect=gateway_connect_factory(address, name, API_KEYS[name]),
            )

        return dict(await asyncio.gather(*(one(name) for name in TENANT_SEEDS)))

    with server.run_in_thread() as handle:
        reports = asyncio.run(drive(handle.address))

    per_tenant = []
    for name, report in reports.items():
        per_tenant.append(
            {
                "tenant": name,
                "queries": report.query_count,
                "errors": report.errors,
                "qps": round(report.queries_per_s, 1),
                "p99_ms": _p99(report.latencies_ms),
                "checksum_identical": report.checksum == oracles[name],
            }
        )
        print(
            f"  tenant {name:>9}: {report.queries_per_s:>8.1f} q/s"
            f"  p99 {per_tenant[-1]['p99_ms']} ms"
            f"  oracle identical {per_tenant[-1]['checksum_identical']}"
        )
    rates = [entry["qps"] for entry in per_tenant]
    return {
        "tenants": len(per_tenant),
        "queries_per_tenant": query_count,
        "per_tenant": per_tenant,
        "fairness_min_over_max": round(min(rates) / max(rates), 3) if rates else None,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small universe / query counts for CI"
    )
    parser.add_argument(
        "--out", type=Path, default=ARTIFACT, help="artifact path (BENCH_gateway.json)"
    )
    args = parser.parse_args(argv)

    nodes = 256 if args.smoke else 2_000
    query_count = 300 if args.smoke else 1_500
    identity_count = 60 if args.smoke else 200
    tenant_queries = 200 if args.smoke else 1_000

    artifact: Dict[str, Any] = {
        "benchmark": "gateway_http",
        "smoke": args.smoke,
        "host_cpu_count": os.cpu_count(),
        "nodes": nodes,
        "shards": SHARDS,
        "overhead": [],
        "multi_tenant": {},
    }
    print("overhead leg (TCP daemon vs HTTP gateway)...", flush=True)
    artifact["overhead"] = bench_overhead(nodes, query_count, identity_count)
    print("multi-tenant leg (4 tenants, concurrent mixed load)...", flush=True)
    artifact["multi_tenant"] = bench_multi_tenant(nodes, tenant_queries)

    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"artifact written to {args.out}")

    broken = [
        cell["mix"] for cell in artifact["overhead"] if not cell["bodies_identical"]
    ]
    broken += [
        entry["tenant"]
        for entry in artifact["multi_tenant"]["per_tenant"]
        if not entry["checksum_identical"]
    ]
    if broken:
        print(
            f"error: byte-identity / oracle checks failed for: {', '.join(broken)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
