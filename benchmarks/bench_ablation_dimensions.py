"""Ablation: coordinate dimensionality (and the height extension).

The paper uses a three-dimensional pure metric space.  This ablation
compares 2-D, 3-D, and 5-D embeddings (plus 2-D with the Dabek height
extension) on the same trace, confirming that 3-D is a reasonable choice:
2-D is noticeably worse, extra dimensions beyond 3 buy little.
"""

from __future__ import annotations

from repro.analysis.harness import ExperimentScale, build_trace
from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
from repro.core.vivaldi import VivaldiConfig
from repro.netsim.replay import replay_trace


def _config(dimensions: int, use_height: bool = False) -> NodeConfig:
    return NodeConfig(
        vivaldi=VivaldiConfig(dimensions=dimensions, use_height=use_height),
        filter=FilterConfig("mp", {"history": 4, "percentile": 25.0}),
        heuristic=HeuristicConfig("always"),
    )


def test_dimensionality(run_once):
    scale = ExperimentScale(nodes=16, duration_s=900.0, ping_interval_s=2.0, seed=9)
    trace = build_trace(scale)

    def run_all():
        errors = {}
        for label, config in (
            ("2-D", _config(2)),
            ("2-D + height", _config(2, use_height=True)),
            ("3-D (paper)", _config(3)),
            ("5-D", _config(5)),
        ):
            snapshot = replay_trace(
                trace, config, measurement_start_s=scale.measurement_start_s
            ).snapshot
            errors[label] = snapshot.median_of_median_error
        return errors

    errors = run_once(run_all)
    assert errors["3-D (paper)"] <= errors["2-D"] * 1.1
    assert errors["5-D"] <= errors["3-D (paper)"] * 1.2 + 0.02
    print()
    for label, value in errors.items():
        print(f"{label:14s} median relative error {value:.3f}")
