"""Vectorized-backend benchmark: scalar vs NumPy write path at scale.

Runs the synchronous-round batch simulation (:mod:`repro.netsim.batch`) on
the same network universe with both backends -- the scalar per-node oracle
and the vectorized array engine -- at 500 / 5,000 / 50,000 nodes, and
records ticks/sec, observations/sec and the speedup into
``BENCH_vectorized.json`` at the repo root.  Every size also checks that
the two backends produced *byte-identical* final coordinates, so the
speedup numbers are never bought with silent divergence.

The headline configuration is the ``mp`` preset (MP(4, 25) filter,
application coordinate tracking the system one -- the paper's "Raw MP
Filter" deployment); a secondary section exercises the deployed
``mp_energy`` configuration, whose per-observation cost is dominated by
the O(window^2) energy statistic on both backends.

The acceptance bar is a >=10x ticks/sec advantage for the vectorized
backend at 5,000 nodes.

Run directly::

    PYTHONPATH=src python benchmarks/bench_vectorized.py          # full (500/5k/50k)
    PYTHONPATH=src python benchmarks/bench_vectorized.py --smoke  # CI-sized

``--smoke`` shrinks the sizes and tick counts so the script finishes in
seconds; the artifact is tagged ``"smoke": true`` and the 10x bar is
reported but not enforced.  The CI regression gate
(``benchmarks/check_regression.py``) compares the smoke artifact's
*speedup ratios* (hardware-independent) against the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.config import NodeConfig
from repro.latency.planetlab import PlanetLabDataset
from repro.netsim.batch import BatchSimulationResult, run_batch_simulation
from repro.netsim.runner import SimulationConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_vectorized.json"

#: (nodes, ticks) per size.  Tick counts shrink with size so the scalar
#: oracle stays tractable; throughput is reported per tick, so fewer ticks
#: only widen the error bars, not bias the comparison.
FULL_SIZES: Tuple[Tuple[int, int], ...] = ((500, 40), (5_000, 20), (50_000, 6))
SMOKE_SIZES: Tuple[Tuple[int, int], ...] = ((200, 30), (1_000, 12))

#: Secondary section: the deployed configuration (energy heuristic).  The
#: two change-detection windows need 2 * 32 observations per node before
#: the energy statistic starts firing, so these runs are >= 80 ticks --
#: anything shorter would never exercise the O(window^2) hot loop.
ENERGY_FULL_SIZES: Tuple[Tuple[int, int], ...] = ((500, 120), (5_000, 80))
ENERGY_SMOKE_SIZES: Tuple[Tuple[int, int], ...] = ((200, 80),)

SAMPLING_INTERVAL_S = 5.0
ACCEPTANCE_NODES = 5_000
ACCEPTANCE_SPEEDUP = 10.0


def _run_backend(
    config: SimulationConfig, dataset: PlanetLabDataset, backend: str
) -> BatchSimulationResult:
    return run_batch_simulation(
        config, backend=backend, dataset=dataset, collect_profile=True
    )


def _coords_identical(a: BatchSimulationResult, b: BatchSimulationResult) -> Tuple[bool, float]:
    max_delta = 0.0
    identical = True
    for left, right in zip(a.final_system, b.final_system):
        for u, v in zip(left.components, right.components):
            delta = abs(u - v)
            if delta > max_delta:
                max_delta = delta
            if u != v:
                identical = False
    return identical, max_delta


def _throughput(result: BatchSimulationResult) -> Dict[str, object]:
    return {
        "run_s": round(result.run_s, 4),
        "setup_s": round(result.setup_s, 4),
        "ticks_per_s": round(result.ticks_per_s, 2),
        "observations_per_s": (
            round(result.samples_completed / result.run_s, 1)
            if result.run_s > 0
            else float("inf")
        ),
        "samples_completed": result.samples_completed,
    }


def bench_size(nodes: int, ticks: int, *, preset: str, seed: int = 0) -> Dict[str, object]:
    config = SimulationConfig(
        nodes=nodes,
        duration_s=ticks * SAMPLING_INTERVAL_S,
        node_config=NodeConfig.preset(preset),
        seed=seed,
    )
    # One shared universe: identical base RTTs, shifts and drift for both
    # backends, so the comparison is apples to apples.
    dataset = PlanetLabDataset.generate(nodes, seed=seed, parameters=config.dataset)
    vectorized = _run_backend(config, dataset, "vectorized")
    scalar = _run_backend(config, dataset, "scalar")
    identical, max_delta = _coords_identical(scalar, vectorized)
    speedup = (
        vectorized.ticks_per_s / scalar.ticks_per_s
        if scalar.ticks_per_s > 0
        else float("inf")
    )
    record = {
        "nodes": nodes,
        "ticks": ticks,
        "scalar": _throughput(scalar),
        "vectorized": _throughput(vectorized),
        "vectorized_phases": {
            key: value
            for key, value in vectorized.profile.items()
            if key.endswith("_s")
        },
        "speedup": round(speedup, 2),
        "coords_byte_identical": identical,
        "max_coord_delta_ms": max_delta,
    }
    print(
        f"  {preset:>9} {nodes:>6} nodes x {ticks:>3} ticks: "
        f"scalar {scalar.ticks_per_s:8.2f} t/s, vectorized "
        f"{vectorized.ticks_per_s:8.1f} t/s -> {speedup:7.1f}x "
        f"(identical={identical})"
    )
    return record


def run(smoke: bool, out_path: Path) -> int:
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    energy_sizes = ENERGY_SMOKE_SIZES if smoke else ENERGY_FULL_SIZES
    print(f"vectorized-backend benchmark ({'smoke' if smoke else 'full'} mode)")
    headline: List[Dict[str, object]] = [
        bench_size(nodes, ticks, preset="mp") for nodes, ticks in sizes
    ]
    print("  -- deployed configuration (mp_energy) --")
    energy: List[Dict[str, object]] = [
        bench_size(nodes, ticks, preset="mp_energy") for nodes, ticks in energy_sizes
    ]

    acceptance_at: Optional[Dict[str, object]] = None
    bar_nodes = ACCEPTANCE_NODES if not smoke else max(nodes for nodes, _ in sizes)
    for record in headline:
        if record["nodes"] == bar_nodes:
            acceptance_at = record
    assert acceptance_at is not None
    met = (
        float(acceptance_at["speedup"]) >= ACCEPTANCE_SPEEDUP
        and all(bool(r["coords_byte_identical"]) for r in headline + energy)
    )

    payload = {
        "benchmark": "vectorized_backend",
        "smoke": smoke,
        "sampling_interval_s": SAMPLING_INTERVAL_S,
        "host_cpu_count": os.cpu_count(),
        "sizes": headline,
        "preset": "mp",
        "energy_sizes": energy,
        "energy_preset": "mp_energy",
        "acceptance": {
            "bar": (
                f"vectorized >= {ACCEPTANCE_SPEEDUP:.0f}x scalar ticks/sec at "
                f"{bar_nodes} nodes, with byte-identical coordinates"
            ),
            "speedup": acceptance_at["speedup"],
            "met": met,
            "enforced": not smoke,
        },
    }
    out_path.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"written: {out_path}")
    if not smoke and not met:
        print("ACCEPTANCE FAILED", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--out", type=Path, default=ARTIFACT, help="artifact path")
    args = parser.parse_args(argv)
    return run(args.smoke, args.out)


if __name__ == "__main__":
    sys.exit(main())
