"""Ablation: related-work baselines (de Launois damping, GNP-style landmarks).

Two comparisons the paper makes in prose, reproduced quantitatively:

* de Launois et al. stabilise Vivaldi by asymptotically damping every
  update; the cost is that the system stops adapting when the network
  genuinely changes, whereas the MP filter keeps tracking.
* landmark embeddings (GNP) can reach good accuracy on a static matrix but
  are centralised and do not evolve -- shown here as an accuracy yardstick
  for our Vivaldi implementation on the same matrix.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.landmark import LandmarkEmbedding
from repro.baselines.launois import LaunoisConfig, LaunoisVivaldiNode
from repro.baselines.static_matrix import StaticMatrixExperiment
from repro.core.config import NodeConfig
from repro.core.coordinate import Coordinate
from repro.core.node import CoordinateNode
from repro.latency.matrix import LatencyMatrix
from repro.latency.topology import GeographicTopology


def test_launois_damping_goes_stale_after_route_change(run_once):
    def run_comparison():
        peer = Coordinate([50.0, 0.0, 0.0])
        damped = LaunoisVivaldiNode("damped", LaunoisConfig(decay_constant=20.0))
        filtered = CoordinateNode("mp", NodeConfig.preset("mp"))
        rng = np.random.default_rng(10)
        # Converge on a 60 ms link, then the route changes to 120 ms.
        for _ in range(400):
            sample = 60.0 * float(rng.lognormal(0.0, 0.05))
            damped.observe("peer", peer, 0.2, sample)
            filtered.observe("peer", peer, 0.2, sample)
        for _ in range(60):
            sample = 120.0 * float(rng.lognormal(0.0, 0.05))
            damped.observe("peer", peer, 0.2, sample)
            filtered.observe("peer", peer, 0.2, sample)
        damped_error = abs(damped.system_coordinate.euclidean_distance(peer) - 120.0)
        filtered_error = abs(filtered.system_coordinate.euclidean_distance(peer) - 120.0)
        return damped_error, filtered_error

    damped_error, filtered_error = run_once(run_comparison)
    assert filtered_error < damped_error
    print()
    print(f"after route change: MP-filtered Vivaldi error {filtered_error:.1f} ms, "
          f"Launois-damped error {damped_error:.1f} ms")


def test_landmark_embedding_accuracy_yardstick(run_once):
    matrix = LatencyMatrix.from_topology(GeographicTopology.generate(20, seed=11))

    def run_comparison():
        landmark = LandmarkEmbedding(matrix, landmark_count=8, seed=11)
        landmark.fit()
        landmark_error = landmark.evaluate()["median_relative_error"]
        vivaldi = StaticMatrixExperiment(matrix, NodeConfig.preset("raw"), seed=11)
        vivaldi_error = vivaldi.run(rounds=300).median_relative_error
        return landmark_error, vivaldi_error

    landmark_error, vivaldi_error = run_once(run_comparison)
    # Both embeddings should land in the same accuracy regime on a static matrix.
    assert vivaldi_error < 0.4
    assert landmark_error < 0.6
    print()
    print(f"static matrix: Vivaldi median error {vivaldi_error:.3f}, "
          f"GNP-style landmarks {landmark_error:.3f}")
