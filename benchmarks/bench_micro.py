"""Micro-benchmarks of the coordinate subsystem's hot paths.

These quantify the per-observation cost of the machinery the paper adds on
top of Vivaldi (the MP filter, the energy statistic, the full node update),
demonstrating the paper's claim that the enhancements are lightweight
enough for every node to run on every sample.

``__slots__`` on the per-observation classes (``CoordinateNode``, the
filters, the heuristics, ``ChangeDetectionWindows``, ``StabilityTracker``;
``VivaldiState`` and ``ObservationResult`` already used slotted
dataclasses) measurably tightened the hot path.  Reference numbers from one
machine (Linux, CPython 3.11, 20k observations via ``timeit``):

========================  ==============  =============
benchmark                 before slots    after slots
========================  ==============  =============
node.observe (mp_energy)  63.3 us/op      45.5 us/op
node.observe (raw)        49.1 us/op      36.7 us/op
mp_filter.update          1.27 us/op      1.31 us/op
========================  ==============  =============
"""

from __future__ import annotations

import numpy as np

from repro.core.config import NodeConfig
from repro.core.coordinate import Coordinate
from repro.core.energy import energy_distance
from repro.core.filters import MovingPercentileFilter
from repro.core.node import CoordinateNode
from repro.core.vivaldi import VivaldiConfig, VivaldiState, vivaldi_update
from repro.stats.ranksum import rank_sum_test


def test_vivaldi_update_throughput(benchmark):
    config = VivaldiConfig()
    state = VivaldiState(Coordinate([10.0, 5.0, 1.0]), 0.4)
    peer = Coordinate([50.0, 20.0, 5.0])

    def step():
        vivaldi_update(state, peer, 0.3, 72.0, config)

    benchmark(step)


def test_mp_filter_update_throughput(benchmark):
    mp = MovingPercentileFilter(history=4, percentile=25.0)
    samples = np.random.default_rng(0).lognormal(mean=4.0, sigma=0.3, size=1000)
    index = 0

    def step():
        nonlocal index
        mp.update(float(samples[index % len(samples)]))
        index += 1

    benchmark(step)


def test_energy_distance_window32(benchmark):
    rng = np.random.default_rng(1)
    a = [Coordinate(p.tolist()) for p in rng.normal(size=(32, 3))]
    b = [Coordinate(p.tolist()) for p in rng.normal(loc=1.0, size=(32, 3))]
    benchmark(energy_distance, a, b)


def test_rank_sum_window32(benchmark):
    rng = np.random.default_rng(2)
    a = rng.normal(size=32)
    b = rng.normal(loc=0.5, size=32)
    benchmark(rank_sum_test, a, b)


def test_full_node_observation_mp_energy(benchmark):
    """One complete observation through filter + Vivaldi + ENERGY heuristic."""
    node = CoordinateNode("n0", NodeConfig.preset("mp_energy"))
    rng = np.random.default_rng(3)
    peers = [Coordinate(p.tolist()) for p in rng.normal(loc=50.0, scale=10.0, size=(16, 3))]
    rtts = rng.lognormal(mean=4.0, sigma=0.3, size=1000)
    index = 0

    def step():
        nonlocal index
        node.observe(
            f"peer{index % 16}", peers[index % 16], 0.3, float(rtts[index % len(rtts)])
        )
        index += 1

    benchmark(step)


def test_full_node_observation_raw(benchmark):
    """Baseline per-observation cost without any of the paper's machinery."""
    node = CoordinateNode("n0", NodeConfig.preset("raw"))
    rng = np.random.default_rng(4)
    peers = [Coordinate(p.tolist()) for p in rng.normal(loc=50.0, scale=10.0, size=(16, 3))]
    rtts = rng.lognormal(mean=4.0, sigma=0.3, size=1000)
    index = 0

    def step():
        nonlocal index
        node.observe(
            f"peer{index % 16}", peers[index % 16], 0.3, float(rtts[index % len(rtts)])
        )
        index += 1

    benchmark(step)
