"""Serving-daemon benchmark: throughput and tail latency under shard scaling.

Builds a synthetic clustered coordinate universe, serves it through the
asyncio daemon at 1 / 2 / 4 shards, and drives the closed-loop load
harness over real TCP connections, recording queries/sec and *exact*
p50/p99 per-query-kind latency (the load harness sizes its reservoirs
above the query count) into ``BENCH_server.json`` at the repo root.

Correctness is asserted two ways on every configuration:

* the full response stream at every shard count is checksummed against
  the 1-shard stream (cross-shard scatter-gather identity);
* a query prefix is checksummed against the in-process single-store
  *linear oracle* (end-to-end wire identity) -- the prefix keeps the
  linear scan tractable at 50k nodes.

A second section measures streaming ingest: epochs published into the
daemon while a closed loop keeps querying, recording publish latency and
that serving never failed during rollover.

Scaling caveat: each query's shard legs execute sequentially on one
pool thread and the pure-Python index work is GIL-bound, so qps scaling
with shard count comes only from cross-request overlap and sits well
below the shard count on any host (the artifact records
``host_cpu_count``; this repo's 1-core build host measures < 1x -- what
sharding buys there is the shorter per-shard scan, i.e. tail latency).
The aspirational >=4x figure is therefore *reported*, never
hard-enforced; what the regression gate enforces are the identity
checks and the committed qps ratios -- the same treatment the
engine-scaling benchmark gives 1-core hosts.

Run directly::

    PYTHONPATH=src python benchmarks/bench_server.py          # full (50k nodes)
    PYTHONPATH=src python benchmarks/bench_server.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.server.daemon import CoordinateServer
from repro.server.load import run_load, synthetic_arrays
from repro.server.sharding import ShardedCoordinateStore
from repro.service.planner import QueryPlanner
from repro.service.snapshot import SnapshotStore
from repro.service.workload import generate_queries, payload_checksum, run_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_server.json"

SHARD_COUNTS = (1, 2, 4)
FULL_NODES = 50_000
SMOKE_NODES = 2_000
#: Oracle-verified prefix length (the linear scan at 50k nodes bounds it).
ORACLE_PREFIX = 120


def oracle_prefix_checksum(node_ids, components, heights, queries) -> str:
    store = SnapshotStore.from_arrays(
        node_ids, components.copy(), heights.copy(), index_kind="linear"
    )
    planner = QueryPlanner(store, clock=lambda: 0.0, timer=lambda: 0.0)
    report = run_workload(planner, queries, timer=lambda: 0.0)
    return report.checksum


def bench_shards(
    shards: int,
    node_ids,
    components,
    heights,
    queries,
    *,
    concurrency: int,
    connections: int,
    index_kind: str,
) -> Dict[str, object]:
    store = ShardedCoordinateStore(shards, index_kind=index_kind)
    store.publish_epoch(node_ids, components.copy(), heights.copy(), source="bench")
    server = CoordinateServer(store, admission_limit=8192)
    with server.run_in_thread() as handle:
        # One warm lap over a small prefix pays connection setup and any
        # lazy index work before the timed run.
        run_load(handle.address, queries[:64], mode="closed", concurrency=concurrency)
        report = run_load(
            handle.address,
            queries,
            mode="closed",
            concurrency=concurrency,
            connections=connections,
        )
    prefix_checksum = payload_checksum(
        [type("R", (), {"payload": r.get("payload")})() for r in report.responses[:ORACLE_PREFIX]]
    )
    return {
        "shards": shards,
        "queries": report.query_count,
        "errors": report.errors,
        "elapsed_s": round(report.elapsed_s, 4),
        "qps": round(report.queries_per_s, 1),
        "p50_ms": {kind: entry["p50_ms"] for kind, entry in report.kinds.items()},
        "p99_ms": {kind: entry["p99_ms"] for kind, entry in report.kinds.items()},
        "latency_exact": all(entry["latency_exact"] for entry in report.kinds.values()),
        "checksum": report.checksum,
        "prefix_checksum": prefix_checksum,
        # Mergeable latency histograms per query kind; the regression
        # gate's tail analyzer (repro.obs.regression) diffs these against
        # the committed baseline's.
        "telemetry": report.telemetry,
    }


def bench_ingest(
    nodes: int,
    *,
    epochs: int,
    index_kind: str,
    shards: int,
    query_count: int,
    corrupt_fraction: float = 0.0,
) -> Dict[str, object]:
    """Stream epochs into a live daemon while a closed loop queries it.

    ``corrupt_fraction`` > 0 zeroes that fraction of coordinate rows
    (a fixed seed-derived set, the same rows every epoch) before every
    publish after the first -- a fault-injection mode for exercising the
    accuracy gate: serving stays error-free, but the store's coordinate
    health degrades and the artifact's ``health`` section records it.
    """
    import threading

    node_ids, components, heights = synthetic_arrays(nodes)
    store = ShardedCoordinateStore(shards, index_kind=index_kind, history=epochs + 2)
    store.publish_epoch(node_ids, components.copy(), heights.copy(), source="e0")
    queries = generate_queries(node_ids, query_count, mix="mixed", seed=13)
    publish_times: List[float] = []
    corrupt_rows = None
    if corrupt_fraction > 0.0:
        rng = np.random.default_rng(99)
        count = max(1, int(round(nodes * corrupt_fraction)))
        corrupt_rows = rng.choice(nodes, size=count, replace=False)

    def ingest() -> None:
        for epoch in range(1, epochs):
            # Pure translations: distance-preserving, so the health
            # tracker's self-referenced relative error stays ~0 on a
            # clean run -- any degradation the gate sees is injected.
            shifted = components + epoch * 3.0
            shifted_heights = heights.copy()
            if corrupt_rows is not None:
                shifted[corrupt_rows] = 0.0
                shifted_heights[corrupt_rows] = 0.0
            started = time.perf_counter()
            store.publish_epoch(node_ids, shifted, shifted_heights, source=f"e{epoch}")
            publish_times.append(time.perf_counter() - started)

    server = CoordinateServer(store, admission_limit=8192)
    with server.run_in_thread() as handle:
        writer = threading.Thread(target=ingest)
        writer.start()
        report = run_load(handle.address, queries, mode="closed", concurrency=8)
        writer.join()
    return {
        "nodes": nodes,
        "shards": shards,
        "epochs": epochs,
        "corrupt_fraction": corrupt_fraction,
        "mean_publish_s": round(float(np.mean(publish_times)), 6) if publish_times else None,
        "max_publish_s": round(float(np.max(publish_times)), 6) if publish_times else None,
        "queries_during_ingest": report.query_count,
        "errors_during_ingest": report.errors,
        "qps_during_ingest": round(report.queries_per_s, 1),
        "versions_observed": len(report.versions),
        "serving_during_ingest_ok": report.errors == 0,
        "telemetry": report.telemetry,
        # Coordinate health over the publish stream: a pure function of
        # the (seeded) epochs, so it is byte-deterministic run to run --
        # what the accuracy gate diffs against the committed baseline.
        # The timer-based staleness section is deliberately excluded.
        "health": store.health(
            ["generation", "relative_error", "drift", "neighbor_churn"]
        ),
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small universe / query counts for CI",
    )
    parser.add_argument(
        "--out", type=Path, default=ARTIFACT, help="artifact path (BENCH_server.json)"
    )
    parser.add_argument(
        "--corrupt",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="fault injection: zero this fraction of coordinate rows before "
        "every ingest publish after the first (the accuracy gate must "
        "catch the degradation; 0 disables)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.corrupt < 1.0:
        print("error: --corrupt must be within [0, 1)", file=sys.stderr)
        return 2

    nodes = SMOKE_NODES if args.smoke else FULL_NODES
    query_count = 2_000 if args.smoke else 8_000
    concurrency = 16
    connections = 4
    index_kind = "vptree"

    print(f"building {nodes}-node universe...", flush=True)
    node_ids, components, heights = synthetic_arrays(nodes)
    queries = generate_queries(node_ids, query_count, mix="mixed", seed=29)
    print(
        f"linear-oracle prefix ({ORACLE_PREFIX} queries, single store)...", flush=True
    )
    oracle_checksum = oracle_prefix_checksum(
        node_ids, components, heights, queries[:ORACLE_PREFIX]
    )

    artifact: Dict[str, object] = {
        "benchmark": "server_load",
        "smoke": args.smoke,
        "host_cpu_count": os.cpu_count(),
        "nodes": nodes,
        "queries": query_count,
        "mix": "mixed",
        "index_kind": index_kind,
        "concurrency": concurrency,
        "connections": connections,
        "oracle_prefix": ORACLE_PREFIX,
        "shard_scaling": [],
    }
    base_qps = None
    base_checksum = None
    for shards in SHARD_COUNTS:
        print(f"serving at {shards} shard(s)...", flush=True)
        entry = bench_shards(
            shards,
            node_ids,
            components,
            heights,
            queries,
            concurrency=concurrency,
            connections=connections,
            index_kind=index_kind,
        )
        if base_qps is None:
            base_qps = entry["qps"]
            base_checksum = entry["checksum"]
        entry["qps_ratio_vs_1_shard"] = round(entry["qps"] / base_qps, 3)
        entry["identical_to_1_shard"] = entry["checksum"] == base_checksum
        entry["oracle_prefix_identical"] = entry["prefix_checksum"] == oracle_checksum
        artifact["shard_scaling"].append(entry)  # type: ignore[union-attr]
        print(
            f"  {shards} shard(s): {entry['qps']:>10.1f} q/s "
            f"({entry['qps_ratio_vs_1_shard']}x vs 1 shard)  "
            f"knn p99 {entry['p99_ms'].get('knn', float('nan')):.3f} ms  "
            f"identical {entry['identical_to_1_shard']}  "
            f"oracle {entry['oracle_prefix_identical']}"
        )

    print("streaming-ingest benchmark...", flush=True)
    artifact["ingest"] = bench_ingest(
        nodes,
        epochs=8 if args.smoke else 12,
        index_kind=index_kind,
        shards=2,
        query_count=max(query_count // 2, 500),
        corrupt_fraction=args.corrupt,
    )
    ingest = artifact["ingest"]
    print(
        f"  {ingest['epochs']} epochs at {nodes} nodes: publish mean "
        f"{ingest['mean_publish_s']}s max {ingest['max_publish_s']}s, "
        f"{ingest['qps_during_ingest']} q/s during ingest "
        f"({ingest['versions_observed']} version(s) observed, "
        f"errors {ingest['errors_during_ingest']})"
    )
    health = ingest["health"]
    print(
        "  ingest health: rel err median "
        f"{health['relative_error']['median']}, mean "
        f"{health['relative_error']['mean']}, p95 "
        f"{health['relative_error']['p95']}; drift mean velocity "
        f"{health['drift']['mean_velocity']}"
        + (f"  [corrupt {args.corrupt:.0%}]" if args.corrupt else "")
    )

    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"artifact written to {args.out}")

    checks = [
        entry["identical_to_1_shard"] and entry["oracle_prefix_identical"]
        for entry in artifact["shard_scaling"]  # type: ignore[union-attr]
    ] + [ingest["serving_during_ingest_ok"]]
    if not all(checks):
        print("error: a sharded configuration diverged from the oracle", file=sys.stderr)
        return 1
    last = artifact["shard_scaling"][-1]  # type: ignore[index]
    ratio = last["qps_ratio_vs_1_shard"]
    cores = os.cpu_count() or 1
    # Reported, never hard-enforced: each query's scatter executes its
    # shard legs sequentially on one pool thread, and the pure-Python
    # index legs are GIL-bound, so qps scaling comes only from cross-
    # request overlap and is bounded well below the shard count on any
    # host (the 1-core build host records < 1x; see README).  The gate's
    # committed qps ratios and the identity checks above are the
    # enforced surface; the aspirational 4x figure stays visible here.
    print(
        f"qps scaling 1 -> {last['shards']} shards at {nodes} nodes: {ratio}x "
        f"(aspirational bar: >=4x; host has {cores} core(s); "
        "enforced: identity checks + baselined ratios)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
