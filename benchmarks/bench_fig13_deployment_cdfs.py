"""Benchmark: regenerate Figure 13 (the live-deployment comparison).

Paper claims reproduced: far fewer nodes exceed a 95th-percentile relative
error of 1 with the MP filter than without; ENERGY pushes application-level
instability below the raw filter's minimum for most nodes; the combined
enhancements deliver large accuracy and stability improvements over raw
Vivaldi (paper: 54% and 96%).
"""

from __future__ import annotations

from repro.analysis.experiments import fig13_deployment_cdfs


def test_fig13_deployment_cdfs(run_once):
    result = run_once(fig13_deployment_cdfs.run, nodes=24, duration_s=2700.0, seed=0)
    assert (
        result.fraction_error_above_1["Raw MP Filter"]
        <= result.fraction_error_above_1["Raw No Filter"]
    )
    assert result.instability_improvement_percent > 70.0
    assert result.error_improvement_percent > 10.0
    assert result.energy_below_raw_min_fraction > 0.5
    print()
    print(fig13_deployment_cdfs.format_report(result))
