"""End-to-end array-native pipeline benchmark: sim -> snapshot -> queries.

Exercises the three seams this repo keeps in array land and records their
speedups into ``BENCH_pipeline.json`` at the repo root:

1. **Simulation** -- the full paper configuration (MP filter + RELATIVE
   heuristic + height-augmented coordinates) on the vectorized batch
   backend vs the scalar per-node oracle, with the byte-identical
   coordinate check.  This is the configuration the vectorized backend
   used to *reject*; the acceptance bar is >= 10x scalar ticks/sec at
   5,000 nodes.
2. **Snapshot ingest** -- publishing a whole population into a
   :class:`~repro.service.snapshot.SnapshotStore` through the zero-copy
   array path (``publish_epoch``) vs the object path (materialise
   per-node ``Coordinate`` objects, then ``from_coordinates``).
3. **Query serving** -- a 500-query same-version k-NN batch on the
   ``dense`` index: one batched planner flush vs per-query planner
   execution, with the results checked *identical* (floats, ordering,
   ties) to both the per-query path and the linear-scan oracle.  The
   acceptance bar is >= 5x at 50,000 nodes.

Run directly::

    PYTHONPATH=src python benchmarks/bench_pipeline.py          # full
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke  # CI-sized

``--smoke`` shrinks every stage so the script finishes in seconds; the
artifact is tagged ``"smoke": true`` and the acceptance bars are reported
but not enforced.  The CI regression gate compares the artifact's
hardware-independent speedup *ratios* against the committed baseline in
``benchmarks/baselines/BENCH_pipeline_smoke.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import NodeConfig
from repro.core.coordinate import Coordinate
from repro.core.vivaldi import VivaldiConfig
from repro.latency.planetlab import PlanetLabDataset
from repro.netsim.batch import BatchSimulationResult, run_batch_simulation
from repro.netsim.runner import SimulationConfig
from repro.service.planner import Query, QueryPlanner
from repro.service.snapshot import SnapshotStore
from repro.service.workload import payload_checksum

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_pipeline.json"

#: (nodes, ticks) for the simulation stage.  96+ ticks wherever the scalar
#: oracle can afford them so the RELATIVE windows (2 * 32 observations)
#: become ready and the locale-scaled trigger actually fires.
FULL_SIM_SIZES: Tuple[Tuple[int, int], ...] = ((500, 96), (5_000, 24))
SMOKE_SIM_SIZES: Tuple[Tuple[int, int], ...] = ((200, 80), (600, 12))

#: Node count for the ingest + query stages.
FULL_SERVICE_NODES = 50_000
SMOKE_SERVICE_NODES = 5_000

QUERY_BATCH = 500
QUERY_K = 5
INGEST_REPEATS = 5

SAMPLING_INTERVAL_S = 5.0
SIM_ACCEPTANCE_NODES = 5_000
SIM_ACCEPTANCE_SPEEDUP = 10.0
QUERY_ACCEPTANCE_SPEEDUP = 5.0


def paper_config() -> NodeConfig:
    """The headline paper pipeline: MP filter, RELATIVE updates, heights."""
    return NodeConfig.preset("mp_relative", vivaldi=VivaldiConfig(use_height=True))


# ----------------------------------------------------------------------
# Stage 1: simulation (RELATIVE + height, scalar vs vectorized)
# ----------------------------------------------------------------------
def _coords_identical(a: BatchSimulationResult, b: BatchSimulationResult) -> bool:
    for left, right in zip(a.final_system, b.final_system):
        if tuple(left.components) != tuple(right.components):
            return False
        if left.height != right.height:
            return False
    return True


def bench_simulation(nodes: int, ticks: int, *, seed: int = 0) -> Dict[str, object]:
    config = SimulationConfig(
        nodes=nodes,
        duration_s=ticks * SAMPLING_INTERVAL_S,
        node_config=paper_config(),
        seed=seed,
    )
    dataset = PlanetLabDataset.generate(nodes, seed=seed, parameters=config.dataset)
    vectorized = run_batch_simulation(config, backend="vectorized", dataset=dataset)
    scalar = run_batch_simulation(config, backend="scalar", dataset=dataset)
    identical = _coords_identical(scalar, vectorized)
    speedup = (
        vectorized.ticks_per_s / scalar.ticks_per_s
        if scalar.ticks_per_s > 0
        else float("inf")
    )
    print(
        f"  sim {nodes:>6} nodes x {ticks:>3} ticks: scalar "
        f"{scalar.ticks_per_s:8.2f} t/s, vectorized {vectorized.ticks_per_s:8.1f} t/s "
        f"-> {speedup:6.1f}x (identical={identical})"
    )
    return {
        "nodes": nodes,
        "ticks": ticks,
        "preset": "mp_relative + use_height",
        "scalar_ticks_per_s": round(scalar.ticks_per_s, 2),
        "vectorized_ticks_per_s": round(vectorized.ticks_per_s, 2),
        "speedup": round(speedup, 2),
        "coords_byte_identical": identical,
    }


# ----------------------------------------------------------------------
# Stage 2: snapshot ingest (zero-copy arrays vs per-node objects)
# ----------------------------------------------------------------------
def _synthetic_population(nodes: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    node_ids = [f"host{i:06d}" for i in range(nodes)]
    components = rng.normal(scale=60.0, size=(nodes, 3))
    heights = np.where(
        np.arange(nodes) % 5 == 0, np.abs(rng.normal(scale=3.0, size=nodes)), 0.0
    )
    return node_ids, components, heights


def bench_ingest(nodes: int) -> Dict[str, object]:
    node_ids, components, heights = _synthetic_population(nodes)

    def array_leg() -> float:
        started = time.perf_counter()
        SnapshotStore.from_arrays(node_ids, components.copy(), heights.copy())
        return time.perf_counter() - started

    def object_leg() -> float:
        # The object path starts from the same arrays, so the Coordinate
        # materialisation it forces is part of its cost.
        started = time.perf_counter()
        coordinates = {
            node_id: Coordinate(row.tolist(), float(height))
            for node_id, row, height in zip(node_ids, components, heights)
        }
        SnapshotStore.from_coordinates(coordinates)
        return time.perf_counter() - started

    array_s = min(array_leg() for _ in range(INGEST_REPEATS))
    object_s = min(object_leg() for _ in range(INGEST_REPEATS))
    speedup = object_s / array_s if array_s > 0 else float("inf")
    print(
        f"  ingest {nodes:>6} nodes: objects {object_s * 1e3:8.2f} ms, arrays "
        f"{array_s * 1e3:8.2f} ms -> {speedup:6.1f}x"
    )
    return {
        "nodes": nodes,
        "object_ingest_s": round(object_s, 6),
        "array_ingest_s": round(array_s, 6),
        "speedup": round(speedup, 2),
    }


# ----------------------------------------------------------------------
# Stage 3: batched dense queries vs per-query execution vs the oracle
# ----------------------------------------------------------------------
def bench_queries(nodes: int) -> Dict[str, object]:
    node_ids, components, heights = _synthetic_population(nodes)
    rng = np.random.default_rng(7)
    targets = [
        node_ids[int(i)]
        for i in rng.choice(nodes, size=min(QUERY_BATCH, nodes), replace=False)
    ]
    queries = [Query.knn(target, k=QUERY_K) for target in targets]

    def dense_planner() -> QueryPlanner:
        store = SnapshotStore.from_arrays(
            node_ids, components.copy(), heights.copy(), index_kind="dense"
        )
        store.index_for()  # build outside the timed region
        return QueryPlanner(store)

    planner = dense_planner()
    started = time.perf_counter()
    for query in queries:
        planner.submit(query)
    batched_results = planner.flush()
    batched_s = time.perf_counter() - started

    planner = dense_planner()
    started = time.perf_counter()
    single_results = [planner.execute(query) for query in queries]
    single_s = time.perf_counter() - started

    coordinates = {
        node_id: Coordinate(row.tolist(), float(height))
        for node_id, row, height in zip(node_ids, components, heights)
    }
    linear_store = SnapshotStore.from_coordinates(coordinates, index_kind="linear")
    linear_planner = QueryPlanner(linear_store)
    started = time.perf_counter()
    linear_results = [linear_planner.execute(query) for query in queries]
    linear_s = time.perf_counter() - started

    batched_checksum = payload_checksum(batched_results)
    speedup = single_s / batched_s if batched_s > 0 else float("inf")
    identical_single = batched_checksum == payload_checksum(single_results)
    identical_linear = batched_checksum == payload_checksum(linear_results)
    print(
        f"  query {nodes:>6} nodes, {len(queries)} knn: batched {batched_s * 1e3:8.1f} ms, "
        f"per-query {single_s * 1e3:8.1f} ms, linear {linear_s * 1e3:9.1f} ms -> "
        f"{speedup:5.1f}x (single={identical_single}, oracle={identical_linear})"
    )
    return {
        "nodes": nodes,
        "queries": len(queries),
        "k": QUERY_K,
        "batched_s": round(batched_s, 6),
        "single_s": round(single_s, 6),
        "linear_s": round(linear_s, 6),
        "batched_queries_per_s": (
            round(len(queries) / batched_s, 1) if batched_s > 0 else float("inf")
        ),
        "batched_over_single": round(speedup, 2),
        "batched_identical_to_single": identical_single,
        "identical_to_linear": identical_linear,
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run(smoke: bool, out_path: Path) -> int:
    sim_sizes = SMOKE_SIM_SIZES if smoke else FULL_SIM_SIZES
    service_nodes = SMOKE_SERVICE_NODES if smoke else FULL_SERVICE_NODES
    print(f"array-native pipeline benchmark ({'smoke' if smoke else 'full'} mode)")

    simulation: List[Dict[str, object]] = [
        bench_simulation(nodes, ticks) for nodes, ticks in sim_sizes
    ]
    ingest = bench_ingest(service_nodes)
    query = bench_queries(service_nodes)

    sim_bar_nodes = (
        SIM_ACCEPTANCE_NODES if not smoke else max(nodes for nodes, _ in sim_sizes)
    )
    sim_at_bar = next(r for r in simulation if r["nodes"] == sim_bar_nodes)
    met = (
        float(sim_at_bar["speedup"]) >= SIM_ACCEPTANCE_SPEEDUP
        and float(query["batched_over_single"]) >= QUERY_ACCEPTANCE_SPEEDUP
        and all(bool(r["coords_byte_identical"]) for r in simulation)
        and bool(query["batched_identical_to_single"])
        and bool(query["identical_to_linear"])
    )

    payload = {
        "benchmark": "pipeline_array_native",
        "smoke": smoke,
        "sampling_interval_s": SAMPLING_INTERVAL_S,
        "host_cpu_count": os.cpu_count(),
        "simulation": simulation,
        "ingest": ingest,
        "query": query,
        "acceptance": {
            "bar": (
                f"RELATIVE+height sim >= {SIM_ACCEPTANCE_SPEEDUP:.0f}x scalar at "
                f"{sim_bar_nodes} nodes with byte-identical coordinates; "
                f"batched dense >= {QUERY_ACCEPTANCE_SPEEDUP:.0f}x per-query at "
                f"{service_nodes} nodes with oracle-identical results"
            ),
            "sim_speedup": sim_at_bar["speedup"],
            "batched_query_speedup": query["batched_over_single"],
            "met": met,
            "enforced": not smoke,
        },
    }
    out_path.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"written: {out_path}")
    if not smoke and not met:
        print("ACCEPTANCE FAILED", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--out", type=Path, default=ARTIFACT, help="artifact path")
    args = parser.parse_args(argv)
    return run(args.smoke, args.out)


if __name__ == "__main__":
    sys.exit(main())
