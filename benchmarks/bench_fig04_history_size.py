"""Benchmark: regenerate Figure 4 (MP prediction error vs history size).

Paper claim reproduced: a short history (h=4) already minimises prediction
error; histories of 1-2 samples are clearly worse, long histories gain
nothing (and slowly lose ground on a changing network).
"""

from __future__ import annotations

from repro.analysis.experiments import fig04_history_size


def test_fig04_history_size(run_once):
    result = run_once(
        fig04_history_size.run, nodes=16, links=40, samples_per_link=600, seed=0
    )
    medians = {h: s.median for h, s in result.summaries.items()}
    assert medians[1] > medians[4]
    assert medians[4] <= min(medians[h] for h in medians if h >= 4) * 1.15
    print()
    print(fig04_history_size.format_report(result))
