"""Benchmark: regenerate Figure 2 (raw latency histogram).

Paper claim reproduced: ~0.4% of all raw samples exceed one second while the
bulk of the distribution sits below a few hundred milliseconds.
"""

from __future__ import annotations

from repro.analysis.experiments import fig02_raw_histogram


def test_fig02_raw_histogram(run_once):
    result = run_once(fig02_raw_histogram.run, nodes=20, duration_s=900.0, seed=0)
    assert 0.0005 < result.fraction_above_1s < 0.03
    assert result.median_ms < 400.0
    print()
    print(fig02_raw_histogram.format_report(result))
