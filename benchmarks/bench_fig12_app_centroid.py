"""Benchmark: regenerate Figure 12 (APPLICATION/CENTROID threshold sweep).

Paper claim reproduced: the centroid hybrid is more stable than plain
APPLICATION at matching thresholds, but like all windowless heuristics its
accuracy degrades once the threshold grows -- the window-based *timing* of
updates, not just the centroid value, is what makes ENERGY/RELATIVE robust.
"""

from __future__ import annotations

from repro.analysis.experiments import fig12_app_centroid


def test_fig12_app_centroid(run_once):
    result = run_once(
        fig12_app_centroid.run,
        nodes=14,
        duration_s=700.0,
        seed=0,
        window_size=16,
        thresholds=(2.0, 16.0, 128.0),
    )
    for centroid_row, application_row in zip(result.centroid_rows, result.application_rows):
        assert centroid_row["instability"] <= application_row["instability"] * 1.5
    # Accuracy collapse at very large thresholds (application coordinate goes stale).
    assert result.centroid_rows[-1]["median_relative_error"] >= result.centroid_rows[0][
        "median_relative_error"
    ]
    print()
    print(fig12_app_centroid.format_report(result))
