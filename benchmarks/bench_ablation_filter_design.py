"""Ablation: MP-filter design choices (percentile, warm-up delay).

DESIGN.md calls out two filter-design decisions for ablation:

* the output percentile -- the paper uses p=25 and reports it slightly
  better than the median (p=50);
* the warm-up delay -- the paper's deployed filter emits from the first
  sample, which it identifies as the source of its worst disruptions, and
  suggests waiting for a second sample.
"""

from __future__ import annotations

from repro.analysis.harness import ExperimentScale, build_trace, heuristic_metrics


def _metrics(trace, scale, filter_params):
    return heuristic_metrics(
        trace,
        "always",
        {},
        filter_kind="mp",
        filter_params=filter_params,
        measurement_start_s=scale.measurement_start_s,
    )


def test_percentile_choice_p25_vs_p50(run_once):
    scale = ExperimentScale(nodes=16, duration_s=900.0, ping_interval_s=2.0, seed=5)
    trace = build_trace(scale)

    def run_both():
        p25 = _metrics(trace, scale, {"history": 4, "percentile": 25.0})
        p50 = _metrics(trace, scale, {"history": 4, "percentile": 50.0})
        return p25, p50

    p25, p50 = run_once(run_both)
    # The two settings land in the same regime: the paper found p=25
    # marginally better at predicting the next sample; judged against raw
    # observations the median filter can edge ahead on error while p=25
    # stays at least as stable.  Neither may be dramatically worse.
    assert p25["median_relative_error"] <= p50["median_relative_error"] * 1.35
    assert p25["instability"] <= p50["instability"] * 1.25
    print()
    print(f"p=25: error {p25['median_relative_error']:.3f}, instability {p25['instability']:.2f}")
    print(f"p=50: error {p50['median_relative_error']:.3f}, instability {p50['instability']:.2f}")


def test_warmup_delay_defuses_pathological_first_samples(run_once):
    """Section VI's fix, demonstrated on the mechanism it targets.

    The paper traces its five largest coordinate disruptions to links whose
    *first* observation was an extreme outlier: with no warm-up the filter
    emits that outlier verbatim.  Waiting for a second sample removes the
    displacement entirely.
    """
    from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
    from repro.core.coordinate import Coordinate
    from repro.core.node import CoordinateNode

    def run_both():
        displacements = {}
        for warmup in (1, 2):
            config = NodeConfig(
                filter=FilterConfig(
                    "mp", {"history": 4, "percentile": 25.0, "warmup": warmup}
                ),
                heuristic=HeuristicConfig("always"),
            )
            node = CoordinateNode("victim", config)
            # Converge against one well-behaved peer first.
            steady_peer = Coordinate([60.0, 0.0, 0.0])
            for _ in range(60):
                node.observe("steady", steady_peer, 0.3, 60.0)
            before = node.system_coordinate
            # A brand-new link whose first observation is a 5-second outlier.
            node.observe("new-link", Coordinate([0.0, 80.0, 0.0]), 0.3, 5000.0)
            displacements[warmup] = node.system_coordinate.euclidean_distance(before)
        return displacements

    displacements = run_once(run_both)
    assert displacements[2] < displacements[1] * 0.25
    print()
    print(
        f"displacement from a pathological first sample: warmup=1 -> "
        f"{displacements[1]:.1f} ms, warmup=2 -> {displacements[2]:.1f} ms"
    )
