"""Benchmark: regenerate Figure 11 (application-level suppression vs raw MP filter).

Paper claim reproduced: ENERGY and RELATIVE keep the raw MP filter's
accuracy while shifting the per-node instability distribution substantially
toward zero.
"""

from __future__ import annotations

from repro.analysis.experiments import fig11_app_vs_raw


def test_fig11_app_vs_raw(run_once):
    result = run_once(fig11_app_vs_raw.run, nodes=18, duration_s=1000.0, seed=0)
    raw_instability = result.median_instability_by_config["Raw MP Filter"]
    for label in ("Energy+MP Filter", "Relative+MP Filter"):
        assert result.median_instability_by_config[label] < raw_instability
        assert result.median_error_by_config[label] < (
            result.median_error_by_config["Raw MP Filter"] * 2.0 + 0.05
        )
    print()
    print(fig11_app_vs_raw.format_report(result))
