"""Chaos-recovery benchmark: serving quality across injected faults.

For each fault kind the harness serves a synthetic clustered universe
from an in-process daemon (2 shards, vptree index) and drives three
single-worker closed-loop legs over real TCP:

1. **pre** -- a healthy leg establishing the baseline throughput;
2. **fault** -- the same query stream with a deterministic
   :class:`~repro.chaos.schedule.FaultSchedule` installed (faults fire
   on request/publish *counts*, never the wall clock);
3. **post** -- after every fault has cleared (kill -> restart, slow ->
   delay removed, burst -> slots released), a healthy leg again.

``qps_recovery_ratio_<kind>`` = post over pre: serving a fault must not
leave throughput damaged once the fault clears.  Each cell also audits
the fault leg for torn reads (every response re-served against the
generation of its claimed version, degraded responses on the healthy
subset they declared) and evaluates the recovery SLOs with
deterministic inputs (``latencies_ms=None``; the wall-clock p99 figures
are reported, not gated here -- the CI chaos-smoke job gates p99 over
the wire).  Emits ``BENCH_chaos.json``; the regression gate enforces
the committed recovery ratios and the per-kind SLO / torn-read /
bounded-error checks.

Run directly::

    PYTHONPATH=src python benchmarks/bench_chaos.py          # full (5k nodes)
    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke  # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.chaos.injector import ChaosInjector
from repro.chaos.schedule import FaultSchedule
from repro.chaos.slo import SLOThresholds, evaluate
from repro.server.daemon import CoordinateServer
from repro.server.load import run_load, synthetic_arrays
from repro.server.sharding import ShardedCoordinateStore
from repro.service.workload import generate_queries

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_chaos.json"

SHARDS = 2
#: Small on purpose: the admission-burst schedule saturates it exactly.
ADMISSION_LIMIT = 64

#: One cell per fault kind.  ``publishes`` streams that many epochs into
#: the store during the fault leg (the publish-path faults need traffic
#: to act on); serve faults leave it at 0.
CELLS = (
    {
        "kind": "shard_kill",
        "spec": "shard-kill@50+100:shard=1",
        "publishes": 0,
    },
    {
        "kind": "gray_slow",
        "spec": "shard-slow@50+100:shard=0:delay_ms=1",
        "publishes": 0,
    },
    {
        "kind": "publish_stall",
        "spec": "publish-stall@1+1:delay_ms=5,publish-drop@3+1",
        "publishes": 6,
    },
    {
        "kind": "admission_burst",
        "spec": f"admission-burst@50+40:amount={ADMISSION_LIMIT}",
        "publishes": 0,
    },
)


def _audit_torn_reads(store, queries, responses) -> Dict[str, int]:
    """Re-serve every ok response against its claimed generation.

    Degraded (partial) responses are checked on the healthy subset they
    declared via ``missing_shards``; anything else must match the full
    merge byte for byte.
    """
    audited = torn = degraded = 0
    for query, response in zip(queries, responses):
        if not response.get("ok"):
            continue
        audited += 1
        if response.get("partial"):
            degraded += 1
        generation = store.at(int(response["version"]))
        missing = frozenset(response.get("missing_shards") or ())
        expected = generation.answer(query, exclude_shards=missing)
        if expected != response.get("payload"):
            torn += 1
    return {"audited": audited, "torn": torn, "degraded": degraded}


def bench_cell(
    cell: Dict[str, Any], *, nodes: int, query_count: int
) -> Dict[str, Any]:
    node_ids, components, heights = synthetic_arrays(nodes)
    store = ShardedCoordinateStore(
        SHARDS, index_kind="vptree", history=int(cell["publishes"]) + 4
    )
    store.publish_epoch(node_ids, components.copy(), heights.copy(), source="bench")
    queries = generate_queries(node_ids, query_count, mix="mixed", seed=17)
    schedule = FaultSchedule.parse(cell["spec"], seed=0)
    server = CoordinateServer(store, admission_limit=ADMISSION_LIMIT)
    with server.run_in_thread() as handle:
        # Warm lap (connection setup, lazy index work), then best-of-three
        # healthy legs on each side of the fault: taking the faster leg
        # filters scheduler hiccups on small CI hosts, so the post-over-
        # pre recovery ratio compares steady state to steady state.
        run_load(handle.address, queries, mode="closed", concurrency=1)
        pre_legs = [
            run_load(handle.address, queries, mode="closed", concurrency=1)
            for _ in range(3)
        ]
        pre = max(pre_legs, key=lambda leg: leg.queries_per_s)

        injector = ChaosInjector(schedule, store)
        store.chaos = injector
        publisher: Optional[threading.Thread] = None
        if cell["publishes"]:
            def publish_epochs() -> None:
                for epoch in range(1, int(cell["publishes"]) + 1):
                    # Pure translations keep the geometry exact.
                    store.publish_epoch(
                        node_ids,
                        components + epoch * 3.0,
                        heights.copy(),
                        source=f"e{epoch}",
                    )

            publisher = threading.Thread(target=publish_epochs)
            publisher.start()
        fault = run_load(handle.address, queries, mode="closed", concurrency=1)
        if publisher is not None:
            publisher.join()
        released = injector.finish_serve_faults()
        if released:
            server.release_admission_load(released)
        store.chaos = None

        post_legs = [
            run_load(handle.address, queries, mode="closed", concurrency=1)
            for _ in range(3)
        ]
        post = max(post_legs, key=lambda leg: leg.queries_per_s)

    audit = _audit_torn_reads(store, queries, fault.responses)
    error_positions = [
        position
        for position, response in enumerate(fault.responses)
        if not response.get("ok")
    ]
    slo = evaluate(
        thresholds=SLOThresholds(),
        fault_windows=[
            (event.at, event.clear_at) for event in schedule.serve_events()
        ],
        error_positions=error_positions,
        total_requests=fault.query_count,
        latencies_ms=None,
        torn_reads=audit["torn"],
        generation_recovered=not store.down_shards,
    )
    report = injector.report()
    recovery_ratio = (
        round(post.queries_per_s / pre.queries_per_s, 3)
        if pre.queries_per_s
        else None
    )
    return {
        "kind": cell["kind"],
        "spec": cell["spec"],
        "queries_per_leg": query_count,
        "qps_pre": round(pre.queries_per_s, 1),
        "qps_fault": round(fault.queries_per_s, 1),
        "qps_post": round(post.queries_per_s, 1),
        "qps_recovery_ratio": recovery_ratio,
        "fault_errors": fault.errors,
        "fault_error_kinds": dict(fault.error_kinds),
        "fault_degraded": audit["degraded"],
        "fault_p99_ms": {
            kind: entry["p99_ms"] for kind, entry in fault.kinds.items()
        },
        "torn_reads": audit["torn"],
        "audited": audit["audited"],
        "faults_fired": sum(1 for f in report["faults"] if f["fired"]),
        "faults_cleared": sum(1 for f in report["faults"] if f["cleared"]),
        "dropped_publishes": report["dropped_publishes"],
        "stalled_publishes": report["stalled_publishes"],
        "slo": slo,
        "slo_passed": slo["passed"],
        "no_torn_reads": audit["torn"] == 0,
        "bounded_errors": slo["checks"]["bounded_error_window"]["passed"],
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small universe / query counts for CI"
    )
    parser.add_argument(
        "--out", type=Path, default=ARTIFACT, help="artifact path (BENCH_chaos.json)"
    )
    args = parser.parse_args(argv)

    nodes = 512 if args.smoke else 5_000
    query_count = 400 if args.smoke else 2_000

    artifact: Dict[str, Any] = {
        "benchmark": "chaos_recovery",
        "smoke": args.smoke,
        "host_cpu_count": os.cpu_count(),
        "nodes": nodes,
        "shards": SHARDS,
        "admission_limit": ADMISSION_LIMIT,
        "queries_per_leg": query_count,
        "cells": [],
    }
    for cell in CELLS:
        print(f"chaos cell {cell['kind']} ({cell['spec']})...", flush=True)
        entry = bench_cell(cell, nodes=nodes, query_count=query_count)
        artifact["cells"].append(entry)
        print(
            f"  pre {entry['qps_pre']:>8.1f} q/s  fault {entry['qps_fault']:>8.1f}"
            f"  post {entry['qps_post']:>8.1f}  recovery {entry['qps_recovery_ratio']}x"
            f"  errors {entry['fault_errors']}  degraded {entry['fault_degraded']}"
            f"  torn {entry['torn_reads']}  slo {entry['slo_passed']}"
        )

    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"artifact written to {args.out}")

    failed = [
        cell["kind"]
        for cell in artifact["cells"]
        if not (cell["slo_passed"] and cell["no_torn_reads"] and cell["bounded_errors"])
    ]
    if failed:
        print(
            f"error: recovery SLOs failed for fault kind(s): {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
