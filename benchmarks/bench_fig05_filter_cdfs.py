"""Benchmark: regenerate Figure 5 (accuracy/stability CDFs, MP vs no filter).

Paper claim reproduced: the MP filter improves accuracy and stability for
most nodes and removes the heavy instability tail.
"""

from __future__ import annotations

from repro.analysis.experiments import fig05_filter_cdfs


def test_fig05_filter_cdfs(run_once):
    result = run_once(fig05_filter_cdfs.run, nodes=20, duration_s=1200.0, seed=0)
    assert result.median_error_improvement > 0.2
    assert result.instability_improvement > 0.3
    assert result.tail_reduction_factor > 2.0
    print()
    print(fig05_filter_cdfs.format_report(result))
