"""Benchmark regression gate: compare smoke artifacts against baselines.

CI machines differ wildly in absolute speed, so gating on raw ticks/sec or
queries/sec would flap with the runner lottery.  This gate therefore
compares only *ratio* metrics -- throughput relative to an in-run baseline
measured on the same machine moments earlier -- which are stable across
hardware:

* ``vectorized_backend`` artifacts: the vectorized-over-scalar ticks/sec
  speedup at every size, plus the byte-identical coordinate check;
* ``service_query_scaling`` artifacts: each spatial index's queries/sec
  over the linear scan at every size, plus the identical-results check;
* ``pipeline_array_native`` artifacts: the RELATIVE+height sim speedup,
  the array-over-object snapshot-ingest speedup and the batched-over-
  per-query dense execution speedup, plus their identity checks;
* ``server_load`` artifacts: the serving daemon's queries/sec at each
  shard count relative to its own 1-shard leg, plus the cross-shard and
  linear-oracle identity checks and the ingest-while-serving check;
* ``publish_delta`` artifacts: the delta-over-full publish speedup per
  (index kind, churn fraction) cell -- two publish paths timed moments
  apart on the same machine -- plus the per-cell delta/full identity
  checks (coordinates, query payloads including tie order, health);
* ``chaos_recovery`` artifacts: post-fault over pre-fault qps per
  injected fault kind (the committed baselines hold this ratio at a
  deliberately conservative value; see benchmarks/README.md), plus the
  per-kind recovery-SLO, torn-read and bounded-error-window checks;
* ``gateway_http`` artifacts: the HTTP gateway's queries/sec over the
  TCP daemon's for the same stream per query mix (held deliberately
  conservative in the committed baselines), plus the per-mix
  gateway/TCP byte-identity checks and the per-tenant linear-oracle and
  zero-error checks from the concurrent multi-tenant leg.

A metric regresses when it falls more than ``--tolerance`` (default 0.30,
i.e. 30%) below its committed baseline in ``benchmarks/baselines/``.
Correctness booleans (identical results) must hold outright.  Artifacts
carrying ``telemetry`` sections (latency histograms, see
``repro.obs.regression``) additionally pass through the tail gate: scale-
invariant p99/p50 amplification and median-aligned bucket-shape checks
that catch tail blow-ups without flapping on absolute machine speed.
Baselines recorded before telemetry existed pass the tail gate vacuously.
Artifacts carrying coordinate-``health`` sections additionally pass
through the *accuracy gate* (``repro.obs.regression.compare_health``):
median/p95/mean relative error and mean drift velocity must not degrade
beyond the baseline by more than the direction-aware limit -- the check
that catches corrupted or mis-published coordinates that still serve
queries without an error in sight.
Exit status: 0 = pass, 1 = regression, 2 = usage/baseline error.

Re-baselining: regenerate the smoke artifacts and copy them over the files
in ``benchmarks/baselines/`` (see ``benchmarks/README.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

# The tail gate lives in the package; make it importable when the gate is
# run as a plain script without PYTHONPATH=src.
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.regression import compare_health_payloads, compare_payloads  # noqa: E402

DEFAULT_BASELINE_DIR = Path(__file__).resolve().parent / "baselines"
DEFAULT_TOLERANCE = 0.30

#: (ratio metrics, boolean correctness metrics) per artifact, keyed by the
#: payload's ``benchmark`` field.
Metrics = Tuple[Dict[str, float], Dict[str, bool]]


def _extract_vectorized(payload: Dict) -> Metrics:
    ratios: Dict[str, float] = {}
    checks: Dict[str, bool] = {}
    for section, records in (("", payload["sizes"]), ("energy_", payload.get("energy_sizes", []))):
        for record in records:
            nodes = record["nodes"]
            ratios[f"{section}speedup_at_{nodes}_nodes"] = float(record["speedup"])
            checks[f"{section}coords_identical_at_{nodes}_nodes"] = bool(
                record["coords_byte_identical"]
            )
    return ratios, checks


def _extract_service(payload: Dict) -> Metrics:
    ratios: Dict[str, float] = {}
    checks: Dict[str, bool] = {}
    for record in payload["sizes"]:
        nodes = record["nodes"]
        for kind, stats in record["kinds"].items():
            if "speedup_vs_linear" in stats:
                ratios[f"{kind}_speedup_at_{nodes}_nodes"] = float(
                    stats["speedup_vs_linear"]
                )
            if "identical_to_linear" in stats:
                checks[f"{kind}_identical_at_{nodes}_nodes"] = bool(
                    stats["identical_to_linear"]
                )
    return ratios, checks


def _extract_pipeline(payload: Dict) -> Metrics:
    ratios: Dict[str, float] = {}
    checks: Dict[str, bool] = {}
    for record in payload["simulation"]:
        nodes = record["nodes"]
        ratios[f"sim_speedup_at_{nodes}_nodes"] = float(record["speedup"])
        checks[f"sim_coords_identical_at_{nodes}_nodes"] = bool(
            record["coords_byte_identical"]
        )
    ingest = payload["ingest"]
    ratios[f"ingest_speedup_at_{ingest['nodes']}_nodes"] = float(ingest["speedup"])
    query = payload["query"]
    ratios[f"batched_query_speedup_at_{query['nodes']}_nodes"] = float(
        query["batched_over_single"]
    )
    checks[f"batched_identical_to_single_at_{query['nodes']}_nodes"] = bool(
        query["batched_identical_to_single"]
    )
    checks[f"results_identical_to_linear_at_{query['nodes']}_nodes"] = bool(
        query["identical_to_linear"]
    )
    return ratios, checks


def _extract_server(payload: Dict) -> Metrics:
    ratios: Dict[str, float] = {}
    checks: Dict[str, bool] = {}
    for record in payload["shard_scaling"]:
        shards = record["shards"]
        # qps per shard count relative to the same run's 1-shard leg --
        # a same-machine ratio, stable across runner hardware.
        ratios[f"qps_ratio_at_{shards}_shards"] = float(record["qps_ratio_vs_1_shard"])
        checks[f"identical_to_1_shard_at_{shards}_shards"] = bool(
            record["identical_to_1_shard"]
        )
        checks[f"oracle_prefix_identical_at_{shards}_shards"] = bool(
            record["oracle_prefix_identical"]
        )
        checks[f"no_errors_at_{shards}_shards"] = record["errors"] == 0
    ingest = payload.get("ingest")
    if ingest is not None:
        checks["serving_during_ingest_ok"] = bool(ingest["serving_during_ingest_ok"])
    return ratios, checks


def _extract_publish(payload: Dict) -> Metrics:
    ratios: Dict[str, float] = {}
    checks: Dict[str, bool] = {}
    for cell in payload["cells"]:
        key = f"{cell['index_kind']}_at_{cell['churn']}_churn"
        ratios[f"publish_speedup_{key}"] = float(cell["speedup"])
        checks[f"arrays_identical_{key}"] = bool(cell["arrays_identical"])
        checks[f"queries_identical_{key}"] = bool(cell["queries_identical"])
        checks[f"health_identical_{key}"] = bool(cell["health_identical"])
    return ratios, checks


def _extract_chaos(payload: Dict) -> Metrics:
    ratios: Dict[str, float] = {}
    checks: Dict[str, bool] = {}
    for cell in payload["cells"]:
        kind = cell["kind"]
        # Post-fault over pre-fault qps on the same daemon moments apart:
        # recovering from a fault must not leave serving persistently
        # damaged.  The committed baselines hold this ratio at a
        # deliberately conservative value (see benchmarks/README.md), so
        # the gate trips on structural damage, not scheduler noise.
        ratios[f"qps_recovery_ratio_{kind}"] = float(cell["qps_recovery_ratio"])
        checks[f"slo_passed_{kind}"] = bool(cell["slo_passed"])
        checks[f"no_torn_reads_{kind}"] = bool(cell["no_torn_reads"])
        checks[f"bounded_errors_{kind}"] = bool(cell["bounded_errors"])
    return ratios, checks


def _extract_gateway(payload: Dict) -> Metrics:
    ratios: Dict[str, float] = {}
    checks: Dict[str, bool] = {}
    for cell in payload["overhead"]:
        mix = cell["mix"]
        # Gateway qps over daemon qps for the same stream on the same
        # machine moments apart; the committed baselines hold this at a
        # deliberately conservative value (see benchmarks/README.md).
        ratios[f"http_over_tcp_qps_{mix}"] = float(cell["http_over_tcp_qps"])
        # The tentpole property, gated outright: gateway response bodies
        # are byte-identical to the TCP daemon's frame bodies.
        checks[f"bodies_identical_{mix}"] = bool(cell["bodies_identical"])
    for entry in payload["multi_tenant"]["per_tenant"]:
        tenant = entry["tenant"]
        checks[f"oracle_identical_{tenant}"] = bool(entry["checksum_identical"])
        checks[f"no_errors_{tenant}"] = entry["errors"] == 0
    return ratios, checks


EXTRACTORS = {
    "vectorized_backend": _extract_vectorized,
    "service_query_scaling": _extract_service,
    "pipeline_array_native": _extract_pipeline,
    "server_load": _extract_server,
    "publish_delta": _extract_publish,
    "chaos_recovery": _extract_chaos,
    "gateway_http": _extract_gateway,
}


def _load(path: Path) -> Dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: artifact {path} not found (run the benchmark first)")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: artifact {path} is not valid JSON: {exc}")


def check_artifact(
    current_path: Path, baseline_path: Path, tolerance: float
) -> List[str]:
    """Compare one artifact; returns human-readable failure lines."""
    current = _load(current_path)
    if not baseline_path.exists():
        raise SystemExit(
            f"error: no committed baseline {baseline_path} for {current_path.name}; "
            "copy the smoke artifact there to baseline it (see benchmarks/README.md)"
        )
    baseline = _load(baseline_path)

    kind = current.get("benchmark")
    if kind != baseline.get("benchmark"):
        raise SystemExit(
            f"error: benchmark kind mismatch for {current_path.name}: "
            f"{kind!r} vs baseline {baseline.get('benchmark')!r}"
        )
    extractor = EXTRACTORS.get(kind)
    if extractor is None:
        raise SystemExit(
            f"error: no extractor for benchmark kind {kind!r} "
            f"(known: {sorted(EXTRACTORS)})"
        )

    current_ratios, current_checks = extractor(current)
    baseline_ratios, _ = extractor(baseline)

    failures: List[str] = []
    for name in sorted(set(current_ratios) & set(baseline_ratios)):
        base = baseline_ratios[name]
        now = current_ratios[name]
        floor = base * (1.0 - tolerance)
        status = "OK"
        if now < floor:
            status = "REGRESSION"
            failures.append(
                f"{current_path.name}: {name} regressed {base:.2f} -> {now:.2f} "
                f"(floor {floor:.2f} at {tolerance:.0%} tolerance)"
            )
        print(
            f"  {status:>10}  {name:<40} baseline {base:>9.2f}  current {now:>9.2f}"
        )
    missing = sorted(set(baseline_ratios) - set(current_ratios))
    for name in missing:
        failures.append(
            f"{current_path.name}: metric {name} present in baseline but missing "
            "from the current artifact (benchmark shrank?)"
        )
    for name, passed in sorted(current_checks.items()):
        print(f"  {'OK' if passed else 'FAILED':>10}  {name}")
        if not passed:
            failures.append(f"{current_path.name}: correctness check {name} failed")

    # Tail gate over any telemetry (histogram) sections the two artifacts
    # share; baselines predating telemetry match zero sections and pass.
    findings, compared = compare_payloads(baseline, current)
    if compared:
        status = "REGRESSION" if findings else "OK"
        print(
            f"  {status:>10}  tail gate over {compared} telemetry section(s)"
        )
        for finding in findings:
            failures.append(f"{current_path.name}: {finding}")
    else:
        print(f"{'--':>12}  tail gate skipped (no shared telemetry sections)")

    # Accuracy gate over any coordinate-health sections the two artifacts
    # share; baselines predating health sections pass vacuously.
    health_findings, health_compared = compare_health_payloads(baseline, current)
    if health_compared:
        status = "REGRESSION" if health_findings else "OK"
        print(
            f"  {status:>10}  accuracy gate over {health_compared} health section(s)"
        )
        for finding in health_findings:
            failures.append(f"{current_path.name}: {finding}")
    else:
        print(f"{'--':>12}  accuracy gate skipped (no shared health sections)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifacts", nargs="+", type=Path, help="current BENCH_*.json smoke artifacts"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help="directory of committed baseline artifacts (matched by filename)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below baseline (default 0.30)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        print("error: --tolerance must be within [0, 1)", file=sys.stderr)
        return 2

    failures: List[str] = []
    for artifact in args.artifacts:
        baseline = args.baseline_dir / artifact.name
        print(f"{artifact} vs {baseline}:")
        try:
            failures.extend(check_artifact(artifact, baseline, args.tolerance))
        except SystemExit as exc:
            print(exc, file=sys.stderr)
            return 2
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
