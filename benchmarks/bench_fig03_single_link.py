"""Benchmark: regenerate Figure 3 (single-link histogram and time spread).

Paper claim reproduced: a representative link's observations vary by orders
of magnitude and the outliers keep occurring throughout the trace.
"""

from __future__ import annotations

from repro.analysis.experiments import fig03_single_link


def test_fig03_single_link(run_once):
    result = run_once(fig03_single_link.run, nodes=16, duration_s=5400.0, seed=0)
    assert result.spread_ratio > 5.0
    assert sum(1 for c in result.outliers_per_quarter if c > 0) >= 3
    print()
    print(fig03_single_link.format_report(result))
