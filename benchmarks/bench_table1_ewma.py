"""Benchmark: regenerate Table I (EWMA filters vs MP filter vs no filter).

Paper claim reproduced: the MP filter improves both metrics over no filter;
EWMA filters with conventional alpha (0.10, 0.20) are worse than no filter
on accuracy because they absorb heavy-tailed outliers into the average.
"""

from __future__ import annotations

from repro.analysis.experiments import table1_ewma


def test_table1_ewma(run_once):
    result = run_once(table1_ewma.run, nodes=20, duration_s=1200.0, seed=0)
    mp = result.row("MP Filter")
    raw = result.row("No Filter")
    assert mp.median_relative_error < raw.median_relative_error
    assert mp.instability < raw.instability
    assert result.row("EWMA a=0.20").median_relative_error > mp.median_relative_error
    assert result.row("EWMA a=0.10").median_relative_error > mp.median_relative_error
    print()
    print(table1_ewma.format_report(result))
