"""Benchmark: regenerate Figure 10 (all four heuristics vs threshold).

Paper claim reproduced: the windowless heuristics (SYSTEM, APPLICATION)
trade accuracy directly for stability -- at large thresholds their error
blows up -- while the window-based heuristics stay accurate across their
whole threshold range.
"""

from __future__ import annotations

from repro.analysis.experiments import fig10_heuristic_compare


def test_fig10_heuristic_compare(run_once):
    result = run_once(
        fig10_heuristic_compare.run,
        nodes=14,
        duration_s=700.0,
        seed=0,
        window_size=16,
        ms_thresholds=(1.0, 16.0, 256.0),
        energy_thresholds=(1.0, 8.0, 64.0),
        relative_thresholds=(0.1, 0.3, 0.9),
    )
    application = result.rows["Application"]
    energy = result.rows["Energy"]
    # Windowless: error at the largest threshold is much worse than at the smallest.
    assert application[-1]["median_relative_error"] > application[0]["median_relative_error"] * 1.5
    # Window-based: error stays in the same range across the sweep.
    assert energy[-1]["median_relative_error"] < energy[0]["median_relative_error"] * 2.0 + 0.05
    print()
    print(fig10_heuristic_compare.format_report(result))
