"""Ablation: gossip rate and bootstrap neighbor-set size.

The deployed system learns new neighbors by piggybacking one address on
every sampling message.  This ablation checks that the coordinate quality
of the full protocol simulation is robust to the bootstrap set size and
that disabling gossip (frozen neighbor sets) degrades the error of nodes
whose bootstrap view of the network is small.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import NodeConfig
from repro.latency.planetlab import PlanetLabDataset
from repro.netsim.protocol import ProtocolConfig
from repro.netsim.runner import SimulationConfig, run_simulation


def _median_p95(result) -> float:
    values = list(
        result.collector.per_node_error_percentile(95.0, level="application").values()
    )
    return float(np.median(values)) if values else float("nan")


def test_gossip_and_bootstrap_size(run_once):
    dataset = PlanetLabDataset.generate(20, seed=8)

    def run_all():
        outcomes = {}
        for label, bootstrap, gossip in (
            ("bootstrap=2, gossip on", 2, True),
            ("bootstrap=8, gossip on", 8, True),
            ("bootstrap=2, gossip off", 2, False),
        ):
            config = SimulationConfig(
                nodes=20,
                duration_s=1500.0,
                node_config=NodeConfig.preset("mp_energy"),
                protocol=ProtocolConfig(sampling_interval_s=5.0, gossip_enabled=gossip),
                bootstrap_neighbors=bootstrap,
                seed=8,
            )
            outcomes[label] = _median_p95(run_simulation(config, dataset=dataset))
        return outcomes

    outcomes = run_once(run_all)
    # With gossip, a small bootstrap set reaches quality comparable to a large one.
    assert outcomes["bootstrap=2, gossip on"] < outcomes["bootstrap=8, gossip on"] * 2.0 + 0.1
    # Without gossip the small-bootstrap system cannot do better than with it.
    assert outcomes["bootstrap=2, gossip on"] <= outcomes["bootstrap=2, gossip off"] * 1.5 + 0.05
    print()
    for label, value in outcomes.items():
        print(f"{label:26s} median p95 relative error {value:.3f}")
