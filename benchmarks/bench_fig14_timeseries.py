"""Benchmark: regenerate Figure 14 (error and instability over time).

Paper claim reproduced: after a convergence period the filtered + ENERGY
configuration sustains a smoother and more accurate coordinate space than
raw Vivaldi, and the error in the final intervals is no worse than during
start-up.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import fig14_timeseries


def test_fig14_timeseries(run_once):
    result = run_once(
        fig14_timeseries.run, nodes=20, duration_s=2400.0, interval_s=300.0, seed=0
    )
    energy_series = result.series["Energy+MP Filter"]
    raw_series = result.series["Raw No Filter"]
    assert len(energy_series) == len(raw_series) == 8
    finite = [
        row["median_relative_error"]
        for row in energy_series
        if np.isfinite(row["median_relative_error"])
    ]
    assert finite[-1] <= finite[0] * 1.5
    # Stabilised instability ends below raw Vivaldi's.
    assert energy_series[-1]["mean_instability"] < raw_series[-1]["mean_instability"]
    print()
    print(fig14_timeseries.format_report(result))
