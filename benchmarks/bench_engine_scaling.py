"""Engine scaling benchmark: serial versus sharded parallel execution.

Expands the ``mesh-replay`` scenario into an 8-cell filter-parameter grid
(64 nodes per cell, 512 nodes total), runs it through ``repro scenarios
sweep`` with 2 worker processes, verifies the parallel metrics are
byte-identical to the serial run, and records the wall-clock comparison in
``BENCH_engine.json`` at the repo root.

Run directly (``PYTHONPATH=src python benchmarks/bench_engine_scaling.py``),
optionally passing a worker count (default 2).  The equivalent CLI
invocation is printed on start so the artifact is reproducible by hand.

The wall-clock speedup is bounded by the host's core count: the recorded
``host_cpu_count`` puts the number in context (on a 1-core container the
parallel run validates determinism but cannot beat serial -- worker
processes time-share the single core and add start-up cost).
"""

from __future__ import annotations

import multiprocessing
import sys
from pathlib import Path

from repro.scenarios.cli import main as scenarios_main

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The acceptance grid: 4 history sizes x 2 percentiles = 8 cells of 64
#: nodes each (512 total).
SWEEP_ARGS = [
    "sweep",
    "mesh-replay",
    "--set",
    "history=2,4,8,16",
    "--set",
    "percentile=25,50",
    "--check-serial",
]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    workers = int(argv[0]) if argv else 2
    if workers < 2:
        raise SystemExit("the scaling benchmark needs at least 2 workers")
    start_method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    args = [
        *SWEEP_ARGS,
        "--workers",
        str(workers),
        "--mp-context",
        start_method,
        "--bench-json",
        str(REPO_ROOT / "BENCH_engine.json"),
    ]
    print("repro scenarios " + " ".join(args))
    return scenarios_main(args)


if __name__ == "__main__":
    sys.exit(main())
