"""Ablation: node churn and the filter warm-up delay.

The paper (Section VI) predicts that in a long-running system with nodes
entering and leaving, delaying the filter's first output would add
robustness against the pathological first-sample case at small cost.  This
ablation runs the full protocol simulation under churn with and without the
warm-up delay and confirms the churned system still produces a usable
coordinate space.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
from repro.latency.planetlab import PlanetLabDataset
from repro.netsim.churn import ChurnConfig
from repro.netsim.runner import SimulationConfig, run_simulation


def _median_error(result) -> float:
    values = list(result.collector.per_node_median_error(level="application").values())
    return float(np.median(values)) if values else float("nan")


def _config(warmup: int) -> NodeConfig:
    return NodeConfig(
        filter=FilterConfig("mp", {"history": 4, "percentile": 25.0, "warmup": warmup}),
        heuristic=HeuristicConfig("energy", {"threshold": 8.0, "window_size": 32}),
    )


def test_churned_deployment_with_and_without_warmup(run_once):
    dataset = PlanetLabDataset.generate(20, seed=12)
    churn = ChurnConfig(churning_fraction=0.3, mean_session_s=400.0, mean_downtime_s=120.0)

    def run_all():
        outcomes = {}
        for label, warmup in (("warmup=1", 1), ("warmup=2", 2)):
            config = SimulationConfig(
                nodes=20,
                duration_s=1800.0,
                node_config=_config(warmup),
                churn=churn,
                seed=12,
            )
            result = run_simulation(config, dataset=dataset)
            outcomes[label] = {
                "median_error": _median_error(result),
                "instability": result.snapshot.aggregate_application_instability,
                "transitions": result.churn_transitions,
            }
        return outcomes

    outcomes = run_once(run_all)
    assert outcomes["warmup=1"]["transitions"] > 0
    # Both configurations keep a usable space under churn; the warm-up delay
    # must not make things worse.
    assert outcomes["warmup=2"]["median_error"] < 1.0
    assert outcomes["warmup=2"]["median_error"] <= outcomes["warmup=1"]["median_error"] * 1.5 + 0.05
    print()
    for label, metrics in outcomes.items():
        print(
            f"{label}: median app error {metrics['median_error']:.3f}, "
            f"aggregate app instability {metrics['instability']:.2f} ms/s, "
            f"churn transitions {metrics['transitions']}"
        )
