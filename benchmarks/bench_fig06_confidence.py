"""Benchmark: regenerate Figure 6 (confidence building on a low-latency cluster).

Paper claim reproduced: with a 3 ms error margin a cluster node's confidence
stays near 1.0; without it the sub-millisecond jitter keeps confidence
substantially lower.
"""

from __future__ import annotations

from repro.analysis.experiments import fig06_confidence


def test_fig06_confidence(run_once):
    result = run_once(fig06_confidence.run, duration_s=600.0, seed=0)
    building = result.steady_state_confidence["Confidence Building"]
    plain = result.steady_state_confidence["No Confidence Building"]
    assert building > 0.9
    assert building > plain + 0.1
    print()
    print(fig06_confidence.format_report(result))
