"""Benchmark: regenerate Figure 7 (coordinate drift over time).

Paper claim reproduced: even after convergence, coordinates keep moving in
consistent directions because the underlying network changes -- so the
application-level coordinate must be refreshed over time.
"""

from __future__ import annotations

from repro.analysis.experiments import fig07_drift


def test_fig07_drift(run_once):
    result = run_once(fig07_drift.run, nodes=20, duration_s=2400.0, seed=0)
    assert result.tracked
    assert result.mean_net_displacement() > 1.0
    print()
    print(fig07_drift.format_report(result))
