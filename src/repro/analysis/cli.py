"""Command-line entry point for experiments and scenarios (``repro``).

Usage::

    python -m repro.analysis.cli --list
    python -m repro.analysis.cli fig05 table1
    python -m repro.analysis.cli --all
    python -m repro.analysis.cli fig13 --output results/
    python -m repro.analysis.cli scenarios list
    python -m repro.analysis.cli scenarios sweep knn-overlay --set window=16,32
    python -m repro.analysis.cli serve mesh-replay --out snapshot.json
    python -m repro.analysis.cli query --snapshot snapshot.json knn host-0003
    python -m repro.analysis.cli serve-daemon --snapshot snapshot.json --port 9917
    python -m repro.analysis.cli load --port 9917 --count 5000 --mix mixed
    python -m repro.analysis.cli health --port 9917 --sections relative_error
    python -m repro.analysis.cli gateway --config gateway.json --port 8080

Each experiment prints its paper-style report to stdout; ``--output DIR``
additionally writes one ``<experiment>.txt`` file per experiment so runs
can be archived and diffed.  The ``scenarios`` command group (see
:mod:`repro.scenarios.cli`) lists and executes declarative scenarios on
the sharded engine; the ``serve`` and ``query`` groups (see
:mod:`repro.service.cli`) expose the coordinate query service.  With the
package installed, the console script ``repro`` exposes the same
interface (``repro scenarios sweep ...``, ``repro serve ...``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import experiments as experiment_package
from repro.analysis.experiments import EXPERIMENTS

__all__ = ["main", "run_experiments"]

#: Maps experiment id to its module (for format_report access).
_MODULES = {
    "fig02": experiment_package.fig02_raw_histogram,
    "fig03": experiment_package.fig03_single_link,
    "fig04": experiment_package.fig04_history_size,
    "fig05": experiment_package.fig05_filter_cdfs,
    "table1": experiment_package.table1_ewma,
    "fig06": experiment_package.fig06_confidence,
    "fig07": experiment_package.fig07_drift,
    "fig08": experiment_package.fig08_threshold_sweep,
    "fig09": experiment_package.fig09_window_sweep,
    "fig10": experiment_package.fig10_heuristic_compare,
    "fig11": experiment_package.fig11_app_vs_raw,
    "fig12": experiment_package.fig12_app_centroid,
    "fig13": experiment_package.fig13_deployment_cdfs,
    "fig14": experiment_package.fig14_timeseries,
}


def run_experiments(
    names: Sequence[str],
    *,
    seed: int = 0,
    output_dir: Optional[Path] = None,
) -> List[str]:
    """Run the named experiments and return their formatted reports."""
    reports: List[str] = []
    for name in names:
        if name not in EXPERIMENTS:
            known = ", ".join(sorted(EXPERIMENTS))
            raise ValueError(f"unknown experiment {name!r}; known: {known}")
        module = _MODULES[name]
        started = time.time()
        result = module.run(seed=seed)
        report = module.format_report(result)
        elapsed = time.time() - started
        header = f"=== {name} (completed in {elapsed:.1f}s) ==="
        full_report = f"{header}\n{report}\n"
        reports.append(full_report)
        if output_dir is not None:
            output_dir.mkdir(parents=True, exist_ok=True)
            (output_dir / f"{name}.txt").write_text(full_report)
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scenarios":
        # The scenario command group has its own parser; everything after
        # the group name belongs to it.
        from repro.scenarios.cli import main as scenarios_main

        return scenarios_main(argv[1:])
    if argv and argv[0] in ("serve", "query"):
        # The query-service groups keep the group name: their shared
        # parser distinguishes serve from query itself.
        from repro.service.cli import main as service_main

        return service_main(argv)
    if argv and argv[0] in ("serve-daemon", "load", "metrics", "health", "watch"):
        # The network daemon, its load harness, the telemetry fetcher and
        # the coordinate-health report / live dashboard.
        from repro.server.cli import main as server_main

        return server_main(argv)
    if argv and argv[0] == "gateway":
        # The multi-tenant HTTP gateway has its own parser; everything
        # after the group name belongs to it.
        from repro.gateway.cli import main as gateway_main

        return gateway_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the paper's figures and tables from the reproduction "
            "('repro fig05 table1'), or drive declarative scenarios "
            "('repro scenarios list|run|sweep ...')."
        ),
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. fig05 table1)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument("--output", type=Path, default=None, help="directory for report files")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(EXPERIMENTS):
            doc = (_MODULES[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0

    names = sorted(EXPERIMENTS) if args.all else list(args.experiments)
    if not names:
        parser.print_usage()
        print("error: name at least one experiment, or pass --all / --list", file=sys.stderr)
        return 2

    for report in run_experiments(names, seed=args.seed, output_dir=args.output):
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
