"""Shared experiment infrastructure: workloads, comparisons, sweeps.

Every experiment in :mod:`repro.analysis.experiments` needs the same two
ingredients -- a synthetic PlanetLab-like workload and a way to run several
coordinate configurations against it -- so they live here, with in-process
caching keyed on the workload parameters.  Caching matters because the
benchmark suite regenerates the same trace for many figures; building it
once keeps the whole suite fast without coupling experiments to each other.

The scenario engine's kernel (:mod:`repro.engine.kernel`) shares these
builders: every engine worker process gets its own cache, so grid cells
that differ only in coordinate configuration reuse one universe per
worker.  The caches are bounded (FIFO) because a sweep over topology sizes
would otherwise pin every generated trace in a long-lived worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import NodeConfig
from repro.latency.planetlab import DatasetParameters, PlanetLabDataset
from repro.latency.trace import LatencyTrace
from repro.metrics.collector import SystemSnapshot
from repro.netsim.replay import ReplayResult, replay_trace

__all__ = [
    "ExperimentScale",
    "build_dataset",
    "build_trace",
    "compare_presets",
    "heuristic_metrics",
    "replay_preset",
    "sweep",
    "clear_caches",
]


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """Workload size knobs shared by most experiments.

    The defaults are laptop-scale (tens of nodes, tens of simulated
    minutes); the paper's full scale (269 nodes, hours of trace) is reached
    by passing larger values -- the experiment code is identical.
    """

    nodes: int = 24
    duration_s: float = 1200.0
    ping_interval_s: float = 2.0
    neighbors_per_node: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError("nodes must be >= 2")
        if self.duration_s <= 0.0:
            raise ValueError("duration_s must be positive")
        if self.ping_interval_s <= 0.0:
            raise ValueError("ping_interval_s must be positive")

    @property
    def measurement_start_s(self) -> float:
        """Metrics are reported for the second half of the run, as in the paper."""
        return self.duration_s / 2.0


_DATASET_CACHE: Dict[Tuple, PlanetLabDataset] = {}
_TRACE_CACHE: Dict[Tuple, LatencyTrace] = {}

#: Entries kept per cache; oldest-inserted entries are evicted beyond this.
_CACHE_LIMIT = 8


def clear_caches() -> None:
    """Drop cached datasets and traces (used by tests)."""
    _DATASET_CACHE.clear()
    _TRACE_CACHE.clear()


def _cache_insert(cache: Dict[Tuple, Any], key: Tuple, value: Any) -> None:
    cache[key] = value
    while len(cache) > _CACHE_LIMIT:
        cache.pop(next(iter(cache)))


def build_dataset(
    nodes: int,
    *,
    seed: int = 0,
    parameters: DatasetParameters | None = None,
) -> PlanetLabDataset:
    """Build (or fetch from cache) a synthetic PlanetLab dataset."""
    params = parameters or DatasetParameters()
    key = (nodes, seed, params)
    dataset = _DATASET_CACHE.get(key)
    if dataset is None:
        dataset = PlanetLabDataset.generate(nodes, seed=seed, parameters=params)
        _cache_insert(_DATASET_CACHE, key, dataset)
    return dataset


def build_trace(
    scale: ExperimentScale,
    *,
    parameters: DatasetParameters | None = None,
) -> LatencyTrace:
    """Build (or fetch from cache) the ping trace for a workload scale."""
    params = parameters or DatasetParameters()
    key = (scale, params)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        dataset = build_dataset(scale.nodes, seed=scale.seed, parameters=params)
        trace = dataset.generate_trace(
            duration_s=scale.duration_s,
            ping_interval_s=scale.ping_interval_s,
            neighbors_per_node=scale.neighbors_per_node,
            seed=scale.seed,
        )
        _cache_insert(_TRACE_CACHE, key, trace)
    return trace


def replay_preset(
    trace: LatencyTrace,
    preset: str | NodeConfig,
    *,
    measurement_start_s: Optional[float] = None,
) -> ReplayResult:
    """Replay a trace with a named preset or an explicit configuration."""
    config = preset if isinstance(preset, NodeConfig) else NodeConfig.preset(preset)
    return replay_trace(trace, config, measurement_start_s=measurement_start_s)


def compare_presets(
    trace: LatencyTrace,
    presets: Mapping[str, str | NodeConfig],
    *,
    measurement_start_s: Optional[float] = None,
) -> Dict[str, SystemSnapshot]:
    """Replay the same trace under several configurations.

    Returns ``{label: SystemSnapshot}``; because every configuration sees
    the identical observation stream the snapshots are directly comparable,
    which is the paper's simulation methodology.
    """
    snapshots: Dict[str, SystemSnapshot] = {}
    for label, preset in presets.items():
        result = replay_preset(trace, preset, measurement_start_s=measurement_start_s)
        snapshots[label] = result.collector.system_snapshot()
    return snapshots


def heuristic_metrics(
    trace: LatencyTrace,
    heuristic_kind: str,
    heuristic_params: Mapping[str, Any],
    *,
    filter_kind: str = "mp",
    filter_params: Optional[Mapping[str, Any]] = None,
    measurement_start_s: Optional[float] = None,
) -> Dict[str, float]:
    """Replay with one heuristic setting and return its application-level metrics.

    This is the shared kernel of the Figure 8-12 sweeps: MP-filtered
    Vivaldi with a specific application-update heuristic, reporting the
    median (over nodes) of median relative error, the aggregate
    application-level instability, and the application update rate.
    """
    from repro.core.config import FilterConfig, HeuristicConfig

    if filter_params is None:
        filter_params = {"history": 4, "percentile": 25.0} if filter_kind == "mp" else {}
    config = NodeConfig(
        filter=FilterConfig(filter_kind, dict(filter_params)),
        heuristic=HeuristicConfig(heuristic_kind, dict(heuristic_params)),
    )
    result = replay_trace(trace, config, measurement_start_s=measurement_start_s)
    snapshot = result.collector.system_snapshot()
    return {
        "median_relative_error": snapshot.median_of_median_application_error or float("nan"),
        "p95_relative_error": snapshot.median_of_p95_application_error or float("nan"),
        "instability": snapshot.aggregate_application_instability,
        "system_instability": snapshot.aggregate_system_instability,
        "updates_per_node_per_s": snapshot.application_updates_per_node_per_s,
    }


def sweep(
    values: Sequence[Any],
    run_one: Callable[[Any], Mapping[str, float]],
    *,
    value_key: str = "value",
) -> List[Dict[str, float]]:
    """Run ``run_one`` for every parameter value and collect result rows.

    A tiny helper, but it keeps every sweep experiment's result shape
    identical: a list of flat dictionaries, one per parameter value, ready
    for :func:`repro.metrics.report.format_table`.
    """
    rows: List[Dict[str, float]] = []
    for value in values:
        row = dict(run_one(value))
        row[value_key] = value
        rows.append(row)
    return rows
