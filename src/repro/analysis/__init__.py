"""Experiment harness reproducing every table and figure of the paper.

* :mod:`repro.analysis.harness` -- shared workload construction (traces,
  datasets) with in-process caching, preset comparison helpers, and sweep
  utilities.
* :mod:`repro.analysis.textplot` -- ASCII rendering of CDFs, series and
  histograms so experiment output is readable without matplotlib.
* :mod:`repro.analysis.experiments` -- one module per paper figure/table;
  see ``EXPERIMENTS`` in that package for the registry.
"""

from __future__ import annotations

from repro.analysis.harness import (
    ExperimentScale,
    build_dataset,
    build_trace,
    compare_presets,
    sweep,
)
from repro.analysis.textplot import render_cdf, render_histogram, render_series

__all__ = [
    "ExperimentScale",
    "build_dataset",
    "build_trace",
    "compare_presets",
    "render_cdf",
    "render_histogram",
    "render_series",
    "sweep",
]
