"""ASCII rendering of CDFs, time series and histograms.

The paper's results are figures; the reproduction prints them.  These
helpers produce compact, monospace renderings good enough to see the shape
of a distribution (where a CDF's knee sits, whether a series trends down)
directly in a terminal or in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = ["render_cdf", "render_series", "render_histogram"]


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{value:.2e}"
    return f"{value:.3g}"


def render_cdf(
    samples_by_label: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    points: int = 12,
    log_x: bool = False,
    title: str = "",
) -> str:
    """Render one or more empirical CDFs as rows of percentile markers.

    Each labelled sample is summarised at evenly spaced cumulative
    fractions; a bar shows where each percentile falls within the global
    value range, so several distributions can be compared at a glance.
    """
    if not samples_by_label:
        raise ValueError("at least one labelled sample is required")
    lines: List[str] = []
    if title:
        lines.append(title)
    all_values = [
        float(v) for values in samples_by_label.values() for v in values if math.isfinite(v)
    ]
    if not all_values:
        raise ValueError("no finite samples to render")
    low, high = min(all_values), max(all_values)
    if log_x:
        low = max(low, 1e-9)

    def _position(value: float) -> int:
        if high == low:
            return 0
        if log_x:
            value = max(value, 1e-9)
            fraction = (math.log10(value) - math.log10(low)) / (
                math.log10(high) - math.log10(low)
            )
        else:
            fraction = (value - low) / (high - low)
        return int(round(fraction * (width - 1)))

    for label, values in samples_by_label.items():
        data = sorted(float(v) for v in values if math.isfinite(v))
        if not data:
            lines.append(f"{label}: (no data)")
            continue
        lines.append(f"{label} (n={len(data)}):")
        row = [" "] * width
        marks: List[Tuple[float, float]] = []
        for i in range(points):
            fraction = (i + 1) / points
            index = min(len(data) - 1, int(fraction * len(data)) - 1)
            value = data[max(0, index)]
            marks.append((fraction, value))
            row[_position(value)] = "*"
        lines.append("  |" + "".join(row) + "|")
        summary = "  " + "  ".join(
            f"p{int(f * 100):02d}={_format_value(v)}" for f, v in marks if f in (0.25, 0.5, 0.75, 0.95, 1.0)
        )
        lines.append(summary)
    lines.append(
        f"  x-range: [{_format_value(low)}, {_format_value(high)}]"
        + (" (log scale)" if log_x else "")
    )
    return "\n".join(lines)


def render_series(
    series: Sequence[Tuple[float, float]],
    *,
    width: int = 60,
    height: int = 12,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series as a scatter of asterisks on a character grid."""
    finite = [(float(x), float(y)) for x, y in series if math.isfinite(y)]
    if not finite:
        raise ValueError("the series has no finite points")
    xs = [x for x, _ in finite]
    ys = [y for _, y in finite]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y in finite:
        col = 0 if x_high == x_low else int((x - x_low) / (x_high - x_low) * (width - 1))
        row = 0 if y_high == y_low else int((y - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}: [{_format_value(y_low)}, {_format_value(y_high)}]")
    lines.extend("  |" + "".join(row) + "|" for row in grid)
    lines.append(f"  {x_label}: [{_format_value(x_low)}, {_format_value(x_high)}]")
    return "\n".join(lines)


def render_histogram(
    bucket_counts: Sequence[Tuple[Tuple[float, float], int]],
    *,
    width: int = 50,
    log_scale: bool = True,
    title: str = "",
) -> str:
    """Render bucketed counts as horizontal bars (log-scaled by default).

    Matches the presentation of the paper's Figure 2: latency buckets on
    one axis, log-scale frequency on the other.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    max_count = max((count for _, count in bucket_counts), default=0)
    if max_count == 0:
        return (title + "\n" if title else "") + "(no samples)"
    for (low, high), count in bucket_counts:
        if log_scale:
            length = (
                0
                if count == 0
                else max(1, int(math.log10(count) / math.log10(max(max_count, 10)) * width))
            )
        else:
            length = int(count / max_count * width)
        label = f"{low:>6.0f}-" + (f"{high:<6.0f}" if math.isfinite(high) else "inf   ")
        lines.append(f"  {label} |{'#' * length:<{width}}| {count}")
    return "\n".join(lines)
