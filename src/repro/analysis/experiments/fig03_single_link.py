"""Figure 3: histogram and time-scatter of a single link's observations.

The paper zooms into one representative PlanetLab link and shows that the
heavy tail is a per-link phenomenon, not an artefact of mixing links: the
link's common case is below 100 ms, yet order-of-magnitude outliers occur
and keep occurring throughout the three-day trace (they are not one burst).

The reproduction generates one heavy-tailed link's stream and reports the
same two views: a bucketed histogram and the outlier count per time
quarter, which demonstrates the outliers are spread over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis.harness import build_dataset
from repro.analysis.textplot import render_histogram
from repro.stats.distributions import histogram_counts

__all__ = ["Fig03Result", "run", "format_report", "main"]

#: 200 ms buckets up to 2.2 s, matching the paper's Figure 3 histogram.
FIG3_BUCKETS: Tuple[Tuple[float, float], ...] = tuple(
    (float(low), float(low + 200)) for low in range(0, 2200, 200)
) + (((2200.0, float("inf"))),)


@dataclass(frozen=True, slots=True)
class Fig03Result:
    """Single-link observation statistics."""

    link: Tuple[str, str]
    sample_count: int
    median_ms: float
    max_ms: float
    buckets: Tuple[Tuple[Tuple[float, float], int], ...]
    #: Number of samples more than 5x the link median, per time quarter.
    outliers_per_quarter: Tuple[int, int, int, int]
    spread_ratio: float


def run(
    nodes: int = 16,
    duration_s: float = 7200.0,
    ping_interval_s: float = 1.0,
    seed: int = 0,
) -> Fig03Result:
    """Generate one representative inter-region link stream and summarise it."""
    dataset = build_dataset(nodes, seed=seed)
    topology = dataset.topology
    # Pick a representative wide-area link: the first pair spanning regions,
    # mirroring the paper's choice of a typical (not pathological) link.
    link = None
    for a, b in topology.pairs():
        if topology.region_of(a) != topology.region_of(b):
            link = (a, b)
            break
    if link is None:  # single-region topology: fall back to any pair
        link = next(iter(topology.pairs()))

    stream = dataset.generate_link_stream(
        link[0], link[1], duration_s=duration_s, ping_interval_s=ping_interval_s
    )
    rtts = stream.rtts()
    median = float(np.percentile(rtts, 50.0))
    outlier_threshold = 5.0 * median
    quarters = np.array_split(rtts, 4)
    outliers_per_quarter = tuple(int((q > outlier_threshold).sum()) for q in quarters)
    spread = max(rtts) / max(median, 1e-3)
    return Fig03Result(
        link=link,
        sample_count=len(rtts),
        median_ms=median,
        max_ms=float(rtts.max()),
        buckets=tuple(histogram_counts(rtts, FIG3_BUCKETS)),
        outliers_per_quarter=outliers_per_quarter,  # type: ignore[arg-type]
        spread_ratio=float(spread),
    )


def format_report(result: Fig03Result) -> str:
    lines = [
        f"Figure 3: one link's raw observations ({result.link[0]} <-> {result.link[1]})",
        f"  samples                  : {result.sample_count}",
        f"  median latency           : {result.median_ms:.1f} ms",
        f"  maximum latency          : {result.max_ms:.0f} ms "
        f"({result.spread_ratio:.0f}x the median; paper: two orders of magnitude)",
        f"  outliers (>5x median) per time quarter: {list(result.outliers_per_quarter)} "
        "(spread over time, not one burst)",
        "",
        render_histogram(result.buckets, title="  Raw ping latency (ms) vs frequency (log bars)"),
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
