"""Figure 11: application-level suppression versus the raw MP filter.

With the parameters chosen from the sweeps (window 32, tau = 8 for ENERGY,
eps_r = 0.3 for RELATIVE), the paper compares the CDFs of median relative
error and instability for the raw MP filter against MP + ENERGY and
MP + RELATIVE.  Finding to reproduce: relative error is essentially
unchanged while the whole instability distribution shifts left (more
stable) -- the heuristics buy stability without an accuracy cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.harness import ExperimentScale, build_trace, replay_preset
from repro.analysis.textplot import render_cdf

__all__ = ["Fig11Result", "run", "format_report", "main"]


@dataclass(frozen=True, slots=True)
class Fig11Result:
    """Per-node application-level distributions for the three configurations."""

    node_count: int
    median_error: Dict[str, List[float]]
    node_instability: Dict[str, List[float]]
    median_error_by_config: Dict[str, float]
    median_instability_by_config: Dict[str, float]


def run(
    nodes: int = 20,
    duration_s: float = 1200.0,
    ping_interval_s: float = 2.0,
    seed: int = 0,
) -> Fig11Result:
    """Compare raw MP filtering with ENERGY- and RELATIVE-gated updates."""
    scale = ExperimentScale(
        nodes=nodes, duration_s=duration_s, ping_interval_s=ping_interval_s, seed=seed
    )
    trace = build_trace(scale)
    configurations = {
        "Raw MP Filter": "mp",
        "Energy+MP Filter": "mp_energy",
        "Relative+MP Filter": "mp_relative",
    }

    median_error: Dict[str, List[float]] = {}
    node_instability: Dict[str, List[float]] = {}
    for label, preset in configurations.items():
        collector = replay_preset(
            trace, preset, measurement_start_s=scale.measurement_start_s
        ).collector
        median_error[label] = sorted(
            collector.per_node_median_error(level="application").values()
        )
        node_instability[label] = sorted(
            collector.per_node_instability(level="application").values()
        )

    return Fig11Result(
        node_count=len(median_error["Raw MP Filter"]),
        median_error=median_error,
        node_instability=node_instability,
        median_error_by_config={
            label: float(np.median(values)) for label, values in median_error.items()
        },
        median_instability_by_config={
            label: float(np.median(values)) for label, values in node_instability.items()
        },
    )


def format_report(result: Fig11Result) -> str:
    lines = [
        f"Figure 11: application-level suppression vs the raw MP filter ({result.node_count} nodes)",
        "",
        render_cdf(result.median_error, title="  CDF over nodes: median relative error (application level)"),
        "",
        render_cdf(
            result.node_instability,
            title="  CDF over nodes: instability (application level, ms/s)",
            log_x=True,
        ),
        "",
        f"{'configuration':<20} {'median node error':>18} {'median node instability':>24}",
    ]
    for label in result.median_error_by_config:
        lines.append(
            f"{label:<20} {result.median_error_by_config[label]:>18.3f} "
            f"{result.median_instability_by_config[label]:>24.3f}"
        )
    lines.append(
        "  paper: error unchanged, instability distribution shifted substantially left."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
