"""Figure 10: all four heuristics across their threshold ranges.

The windowless heuristics (SYSTEM, APPLICATION) can only trade accuracy
directly for stability: with a small threshold they behave like the raw MP
filter, with a large one the application coordinate goes stale and error
explodes; only around tau = 16 do they approach the window-based
heuristics, and small parameter changes tip them into one failure mode or
the other.  The window-based heuristics (RELATIVE, ENERGY) stay accurate
and stable across their whole range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analysis.harness import ExperimentScale, build_trace, heuristic_metrics

__all__ = ["Fig10Result", "run", "format_report", "main"]

DEFAULT_MS_THRESHOLDS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
DEFAULT_ENERGY_THRESHOLDS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
DEFAULT_RELATIVE_THRESHOLDS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True, slots=True)
class Fig10Result:
    """Sweep rows for every heuristic, keyed by heuristic name."""

    window_size: int
    rows: Dict[str, Tuple[Dict[str, float], ...]]


def run(
    nodes: int = 16,
    duration_s: float = 900.0,
    ping_interval_s: float = 2.0,
    seed: int = 0,
    window_size: int = 32,
    ms_thresholds: Sequence[float] = DEFAULT_MS_THRESHOLDS,
    energy_thresholds: Sequence[float] = DEFAULT_ENERGY_THRESHOLDS,
    relative_thresholds: Sequence[float] = DEFAULT_RELATIVE_THRESHOLDS,
) -> Fig10Result:
    """Sweep the update threshold for all four heuristics."""
    scale = ExperimentScale(
        nodes=nodes, duration_s=duration_s, ping_interval_s=ping_interval_s, seed=seed
    )
    trace = build_trace(scale)

    sweeps: Dict[str, Tuple[str, Mapping[str, object], Sequence[float]]] = {
        "Energy": ("energy", {"window_size": window_size}, energy_thresholds),
        "Relative": ("relative", {"window_size": window_size}, relative_thresholds),
        "Application": ("application", {}, ms_thresholds),
        "System": ("system", {}, ms_thresholds),
    }
    threshold_key = {
        "energy": "threshold",
        "relative": "relative_threshold",
        "application": "threshold_ms",
        "system": "threshold_ms",
    }

    rows: Dict[str, Tuple[Dict[str, float], ...]] = {}
    for label, (kind, base_params, thresholds) in sweeps.items():
        sweep_rows: List[Dict[str, float]] = []
        for threshold in thresholds:
            params = dict(base_params)
            params[threshold_key[kind]] = float(threshold)
            row = heuristic_metrics(
                trace, kind, params, measurement_start_s=scale.measurement_start_s
            )
            row["threshold"] = float(threshold)
            sweep_rows.append(row)
        rows[label] = tuple(sweep_rows)

    return Fig10Result(window_size=window_size, rows=rows)


def format_report(result: Fig10Result) -> str:
    lines = [f"Figure 10: all four heuristics vs threshold (window={result.window_size})"]
    for label, sweep_rows in result.rows.items():
        lines.append(f"  {label}:")
        lines.append(
            f"  {'threshold':>10}  {'median rel err':>14}  {'instability':>12}"
        )
        for row in sweep_rows:
            lines.append(
                f"  {row['threshold']:>10.2f}  {row['median_relative_error']:>14.3f}  "
                f"{row['instability']:>12.2f}"
            )
        lines.append("")
    lines.append(
        "  paper: the windowless heuristics trade accuracy for stability sharply and are "
        "sensitive to the threshold; the window-based ones keep both metrics good."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
