"""Figure 9: window-size sweep for the window-based heuristics.

With the update thresholds fixed (tau = 8 for ENERGY, eps_r = 0.3 for
RELATIVE), the paper varies the change-detection window size exponentially
(2^2 .. 2^12) and reports median relative error, instability, and the
fraction of nodes whose application coordinate changes per second.
Findings to reproduce: large windows (roughly 2^5 .. 2^9) modestly improve
accuracy while steadily improving both stability and update frequency;
the paper picks 32 as a conservative choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.harness import ExperimentScale, build_trace, heuristic_metrics

__all__ = ["Fig09Result", "run", "format_report", "main"]

DEFAULT_WINDOW_SIZES: Tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True, slots=True)
class Fig09Result:
    """Sweep rows per heuristic, keyed by window size."""

    energy_threshold: float
    relative_threshold: float
    energy_rows: Tuple[Dict[str, float], ...]
    relative_rows: Tuple[Dict[str, float], ...]


def run(
    nodes: int = 16,
    duration_s: float = 900.0,
    ping_interval_s: float = 2.0,
    seed: int = 0,
    window_sizes: Sequence[int] = DEFAULT_WINDOW_SIZES,
    energy_threshold: float = 8.0,
    relative_threshold: float = 0.3,
) -> Fig09Result:
    """Sweep the change-detection window size for ENERGY and RELATIVE."""
    scale = ExperimentScale(
        nodes=nodes, duration_s=duration_s, ping_interval_s=ping_interval_s, seed=seed
    )
    trace = build_trace(scale)

    energy_rows: List[Dict[str, float]] = []
    relative_rows: List[Dict[str, float]] = []
    for window in window_sizes:
        row = heuristic_metrics(
            trace,
            "energy",
            {"threshold": energy_threshold, "window_size": int(window)},
            measurement_start_s=scale.measurement_start_s,
        )
        row["window_size"] = int(window)
        energy_rows.append(row)

        row = heuristic_metrics(
            trace,
            "relative",
            {"relative_threshold": relative_threshold, "window_size": int(window)},
            measurement_start_s=scale.measurement_start_s,
        )
        row["window_size"] = int(window)
        relative_rows.append(row)

    return Fig09Result(
        energy_threshold=energy_threshold,
        relative_threshold=relative_threshold,
        energy_rows=tuple(energy_rows),
        relative_rows=tuple(relative_rows),
    )


def _format_rows(label: str, rows: Sequence[Dict[str, float]]) -> List[str]:
    lines = [
        f"  {label}:",
        f"  {'window':>8}  {'median rel err':>14}  {'instability':>12}  {'updates/node/s':>15}",
    ]
    for row in rows:
        lines.append(
            f"  {int(row['window_size']):>8}  {row['median_relative_error']:>14.3f}  "
            f"{row['instability']:>12.2f}  {row['updates_per_node_per_s']:>15.4f}"
        )
    return lines


def format_report(result: Fig09Result) -> str:
    lines = [
        "Figure 9: window-size sweep "
        f"(ENERGY tau={result.energy_threshold}, RELATIVE eps_r={result.relative_threshold})"
    ]
    lines.extend(_format_rows("ENERGY", result.energy_rows))
    lines.append("")
    lines.extend(_format_rows("RELATIVE", result.relative_rows))
    lines.append(
        "  paper: large windows improve all three metrics; 32 chosen as a conservative setting."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
