"""Figure 6: confidence building on a low-latency cluster.

On a local cluster, latency observations (0.4-1.2 ms with a small tail) sit
below the measurement tooling's precision.  Jitter then shows up as large
*relative* error, which keeps eroding Vivaldi's confidence: the paper shows
one node's confidence hovering around 0.75 without help, and pinned at 1.0
once a 3 ms margin of error ("confidence building") treats any prediction
within the margin as exact.

The reproduction runs three nodes over a :class:`ClusterLink` observation
model for ten minutes (one sample per second) and reports the confidence
time series with and without the margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
from repro.core.node import CoordinateNode
from repro.core.vivaldi import VivaldiConfig
from repro.latency.linkmodel import ClusterLink
from repro.stats.sampling import derive_rng

__all__ = ["Fig06Result", "run", "format_report", "main"]


@dataclass(frozen=True, slots=True)
class Fig06Result:
    """Confidence trajectories with and without confidence building."""

    duration_s: float
    #: (time_s, confidence) series of the observed node, per configuration.
    series: Dict[str, Tuple[Tuple[float, float], ...]]
    #: Mean confidence after the start-up minute, per configuration.
    steady_state_confidence: Dict[str, float]


def _cluster_config(error_margin_ms: float) -> NodeConfig:
    return NodeConfig(
        vivaldi=VivaldiConfig(error_margin_ms=error_margin_ms),
        filter=FilterConfig("none"),
        heuristic=HeuristicConfig("always"),
    )


def _run_cluster(
    config: NodeConfig,
    duration_s: float,
    sample_interval_s: float,
    seed: int,
) -> List[Tuple[float, float]]:
    """Three nodes sample each other round-robin; track node 0's confidence."""
    node_ids = ["cluster0", "cluster1", "cluster2"]
    nodes = {node_id: CoordinateNode(node_id, config) for node_id in node_ids}
    links = {
        frozenset(pair): ClusterLink()
        for pair in (("cluster0", "cluster1"), ("cluster0", "cluster2"), ("cluster1", "cluster2"))
    }
    rng = derive_rng(seed, "fig06")
    series: List[Tuple[float, float]] = []
    steps = int(duration_s / sample_interval_s)
    for step in range(steps):
        time_s = step * sample_interval_s
        for index, node_id in enumerate(node_ids):
            # Round-robin through the other two nodes.
            peers = [n for n in node_ids if n != node_id]
            peer_id = peers[step % len(peers)]
            link = links[frozenset((node_id, peer_id))]
            rtt = link.sample(rng, time_s)
            node = nodes[node_id]
            peer = nodes[peer_id]
            node.observe(peer_id, peer.system_coordinate, peer.error_estimate, rtt)
        series.append((time_s, nodes["cluster0"].confidence))
    return series


def run(
    duration_s: float = 600.0,
    sample_interval_s: float = 1.0,
    error_margin_ms: float = 3.0,
    seed: int = 0,
) -> Fig06Result:
    """Compare confidence trajectories with and without the error margin."""
    series: Dict[str, Tuple[Tuple[float, float], ...]] = {}
    steady: Dict[str, float] = {}
    for label, margin in (
        ("Confidence Building", error_margin_ms),
        ("No Confidence Building", 0.0),
    ):
        trajectory = _run_cluster(_cluster_config(margin), duration_s, sample_interval_s, seed)
        series[label] = tuple(trajectory)
        after_startup = [c for t, c in trajectory if t >= 60.0]
        steady[label] = float(np.mean(after_startup)) if after_startup else float("nan")
    return Fig06Result(
        duration_s=duration_s, series=series, steady_state_confidence=steady
    )


def format_report(result: Fig06Result) -> str:
    lines = [
        f"Figure 6: confidence building on a low-latency cluster ({result.duration_s:.0f}s run)",
        f"{'configuration':<26}  {'steady-state confidence':>24}",
    ]
    for label, value in result.steady_state_confidence.items():
        lines.append(f"{label:<26}  {value:>24.3f}")
    lines.append(
        "  paper: ~1.0 with confidence building, wavering around ~0.75 without."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
