"""Figure 12: the APPLICATION/CENTROID hybrid.

Section V-G asks whether the window-based heuristics' success comes merely
from setting the application coordinate to a centroid of recent values.  To
test it, APPLICATION's threshold trigger is combined with a centroid of the
last 32 system coordinates.  Finding to reproduce: the hybrid is more
stable than plain APPLICATION and SYSTEM, but -- like all the windowless
heuristics -- it is not robust: accuracy collapses once the threshold grows,
so it only achieves high stability at the expense of accuracy.  Knowing
*when* to update (the change-detection windows) is the essential part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.harness import ExperimentScale, build_trace, heuristic_metrics

__all__ = ["Fig12Result", "run", "format_report", "main"]

DEFAULT_THRESHOLDS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True, slots=True)
class Fig12Result:
    """Threshold sweep rows for APPLICATION/CENTROID (and plain APPLICATION)."""

    window_size: int
    centroid_rows: Tuple[Dict[str, float], ...]
    application_rows: Tuple[Dict[str, float], ...]


def run(
    nodes: int = 16,
    duration_s: float = 900.0,
    ping_interval_s: float = 2.0,
    seed: int = 0,
    window_size: int = 32,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
) -> Fig12Result:
    """Sweep the threshold for APPLICATION/CENTROID, with APPLICATION for contrast."""
    scale = ExperimentScale(
        nodes=nodes, duration_s=duration_s, ping_interval_s=ping_interval_s, seed=seed
    )
    trace = build_trace(scale)

    centroid_rows: List[Dict[str, float]] = []
    application_rows: List[Dict[str, float]] = []
    for tau in thresholds:
        row = heuristic_metrics(
            trace,
            "application_centroid",
            {"threshold_ms": float(tau), "window_size": window_size},
            measurement_start_s=scale.measurement_start_s,
        )
        row["threshold"] = float(tau)
        centroid_rows.append(row)

        row = heuristic_metrics(
            trace,
            "application",
            {"threshold_ms": float(tau)},
            measurement_start_s=scale.measurement_start_s,
        )
        row["threshold"] = float(tau)
        application_rows.append(row)

    return Fig12Result(
        window_size=window_size,
        centroid_rows=tuple(centroid_rows),
        application_rows=tuple(application_rows),
    )


def _format_rows(label: str, rows: Sequence[Dict[str, float]]) -> List[str]:
    lines = [
        f"  {label}:",
        f"  {'threshold':>10}  {'median rel err':>14}  {'instability':>12}",
    ]
    for row in rows:
        lines.append(
            f"  {row['threshold']:>10.1f}  {row['median_relative_error']:>14.3f}  "
            f"{row['instability']:>12.2f}"
        )
    return lines


def format_report(result: Fig12Result) -> str:
    lines = [
        f"Figure 12: APPLICATION/CENTROID threshold sweep (centroid window={result.window_size})"
    ]
    lines.extend(_format_rows("APPLICATION/CENTROID", result.centroid_rows))
    lines.append("")
    lines.extend(_format_rows("APPLICATION (plain, for contrast)", result.application_rows))
    lines.append(
        "  paper: the hybrid is more stable than plain APPLICATION/SYSTEM but still trades "
        "accuracy for stability and is fragile to the threshold choice."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
