"""Figure 8: threshold sweep for the window-based heuristics.

With window size held at 32, the paper varies the update threshold of
ENERGY (tau from 1 to 256) and RELATIVE (eps_r from 0.1 to 0.9) and reports
the median of median relative error and the instability.  Findings to
reproduce: instability falls steadily as the threshold rises (near-linearly
for RELATIVE); accuracy stays flat until a knee (tau = 8 for ENERGY,
eps_r = 0.3 for RELATIVE) and only then starts to degrade -- i.e. the
window-based heuristics buy stability "for free" up to those settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.harness import ExperimentScale, build_trace, heuristic_metrics

__all__ = ["Fig08Result", "run", "format_report", "main"]

DEFAULT_ENERGY_THRESHOLDS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
DEFAULT_RELATIVE_THRESHOLDS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True, slots=True)
class Fig08Result:
    """Sweep rows for both heuristics."""

    window_size: int
    energy_rows: Tuple[Dict[str, float], ...]
    relative_rows: Tuple[Dict[str, float], ...]


def run(
    nodes: int = 16,
    duration_s: float = 900.0,
    ping_interval_s: float = 2.0,
    seed: int = 0,
    window_size: int = 32,
    energy_thresholds: Sequence[float] = DEFAULT_ENERGY_THRESHOLDS,
    relative_thresholds: Sequence[float] = DEFAULT_RELATIVE_THRESHOLDS,
) -> Fig08Result:
    """Sweep the update threshold for ENERGY and RELATIVE."""
    scale = ExperimentScale(
        nodes=nodes, duration_s=duration_s, ping_interval_s=ping_interval_s, seed=seed
    )
    trace = build_trace(scale)

    energy_rows: List[Dict[str, float]] = []
    for tau in energy_thresholds:
        row = heuristic_metrics(
            trace,
            "energy",
            {"threshold": float(tau), "window_size": window_size},
            measurement_start_s=scale.measurement_start_s,
        )
        row["threshold"] = float(tau)
        energy_rows.append(row)

    relative_rows: List[Dict[str, float]] = []
    for eps in relative_thresholds:
        row = heuristic_metrics(
            trace,
            "relative",
            {"relative_threshold": float(eps), "window_size": window_size},
            measurement_start_s=scale.measurement_start_s,
        )
        row["threshold"] = float(eps)
        relative_rows.append(row)

    return Fig08Result(
        window_size=window_size,
        energy_rows=tuple(energy_rows),
        relative_rows=tuple(relative_rows),
    )


def _format_rows(label: str, rows: Sequence[Dict[str, float]]) -> List[str]:
    lines = [
        f"  {label}: threshold sweep (window size fixed)",
        f"  {'threshold':>10}  {'median rel err':>14}  {'instability':>12}  {'updates/node/s':>15}",
    ]
    for row in rows:
        lines.append(
            f"  {row['threshold']:>10.2f}  {row['median_relative_error']:>14.3f}  "
            f"{row['instability']:>12.2f}  {row['updates_per_node_per_s']:>15.4f}"
        )
    return lines


def format_report(result: Fig08Result) -> str:
    lines = [f"Figure 8: threshold sweep for ENERGY and RELATIVE (window={result.window_size})"]
    lines.extend(_format_rows("ENERGY", result.energy_rows))
    lines.append("")
    lines.extend(_format_rows("RELATIVE", result.relative_rows))
    lines.append(
        "  paper: instability declines with threshold; accuracy flat until tau=8 (ENERGY) "
        "and eps_r=0.3 (RELATIVE)."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
