"""Figure 2: frequency histogram of raw latency measurements.

The paper collects 43 million application-level ping samples between 269
PlanetLab nodes over three days and reports a log-scale frequency histogram
whose key property is the heavy tail: 0.4% of all measurements exceed one
second -- longer than even inter-continental baselines -- while the bulk of
the mass sits below a few hundred milliseconds.

The reproduction generates a synthetic trace with the same per-link
statistical structure and reports the same bucketed histogram plus the
fraction of samples above one second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.harness import ExperimentScale, build_trace
from repro.analysis.textplot import render_histogram
from repro.stats.distributions import LOG_BUCKETS_MS, histogram_counts

__all__ = ["Fig02Result", "run", "format_report", "main"]


@dataclass(frozen=True, slots=True)
class Fig02Result:
    """Histogram of all raw latency observations in the trace."""

    total_samples: int
    buckets: Tuple[Tuple[Tuple[float, float], int], ...]
    fraction_above_1s: float
    fraction_above_3s: float
    median_ms: float
    p99_ms: float


def run(
    nodes: int = 32,
    duration_s: float = 1800.0,
    ping_interval_s: float = 1.0,
    seed: int = 0,
) -> Fig02Result:
    """Generate the trace and bucket its raw latency observations."""
    scale = ExperimentScale(
        nodes=nodes, duration_s=duration_s, ping_interval_s=ping_interval_s, seed=seed
    )
    trace = build_trace(scale)
    rtts = trace.rtts()
    buckets = tuple(histogram_counts(rtts, LOG_BUCKETS_MS))
    total = len(rtts)
    above_1s = float((rtts >= 1000.0).sum()) / total
    above_3s = float((rtts >= 3000.0).sum()) / total
    import numpy as np

    return Fig02Result(
        total_samples=total,
        buckets=buckets,
        fraction_above_1s=above_1s,
        fraction_above_3s=above_3s,
        median_ms=float(np.percentile(rtts, 50.0)),
        p99_ms=float(np.percentile(rtts, 99.0)),
    )


def format_report(result: Fig02Result) -> str:
    lines = [
        "Figure 2: raw latency histogram (synthetic PlanetLab-like trace)",
        f"  total samples        : {result.total_samples}",
        f"  median latency       : {result.median_ms:.1f} ms",
        f"  99th percentile      : {result.p99_ms:.1f} ms",
        f"  fraction > 1 second  : {result.fraction_above_1s * 100:.2f}%   (paper: ~0.4%)",
        f"  fraction >= 3 seconds: {result.fraction_above_3s * 100:.3f}%",
        "",
        render_histogram(result.buckets, title="  Raw latency (ms) vs frequency (log bars)"),
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
