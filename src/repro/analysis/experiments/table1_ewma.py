"""Table I: EWMA filters versus the MP filter and no filter.

The paper's Table I reports the median (over nodes) of median relative
error and the aggregate instability for five per-link filter settings:

=============  =====================  ============
Filter         Median relative error  Instability
=============  =====================  ============
MP filter      0.07  (-42%)           415  (-47%)
No filter      0.12  (0%)             783  (0%)
EWMA a=0.02    0.27  (+125%)          490  (-37%)
EWMA a=0.10    2.48  (+1960%)         1907 (+143%)
EWMA a=0.20    5.70  (+4650%)         3783 (+383%)
=============  =====================  ============

The qualitative shape to reproduce: the MP filter improves both metrics;
EWMAs -- even with an unusually small alpha -- are *worse* than no filter on
accuracy because heavy-tailed outliers are absorbed into the average
instead of being discarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.harness import ExperimentScale, build_trace, compare_presets
from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
from repro.metrics.collector import SystemSnapshot
from repro.metrics.report import ComparisonRow, comparison_table, format_table

__all__ = ["Table1Result", "run", "format_report", "main", "PAPER_TABLE1"]

#: The paper's reported values, for side-by-side reporting in EXPERIMENTS.md.
PAPER_TABLE1: Dict[str, Tuple[float, float]] = {
    "MP Filter": (0.07, 415.0),
    "No Filter": (0.12, 783.0),
    "EWMA a=0.02": (0.27, 490.0),
    "EWMA a=0.10": (2.48, 1907.0),
    "EWMA a=0.20": (5.70, 3783.0),
}


@dataclass(frozen=True, slots=True)
class Table1Result:
    """Measured error/instability per filter, with changes vs. no filter."""

    rows: Tuple[ComparisonRow, ...]
    snapshots: Dict[str, SystemSnapshot]

    def row(self, label: str) -> ComparisonRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)


def _configurations() -> Dict[str, NodeConfig]:
    mp = NodeConfig.preset("mp")
    raw = NodeConfig.preset("raw")
    def ewma(alpha: float) -> NodeConfig:
        return NodeConfig(
            filter=FilterConfig("ewma", {"alpha": alpha}),
            heuristic=HeuristicConfig("always"),
        )
    return {
        "MP Filter": mp,
        "No Filter": raw,
        "EWMA a=0.02": ewma(0.02),
        "EWMA a=0.10": ewma(0.10),
        "EWMA a=0.20": ewma(0.20),
    }


def run(
    nodes: int = 24,
    duration_s: float = 1800.0,
    ping_interval_s: float = 2.0,
    seed: int = 0,
) -> Table1Result:
    """Replay the same trace under every Table I filter configuration."""
    scale = ExperimentScale(
        nodes=nodes, duration_s=duration_s, ping_interval_s=ping_interval_s, seed=seed
    )
    trace = build_trace(scale)
    snapshots = compare_presets(
        trace, _configurations(), measurement_start_s=scale.measurement_start_s
    )
    rows = tuple(
        comparison_table(snapshots, baseline="No Filter", level="system")
    )
    return Table1Result(rows=rows, snapshots=snapshots)


def format_report(result: Table1Result) -> str:
    lines = [
        "Table I: exponentially-weighted histories vs the MP filter",
        format_table(
            result.rows,
            columns=[
                "label",
                "median_relative_error",
                "instability",
                "error_change_percent",
                "instability_change_percent",
            ],
        ),
        "",
        "  paper reference: MP 0.07/-42%, No Filter 0.12, EWMA 0.02 worse than no filter,",
        "  EWMA 0.10 and 0.20 dramatically worse on both metrics.",
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
