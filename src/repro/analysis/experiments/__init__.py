"""One experiment module per table and figure in the paper's evaluation.

Every module exposes:

* ``run(...)`` -- execute the experiment at a configurable scale and return
  a result object with the numbers the paper reports;
* ``format_report(result)`` -- render the result as paper-style text;
* ``main()`` -- run at default scale and print the report (so each module
  is directly executable: ``python -m repro.analysis.experiments.fig05_filter_cdfs``).

``EXPERIMENTS`` maps experiment identifiers ("fig02", "table1", ...) to the
modules' ``run`` callables for programmatic access; the benchmark suite
iterates the same registry.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis.experiments import (
    fig02_raw_histogram,
    fig03_single_link,
    fig04_history_size,
    fig05_filter_cdfs,
    fig06_confidence,
    fig07_drift,
    fig08_threshold_sweep,
    fig09_window_sweep,
    fig10_heuristic_compare,
    fig11_app_vs_raw,
    fig12_app_centroid,
    fig13_deployment_cdfs,
    fig14_timeseries,
    table1_ewma,
)

EXPERIMENTS: Dict[str, Callable] = {
    "fig02": fig02_raw_histogram.run,
    "fig03": fig03_single_link.run,
    "fig04": fig04_history_size.run,
    "fig05": fig05_filter_cdfs.run,
    "table1": table1_ewma.run,
    "fig06": fig06_confidence.run,
    "fig07": fig07_drift.run,
    "fig08": fig08_threshold_sweep.run,
    "fig09": fig09_window_sweep.run,
    "fig10": fig10_heuristic_compare.run,
    "fig11": fig11_app_vs_raw.run,
    "fig12": fig12_app_centroid.run,
    "fig13": fig13_deployment_cdfs.run,
    "fig14": fig14_timeseries.run,
}

__all__ = ["EXPERIMENTS"]
