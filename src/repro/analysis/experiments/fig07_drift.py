"""Figure 7: coordinates drift to reflect real network change.

Before suppressing application updates, the paper asks whether updates are
needed at all -- perhaps coordinates just oscillate or rotate after
convergence.  Figure 7 answers no: over three hours, four nodes from four
regions move in consistent directions, tracking genuine changes in the
underlying network.  The application coordinate therefore *must* be
refreshed over time.

The reproduction replays a trace whose links include baseline shifts and a
slow drift (route changes), tracks one node per region, and reports each
tracked node's net displacement, path length, and direction consistency
(net / path: close to 1 means a consistent direction rather than
oscillation around a fixed point).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.harness import ExperimentScale, build_dataset
from repro.core.config import NodeConfig
from repro.core.coordinate import Coordinate
from repro.latency.planetlab import DatasetParameters
from repro.netsim.replay import replay_trace

__all__ = ["Fig07Result", "run", "format_report", "main"]


@dataclass(frozen=True, slots=True)
class NodeDrift:
    """Movement summary for one tracked node."""

    node_id: str
    region: str
    net_displacement_ms: float
    path_length_ms: float

    @property
    def consistency(self) -> float:
        """Net / path: 1.0 = perfectly consistent direction, ~0 = oscillation."""
        if self.path_length_ms <= 0.0:
            return 0.0
        return self.net_displacement_ms / self.path_length_ms


@dataclass(frozen=True, slots=True)
class Fig07Result:
    """Drift summaries for the tracked nodes."""

    tracked: Tuple[NodeDrift, ...]
    measurement_start_s: float
    duration_s: float

    def mean_net_displacement(self) -> float:
        if not self.tracked:
            return 0.0
        return sum(n.net_displacement_ms for n in self.tracked) / len(self.tracked)


def run(
    nodes: int = 24,
    duration_s: float = 3600.0,
    ping_interval_s: float = 2.0,
    seed: int = 0,
    snapshot_interval_s: float = 60.0,
) -> Fig07Result:
    """Track per-region node coordinates over a drifting network."""
    # A universe where network change is common: half the links shift their
    # baseline during the run and drift slowly in between.
    parameters = DatasetParameters(
        shifting_fraction=0.5, drift_fraction_per_hour=0.10
    )
    dataset = build_dataset(nodes, seed=seed, parameters=parameters)
    trace = dataset.generate_trace(
        duration_s=duration_s, ping_interval_s=ping_interval_s, seed=seed
    )
    topology = dataset.topology

    # One tracked node per region (the paper tracks US West, US East,
    # Europe and China).
    tracked_ids: Dict[str, str] = {}
    for region in topology.regions():
        hosts = topology.hosts_in_region(region)
        if hosts:
            tracked_ids[hosts[0]] = region

    measurement_start_s = duration_s / 2.0
    snapshots: Dict[str, List[Tuple[float, Coordinate]]] = {nid: [] for nid in tracked_ids}
    next_snapshot: Dict[str, float] = {nid: measurement_start_s for nid in tracked_ids}

    def on_record(time_s: float, node) -> None:
        node_id = node.node_id
        if node_id not in tracked_ids:
            return
        if time_s >= next_snapshot[node_id]:
            snapshots[node_id].append((time_s, node.system_coordinate))
            next_snapshot[node_id] = time_s + snapshot_interval_s

    replay_trace(
        trace,
        NodeConfig.preset("mp"),
        measurement_start_s=measurement_start_s,
        on_record=on_record,
    )

    drifts: List[NodeDrift] = []
    for node_id, region in tracked_ids.items():
        track = snapshots[node_id]
        if len(track) < 2:
            continue
        path = sum(
            track[i][1].euclidean_distance(track[i + 1][1]) for i in range(len(track) - 1)
        )
        net = track[0][1].euclidean_distance(track[-1][1])
        drifts.append(
            NodeDrift(
                node_id=node_id,
                region=region,
                net_displacement_ms=net,
                path_length_ms=path,
            )
        )

    return Fig07Result(
        tracked=tuple(drifts),
        measurement_start_s=measurement_start_s,
        duration_s=duration_s,
    )


def format_report(result: Fig07Result) -> str:
    lines = [
        "Figure 7: coordinate drift over time (post-convergence window "
        f"{result.measurement_start_s:.0f}s - {result.duration_s:.0f}s)",
        f"{'node':<10} {'region':<10} {'net move (ms)':>14} {'path (ms)':>12} {'consistency':>12}",
    ]
    for drift in result.tracked:
        lines.append(
            f"{drift.node_id:<10} {drift.region:<10} {drift.net_displacement_ms:>14.1f} "
            f"{drift.path_length_ms:>12.1f} {drift.consistency:>12.2f}"
        )
    lines.append(
        "  paper: coordinates keep moving in consistent directions (no mere rotation/"
        "oscillation), so the application coordinate must be refreshed over time."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
