"""Figure 5: accuracy and stability CDFs, MP filter versus no filter.

The paper replays a four-hour slice of its trace through Vivaldi with and
without the MP(4, 25) filter and reports, for the second half of the run:

* the CDF over nodes of median relative error,
* the CDF over nodes of 95th-percentile relative error,
* the CDF over nodes of coordinate change (stability),
* the CDF of aggregate instability, whose heavy tail (spurious samples
  throwing off the whole space) the filter cuts by three orders of
  magnitude.

The headline qualitative claims to reproduce: the filter at least doubles
accuracy and stability for most nodes and removes the instability tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.harness import ExperimentScale, build_trace, replay_preset
from repro.analysis.textplot import render_cdf

__all__ = ["Fig05Result", "run", "format_report", "main"]


@dataclass(frozen=True, slots=True)
class Fig05Result:
    """Per-node distributions for the filtered and unfiltered runs."""

    node_count: int
    median_error: Dict[str, List[float]]
    p95_error: Dict[str, List[float]]
    node_instability: Dict[str, List[float]]
    median_error_improvement: float
    instability_improvement: float
    tail_reduction_factor: float


def run(
    nodes: int = 24,
    duration_s: float = 1800.0,
    ping_interval_s: float = 2.0,
    seed: int = 0,
) -> Fig05Result:
    """Replay the same trace with and without the MP filter and compare."""
    scale = ExperimentScale(
        nodes=nodes, duration_s=duration_s, ping_interval_s=ping_interval_s, seed=seed
    )
    trace = build_trace(scale)

    results = {}
    for label, preset in (("No Filter", "raw"), ("MP Filter", "mp")):
        results[label] = replay_preset(
            trace, preset, measurement_start_s=scale.measurement_start_s
        ).collector

    median_error = {
        label: sorted(collector.per_node_median_error(level="system").values())
        for label, collector in results.items()
    }
    p95_error = {
        label: sorted(collector.per_node_error_percentile(95.0, level="system").values())
        for label, collector in results.items()
    }
    node_instability = {
        label: sorted(collector.per_node_instability(level="system").values())
        for label, collector in results.items()
    }

    def _median(values: List[float]) -> float:
        return float(np.median(values)) if values else float("nan")

    raw_med_err = _median(median_error["No Filter"])
    mp_med_err = _median(median_error["MP Filter"])
    raw_instab = _median(node_instability["No Filter"])
    mp_instab = _median(node_instability["MP Filter"])
    # Tail reduction: worst-case per-node instability ratio (the paper's
    # three-orders-of-magnitude claim refers to the tail of the aggregate
    # instability distribution).
    raw_tail = max(node_instability["No Filter"], default=float("nan"))
    mp_tail = max(node_instability["MP Filter"], default=float("nan"))

    return Fig05Result(
        node_count=len(median_error["MP Filter"]),
        median_error=median_error,
        p95_error=p95_error,
        node_instability=node_instability,
        median_error_improvement=(raw_med_err - mp_med_err) / raw_med_err if raw_med_err else 0.0,
        instability_improvement=(raw_instab - mp_instab) / raw_instab if raw_instab else 0.0,
        tail_reduction_factor=raw_tail / mp_tail if mp_tail else float("inf"),
    )


def format_report(result: Fig05Result) -> str:
    lines = [
        f"Figure 5: MP filter vs no filter ({result.node_count} nodes, second half of run)",
        "",
        render_cdf(result.median_error, title="  CDF over nodes: median relative error"),
        "",
        render_cdf(result.p95_error, title="  CDF over nodes: 95th percentile relative error"),
        "",
        render_cdf(
            result.node_instability,
            title="  CDF over nodes: coordinate change per second (ms/s)",
            log_x=True,
        ),
        "",
        f"  median-node error improvement      : {result.median_error_improvement * 100:.0f}% "
        "(paper: filter at least doubles accuracy)",
        f"  median-node instability improvement: {result.instability_improvement * 100:.0f}%",
        f"  instability tail reduction         : {result.tail_reduction_factor:.1f}x "
        "(paper: ~3 orders of magnitude on the aggregate tail)",
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
