"""Figure 4: MP-filter prediction error versus history size.

For each link, the MP filter's output after each observation is used as the
prediction for the *next* observation; the relative error between
prediction and outcome, aggregated per link at the 95th percentile, is the
quantity boxplotted in the paper's Figure 4.  The paper's finding: a
history of only four observations (with the 25th percentile) minimises the
error, and longer histories do not help because they are slower to track
genuine changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.harness import build_dataset
from repro.core.filters import MovingPercentileFilter
from repro.latency.planetlab import DatasetParameters
from repro.metrics.accuracy import relative_error
from repro.stats.percentile import BoxplotSummary, boxplot_summary
from repro.stats.sampling import derive_rng

__all__ = ["Fig04Result", "run", "format_report", "main", "prediction_errors_for_history"]

DEFAULT_HISTORY_SIZES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True, slots=True)
class Fig04Result:
    """Per-history-size boxplot of per-link 95th-percentile prediction error."""

    percentile: float
    link_count: int
    samples_per_link: int
    summaries: Dict[int, BoxplotSummary]

    def best_history(self) -> int:
        """The history size with the lowest median per-link error."""
        return min(self.summaries, key=lambda h: self.summaries[h].median)


def prediction_errors_for_history(
    streams: Sequence[Sequence[float]], history: int, percentile: float
) -> List[float]:
    """Per-link 95th-percentile prediction error for one filter setting."""
    per_link: List[float] = []
    for stream in streams:
        if len(stream) < 2:
            continue
        mp = MovingPercentileFilter(history=history, percentile=percentile)
        errors: List[float] = []
        prediction = mp.update(stream[0])
        for observation in stream[1:]:
            if prediction is not None:
                errors.append(relative_error(prediction, observation))
            prediction = mp.update(observation)
        if errors:
            per_link.append(float(np.percentile(errors, 95.0)))
    return per_link


def run(
    nodes: int = 24,
    links: int = 60,
    samples_per_link: int = 900,
    percentile: float = 25.0,
    history_sizes: Sequence[int] = DEFAULT_HISTORY_SIZES,
    sample_spacing_s: float = 240.0,
    seed: int = 0,
) -> Fig04Result:
    """Evaluate the MP filter's predictive error across history sizes.

    In the paper's trace each node pings one peer per second in round-robin
    order, so successive observations of the *same* link are minutes apart
    and a long history spans many hours of wall-clock time
    (``sample_spacing_s`` reproduces that spacing).  The link universe also
    includes non-stationarity (baseline shifts from route changes, slow
    drift): that is what penalises long histories -- on a perfectly
    stationary link a longer history can only help, but real links change,
    and a filter stuffed with stale samples adapts slowly.
    """
    dataset = build_dataset(
        nodes,
        seed=seed,
        parameters=DatasetParameters(
            shifting_fraction=0.6, drift_fraction_per_hour=0.005
        ),
    )
    pairs = list(dataset.topology.pairs())
    rng = derive_rng(seed, "fig04")
    if links < len(pairs):
        indices = rng.choice(len(pairs), size=links, replace=False)
        pairs = [pairs[int(i)] for i in indices]

    streams: List[List[float]] = []
    for a, b in pairs:
        stream = dataset.generate_link_stream(
            a,
            b,
            duration_s=float(samples_per_link) * sample_spacing_s,
            ping_interval_s=sample_spacing_s,
        )
        streams.append([record.rtt_ms for record in stream])

    summaries: Dict[int, BoxplotSummary] = {}
    for history in history_sizes:
        errors = prediction_errors_for_history(streams, history, percentile)
        summaries[history] = boxplot_summary(errors)

    return Fig04Result(
        percentile=percentile,
        link_count=len(streams),
        samples_per_link=samples_per_link,
        summaries=summaries,
    )


def format_report(result: Fig04Result) -> str:
    lines = [
        "Figure 4: per-link 95th-percentile prediction error vs MP history size "
        f"(p={result.percentile:.0f}, {result.link_count} links, "
        f"{result.samples_per_link} samples/link)",
        f"{'history':>8}  {'median':>8}  {'q1':>8}  {'q3':>8}  {'max':>8}  {'outliers':>8}",
    ]
    for history, summary in sorted(result.summaries.items()):
        lines.append(
            f"{history:>8}  {summary.median:>8.3f}  {summary.lower_quartile:>8.3f}  "
            f"{summary.upper_quartile:>8.3f}  {summary.maximum:>8.1f}  {summary.outlier_count:>8}"
        )
    lines.append(
        f"  best history size: {result.best_history()}   (paper: 4, with p=25 slightly better than p=50)"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
