"""Figure 14: error and instability over time during the deployment run.

The paper plots, for the four PlanetLab configurations, the median
95th-percentile relative error and the mean instability in ten-minute
intervals over the four-hour run.  The findings to reproduce: a convergence
period of roughly half an hour, after which the filtered + ENERGY
configuration holds a much smoother and more accurate space than raw
Vivaldi, and the two enhancements have visibly distinct effects (the filter
mainly lowers error, the heuristic mainly lowers instability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.experiments.fig13_deployment_cdfs import DEPLOYMENT_CONFIGURATIONS
from repro.analysis.harness import build_dataset
from repro.analysis.textplot import render_series
from repro.core.config import NodeConfig
from repro.netsim.runner import SimulationConfig, run_simulation

__all__ = ["Fig14Result", "run", "format_report", "main"]


@dataclass(frozen=True, slots=True)
class Fig14Result:
    """Per-configuration time series of error and instability."""

    interval_s: float
    #: label -> list of {time_s, median_relative_error, mean_instability}.
    series: Dict[str, Tuple[Dict[str, float], ...]]
    convergence_time_s: Dict[str, float]
    final_error: Dict[str, float]
    final_instability: Dict[str, float]


def _convergence_time(series: List[Dict[str, float]]) -> float:
    """First interval start after which error stays within 1.5x its final level."""
    finite = [row for row in series if np.isfinite(row["median_relative_error"])]
    if not finite:
        return float("nan")
    final = float(np.median([row["median_relative_error"] for row in finite[-3:]]))
    threshold = final * 1.5 + 1e-9
    for index, row in enumerate(finite):
        if all(later["median_relative_error"] <= threshold for later in finite[index:]):
            return row["time_s"]
    return finite[-1]["time_s"]


def run(
    nodes: int = 30,
    duration_s: float = 3600.0,
    interval_s: float = 300.0,
    seed: int = 0,
) -> Fig14Result:
    """Run the deployment configurations and extract per-interval metrics."""
    dataset = build_dataset(nodes, seed=seed)
    series: Dict[str, Tuple[Dict[str, float], ...]] = {}
    convergence: Dict[str, float] = {}
    final_error: Dict[str, float] = {}
    final_instability: Dict[str, float] = {}

    for label, preset in DEPLOYMENT_CONFIGURATIONS.items():
        config = SimulationConfig(
            nodes=nodes,
            duration_s=duration_s,
            measurement_start_s=0.0,
            node_config=NodeConfig.preset(preset),
            seed=seed,
        )
        result = run_simulation(config, dataset=dataset)
        rows = result.collector.time_series(interval_s, level="application")
        series[label] = tuple(rows)
        convergence[label] = _convergence_time(rows)
        finite = [row for row in rows if np.isfinite(row["median_relative_error"])]
        final_error[label] = finite[-1]["median_relative_error"] if finite else float("nan")
        final_instability[label] = rows[-1]["mean_instability"] if rows else float("nan")

    return Fig14Result(
        interval_s=interval_s,
        series=series,
        convergence_time_s=convergence,
        final_error=final_error,
        final_instability=final_instability,
    )


def format_report(result: Fig14Result) -> str:
    lines = [f"Figure 14: error and instability over time ({result.interval_s:.0f}s intervals)"]
    for label, rows in result.series.items():
        lines.append(f"  {label}:")
        lines.append(f"  {'t (s)':>8}  {'median rel err':>14}  {'mean instability':>17}")
        for row in rows:
            err = row["median_relative_error"]
            err_text = f"{err:>14.3f}" if np.isfinite(err) else f"{'-':>14}"
            lines.append(
                f"  {row['time_s']:>8.0f}  {err_text}  {row['mean_instability']:>17.3f}"
            )
        lines.append(
            f"    convergence time ~{result.convergence_time_s[label]:.0f}s, "
            f"final error {result.final_error[label]:.3f}, "
            f"final instability {result.final_instability[label]:.3f}"
        )
        lines.append("")
    lines.append(
        "  paper: ~30 minute convergence; Energy+MP ends with the smoothest, most accurate space."
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
