"""Figure 13: the "live deployment" comparison (full protocol simulation).

Section VI runs the complete implementation on ~270 PlanetLab nodes for
four hours, with and without the MP filter, both sides using the ENERGY
application heuristic, and reports CDFs over nodes of 95th-percentile
relative error and of instability.  Headline numbers:

* with the MP filter only 14% of nodes see a 95th-percentile relative error
  above 1, versus 62% without it;
* ENERGY keeps application instability below even the raw filter's minimum
  91% of the time;
* combined, the enhancements cut the median 95th-percentile relative error
  by 54% and instability by 96%.

The reproduction substitutes the live deployment with the discrete-event
protocol simulation (gossip, 5-second sampling, message loss) over the
synthetic PlanetLab dataset -- the paper itself validates that its simulator
matches its deployment, so the protocol-level simulation is the faithful
stand-in (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.harness import build_dataset
from repro.analysis.textplot import render_cdf
from repro.core.config import NodeConfig
from repro.netsim.runner import SimulationConfig, run_simulation

__all__ = ["Fig13Result", "run", "format_report", "main", "DEPLOYMENT_CONFIGURATIONS"]

#: The four configurations the paper runs side by side.
DEPLOYMENT_CONFIGURATIONS: Dict[str, str] = {
    "Raw No Filter": "raw",
    "Energy+No Filter": "raw_energy",
    "Raw MP Filter": "mp",
    "Energy+MP Filter": "mp_energy",
}


@dataclass(frozen=True, slots=True)
class Fig13Result:
    """Per-node application-level distributions per configuration."""

    node_count: int
    p95_error: Dict[str, List[float]]
    node_instability: Dict[str, List[float]]
    fraction_error_above_1: Dict[str, float]
    error_improvement_percent: float
    instability_improvement_percent: float
    energy_below_raw_min_fraction: float


def run(
    nodes: int = 30,
    duration_s: float = 3600.0,
    sampling_interval_s: float = 5.0,
    seed: int = 0,
) -> Fig13Result:
    """Run the four deployment configurations over one shared network universe."""
    dataset = build_dataset(nodes, seed=seed)

    p95_error: Dict[str, List[float]] = {}
    node_instability: Dict[str, List[float]] = {}
    for label, preset in DEPLOYMENT_CONFIGURATIONS.items():
        config = SimulationConfig(
            nodes=nodes,
            duration_s=duration_s,
            node_config=NodeConfig.preset(preset),
            seed=seed,
        )
        result = run_simulation(config, dataset=dataset)
        collector = result.collector
        p95_error[label] = sorted(
            collector.per_node_error_percentile(95.0, level="application").values()
        )
        node_instability[label] = sorted(
            collector.per_node_instability(level="application").values()
        )

    fraction_above_1 = {
        label: float(np.mean([v > 1.0 for v in values])) if values else float("nan")
        for label, values in p95_error.items()
    }

    def _median(values: List[float]) -> float:
        return float(np.median(values)) if values else float("nan")

    baseline_error = _median(p95_error["Raw No Filter"])
    enhanced_error = _median(p95_error["Energy+MP Filter"])
    baseline_instability = _median(node_instability["Raw No Filter"])
    enhanced_instability = _median(node_instability["Energy+MP Filter"])

    raw_mp_min = min(node_instability["Raw MP Filter"], default=float("nan"))
    energy_values = node_instability["Energy+MP Filter"]
    below_raw_min = (
        float(np.mean([v < raw_mp_min for v in energy_values])) if energy_values else float("nan")
    )

    return Fig13Result(
        node_count=len(p95_error["Energy+MP Filter"]),
        p95_error=p95_error,
        node_instability=node_instability,
        fraction_error_above_1=fraction_above_1,
        error_improvement_percent=(
            (baseline_error - enhanced_error) / baseline_error * 100.0 if baseline_error else 0.0
        ),
        instability_improvement_percent=(
            (baseline_instability - enhanced_instability) / baseline_instability * 100.0
            if baseline_instability
            else 0.0
        ),
        energy_below_raw_min_fraction=below_raw_min,
    )


def format_report(result: Fig13Result) -> str:
    lines = [
        f"Figure 13: protocol-simulation deployment comparison ({result.node_count} nodes)",
        "",
        render_cdf(result.p95_error, title="  CDF over nodes: 95th percentile relative error"),
        "",
        render_cdf(
            result.node_instability,
            title="  CDF over nodes: instability (application level, ms/s)",
            log_x=True,
        ),
        "",
        "  fraction of nodes with 95th-pct error > 1:",
    ]
    for label, fraction in result.fraction_error_above_1.items():
        lines.append(f"    {label:<20} {fraction * 100:5.1f}%")
    lines.extend(
        [
            "  (paper: 14% with the MP filter vs 62% without)",
            f"  median 95th-pct error improvement (Energy+MP vs Raw No Filter): "
            f"{result.error_improvement_percent:.0f}%   (paper: 54%)",
            f"  median instability improvement: {result.instability_improvement_percent:.0f}%   "
            "(paper: 96%)",
            f"  fraction of Energy+MP nodes below the raw filter's minimum instability: "
            f"{result.energy_below_raw_min_fraction * 100:.0f}%   (paper: 91%)",
        ]
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry point
    print(format_report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
