"""The serial execution kernel: one :class:`ScenarioSpec` -> one result.

This is the single code path shared by every execution strategy: the
engine's worker processes call :func:`run_scenario` on their shard exactly
as the serial fallback does, which is what makes parallel output
byte-identical to serial output.  The kernel is a pure function of the
spec: datasets, traces, protocol RNG and workload RNG are all derived from
the spec's seed, so re-running a spec in a different process (or on a
different worker count) reproduces the same numbers.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.harness import ExperimentScale, build_dataset, build_trace
from repro.core.coordinate import Coordinate
from repro.latency.planetlab import PlanetLabDataset
from repro.metrics.collector import MetricsCollector
from repro.netsim.replay import replay_trace
from repro.netsim.runner import SimulationConfig, run_simulation
from repro.netsim.network import NetworkConfig
from repro.netsim.protocol import ProtocolConfig
from repro.obs import get_registry, span
from repro.overlay.knn import CoordinateIndex
from repro.scenarios.spec import ScenarioSpec
from repro.stats.sampling import derive_rng

from repro.engine.results import ScenarioResult

__all__ = ["run_scenario", "ScenarioRun"]


class ScenarioRun:
    """A result plus the live collector it was derived from.

    ``collector`` is a :class:`~repro.metrics.collector.MetricsCollector`
    for the scalar paths and the duck-typed
    :class:`~repro.netsim.batch.BatchMetrics` for the vectorized backend;
    both answer the same queries.  ``profile`` holds per-phase wall-clock
    timings when the caller asked for them: the batch engine's tick phases
    (vectorized runs) and, for ``queries`` workloads on any backend, the
    snapshot-publish and query-serving phases -- timing is wall-clock and
    therefore never part of the result itself.
    """

    __slots__ = ("result", "collector", "profile")

    def __init__(
        self,
        result: ScenarioResult,
        collector: MetricsCollector,
        profile: Optional[Dict[str, float]] = None,
    ) -> None:
        self.result = result
        self.collector = collector
        self.profile = profile


def run_scenario(spec: ScenarioSpec, *, collect_profile: bool = False) -> ScenarioRun:
    """Execute one scenario and return its result and metrics collector."""
    started = time.perf_counter()
    profile: Optional[Dict[str, float]] = None
    parameters = spec.network.to_parameters()
    measurement_start_s = spec.resolved_measurement_start_s()
    # Coarse phase spans on the process-wide registry: no-ops unless the
    # caller enabled spans (repro.obs.set_spans_enabled), so deterministic
    # results and hot-path cost are untouched by default.
    with span("kernel.build_dataset", nodes=spec.network.nodes):
        dataset = build_dataset(
            spec.network.nodes, seed=spec.seed, parameters=parameters
        )

    counters: Dict[str, Optional[float]] = {}
    workload_payload: Dict[str, Any] = {}
    #: (host_ids, components, heights) of the final application-level
    #: coordinates when the run produced them as arrays (vectorized
    #: backend); lets the queries workload stay in array land end to end.
    coordinate_arrays: Optional[Tuple[List[str], Any, Any]] = None
    #: Live-serving harness (queries-live workload): created before the
    #: simulation so epochs stream into the running daemon, consumed by
    #: the workload stage, and closed on every path out of this function.
    live_harness = None

    if spec.mode == "replay":
        scale = ExperimentScale(
            nodes=spec.network.nodes,
            duration_s=spec.duration_s,
            ping_interval_s=spec.ping_interval_s,
            neighbors_per_node=spec.neighbors_per_node,
            seed=spec.seed,
        )
        trace = build_trace(scale, parameters=parameters)
        on_record, finish_drift = _drift_probe(spec, dataset, measurement_start_s)
        with span("kernel.simulate", backend="replay"):
            replay = replay_trace(
                trace,
                spec.node_config(),
                measurement_start_s=measurement_start_s,
                on_record=on_record,
            )
        collector = replay.collector
        counters["records_processed"] = float(replay.records_processed)
        final_coordinates = replay.application_coordinates()
        if finish_drift is not None:
            workload_payload.update(finish_drift())
    else:
        config = SimulationConfig(
            nodes=spec.network.nodes,
            duration_s=spec.duration_s,
            measurement_start_s=measurement_start_s,
            node_config=spec.node_config(),
            protocol=(
                ProtocolConfig(sampling_interval_s=spec.sampling_interval_s)
                if spec.sampling_interval_s is not None
                else ProtocolConfig()
            ),
            network=NetworkConfig(loss_probability=spec.loss_probability),
            dataset=parameters,
            churn=spec.churn.to_config() if spec.churn is not None else None,
            bootstrap_neighbors=spec.bootstrap_neighbors,
            seed=spec.seed,
        )
        if spec.backend == "vectorized":
            from repro.netsim.batch import run_batch_simulation
            from repro.obs.health import HealthTracker

            publish_kwargs: Dict[str, Any] = {}
            if spec.workload.kind == "queries-live":
                # The live-serving daemon must be up before the first
                # epoch streams out of the simulation; it stays up (and
                # under load) until the workload stage finishes with it.
                live_harness = _build_live_harness(spec)
                live_harness.__enter__()
                publish_kwargs = live_harness.publish_kwargs()
            # Streaming coordinate health against the dataset's RTT
            # oracle: everything it records is a pure function of the
            # spec's seed and the (deterministic) epoch stream, so the
            # health_* metrics below stay byte-identical across worker
            # counts like every other scenario metric.
            ticks = max(1, int(config.duration_s // config.protocol.sampling_interval_s))
            health_tracker = HealthTracker(
                seed=spec.seed, true_rtt=dataset.true_rtt_ms
            )
            publish_kwargs["health"] = health_tracker
            publish_kwargs["health_every_ticks"] = max(1, ticks // 8)
            try:
                with span("kernel.simulate", backend="vectorized"):
                    sim = run_batch_simulation(
                        config,
                        dataset=dataset,
                        backend="vectorized",
                        collect_profile=collect_profile,
                        **publish_kwargs,
                    )
            except BaseException:
                if live_harness is not None:
                    live_harness.__exit__(None, None, None)
                    live_harness = None
                raise
            collector = sim.metrics
            counters["samples_attempted"] = float(sim.samples_attempted)
            counters["samples_completed"] = float(sim.samples_completed)
            counters["ticks"] = float(sim.ticks)
            counters["churn_transitions"] = float(sim.churn_transitions)
            counters.update(health_tracker.metrics_summary())
            workload_payload["health"] = health_tracker.summary()
            final_coordinates = sim.application_coordinates()
            if sim.final_application_arrays is not None:
                components, heights = sim.final_application_arrays
                coordinate_arrays = (sim.host_ids, components, heights)
            profile = sim.profile if collect_profile else None
            if spec.strict_equivalence:
                oracle = run_batch_simulation(config, dataset=dataset, backend="scalar")
                _assert_strict_equivalence(spec, sim, oracle)
                counters["strict_equivalence"] = 1.0
        else:
            with span("kernel.simulate", backend="scalar"):
                sim = run_simulation(config, dataset=dataset)
            collector = sim.collector
            counters["samples_attempted"] = float(sim.samples_attempted)
            counters["samples_completed"] = float(sim.samples_completed)
            counters["events_processed"] = float(sim.events_processed)
            counters["churn_transitions"] = float(sim.churn_transitions)
            final_coordinates = sim.application_coordinates()

    metrics: Dict[str, Optional[float]] = dict(asdict(collector.system_snapshot()))
    metrics.update(counters)
    workload_profile: Optional[Dict[str, float]] = {} if collect_profile else None
    try:
        with span("kernel.workload", kind=spec.workload.kind):
            metrics.update(
                _run_workload(
                    spec,
                    dataset,
                    final_coordinates,
                    workload_payload,
                    coordinate_arrays=coordinate_arrays,
                    profile=workload_profile,
                    live_harness=live_harness,
                )
            )
    finally:
        if live_harness is not None:
            live_harness.__exit__(None, None, None)
    if collect_profile and workload_profile:
        profile = dict(profile) if profile else {}
        profile.update(workload_profile)

    per_node = {
        "median_application_error": collector.per_node_median_error(level="application"),
        "p95_application_error": collector.per_node_error_percentile(
            95.0, level="application"
        ),
        "p95_system_error": collector.per_node_error_percentile(95.0, level="system"),
        "application_instability": collector.per_node_instability(level="application"),
    }

    result = ScenarioResult(
        name=spec.name,
        spec_hash=spec.spec_hash(),
        seed=spec.seed,
        mode=spec.mode,
        metrics=metrics,
        per_node=per_node,
        workload=workload_payload,
        elapsed_s=time.perf_counter() - started,
    )
    get_registry().counter(
        "kernel_scenarios_total", "Scenarios executed in this process.", mode=spec.mode
    ).inc()
    return ScenarioRun(result, collector, profile)


# ----------------------------------------------------------------------
# Strict backend equivalence (the vectorized backend's safety net)
# ----------------------------------------------------------------------
def _assert_strict_equivalence(spec, vectorized, oracle) -> None:
    """Fail loudly unless the two batch backends produced identical output.

    "Identical" means byte-identical: the same system snapshot, the same
    per-node error and instability distributions, and bit-equal final
    coordinates at both levels.  Anything less would let a vectorization
    bug silently shift published numbers.
    """
    from repro.engine.results import canonical_json

    problems = []
    snap_v = canonical_json(asdict(vectorized.metrics.system_snapshot()))
    snap_o = canonical_json(asdict(oracle.metrics.system_snapshot()))
    if snap_v != snap_o:
        problems.append("system snapshots differ")
    for label, query in (
        ("median application error", lambda m: m.per_node_median_error(level="application")),
        ("p95 system error", lambda m: m.per_node_error_percentile(95.0, level="system")),
        ("application instability", lambda m: m.per_node_instability(level="application")),
    ):
        if query(vectorized.metrics) != query(oracle.metrics):
            problems.append(f"per-node {label} distributions differ")
    for level, left, right in (
        ("system", vectorized.final_system, oracle.final_system),
        ("application", vectorized.final_application, oracle.final_application),
    ):
        for host_id, coord_v, coord_o in zip(vectorized.host_ids, left, right):
            if (
                tuple(coord_v.components) != tuple(coord_o.components)
                or coord_v.height != coord_o.height
            ):
                problems.append(
                    f"{level} coordinate of {host_id} diverged: "
                    f"{coord_v.components} (h={coord_v.height}) != "
                    f"{coord_o.components} (h={coord_o.height})"
                )
                break
    if problems:
        raise ValueError(
            f"scenario {spec.name!r}: vectorized backend diverged from the "
            "scalar oracle under strict_equivalence: " + "; ".join(problems)
        )


# ----------------------------------------------------------------------
# Drift probe (the Figure 7 methodology)
# ----------------------------------------------------------------------
def _drift_probe(spec, dataset, measurement_start_s):
    """Build the per-region coordinate tracker for the drift workload.

    Returns ``(on_record, finish)``: the replay hook and a closure
    producing the workload payload, or ``(None, None)`` for other
    workloads.  Mirrors ``fig07_drift`` exactly -- one tracked node per
    region, snapshots every ``snapshot_interval_s`` once the measurement
    window opens -- so the ported scenario reproduces the figure's numbers.
    """
    if spec.workload.kind != "drift":
        return None, None
    snapshot_interval_s = float(spec.workload.param("snapshot_interval_s"))
    topology = dataset.topology
    tracked_ids: Dict[str, str] = {}
    for region in topology.regions():
        hosts = topology.hosts_in_region(region)
        if hosts:
            tracked_ids[hosts[0]] = region

    snapshots: Dict[str, List[Tuple[float, Coordinate]]] = {nid: [] for nid in tracked_ids}
    next_snapshot: Dict[str, float] = {nid: measurement_start_s for nid in tracked_ids}

    def on_record(time_s: float, node) -> None:
        node_id = node.node_id
        if node_id not in tracked_ids:
            return
        if time_s >= next_snapshot[node_id]:
            snapshots[node_id].append((time_s, node.system_coordinate))
            next_snapshot[node_id] = time_s + snapshot_interval_s

    def finish() -> Dict[str, Any]:
        tracked: List[Dict[str, Any]] = []
        for node_id, region in tracked_ids.items():
            track = snapshots[node_id]
            if len(track) < 2:
                continue
            path = sum(
                track[i][1].euclidean_distance(track[i + 1][1])
                for i in range(len(track) - 1)
            )
            net = track[0][1].euclidean_distance(track[-1][1])
            tracked.append(
                {
                    "node_id": node_id,
                    "region": region,
                    "net_displacement_ms": float(net),
                    "path_length_ms": float(path),
                    "consistency": float(net / path) if path > 0.0 else 0.0,
                }
            )
        return {"tracked": tracked}

    return on_record, finish


# ----------------------------------------------------------------------
# Application-level workloads over the final coordinates
# ----------------------------------------------------------------------
def _build_live_harness(spec: ScenarioSpec):
    """The queries-live serving harness configured from the workload spec."""
    from repro.server.live import LiveServingHarness

    workload = spec.workload
    return LiveServingHarness(
        shards=int(workload.param("shards")),
        index_kind=str(workload.param("index")),
        publish_every_ticks=int(workload.param("publish_every_ticks")),
        live_count=int(workload.param("live_count")),
        measured_count=int(workload.param("count")),
        mix=str(workload.param("mix")),
        k=int(workload.param("k")),
        radius_ms=float(workload.param("radius_ms")),
        concurrency=int(workload.param("concurrency")),
        cache_entries=int(workload.param("cache_entries")),
        seed=spec.seed,
        source=spec.name,
        chaos_spec=str(workload.param("chaos")),
    )


def _run_workload(
    spec: ScenarioSpec,
    dataset: PlanetLabDataset,
    coordinates: Dict[str, Coordinate],
    workload_payload: Dict[str, Any],
    *,
    coordinate_arrays: Optional[Tuple[List[str], Any, Any]] = None,
    profile: Optional[Dict[str, float]] = None,
    live_harness=None,
) -> Dict[str, Optional[float]]:
    kind = spec.workload.kind
    if kind == "queries-live":
        assert live_harness is not None, "queries-live runs need a live harness"
        live_metrics, live_payload = live_harness.finish(profile)
        workload_payload.update(live_payload)
        return live_metrics
    if kind == "drift":
        tracked = workload_payload.get("tracked", [])
        if not tracked:
            return {"drift_mean_net_displacement_ms": None, "drift_mean_consistency": None}
        return {
            "drift_mean_net_displacement_ms": float(
                sum(t["net_displacement_ms"] for t in tracked) / len(tracked)
            ),
            "drift_mean_consistency": float(
                sum(t["consistency"] for t in tracked) / len(tracked)
            ),
        }
    if kind == "knn":
        return _knn_workload(spec, dataset, coordinates)
    if kind == "placement":
        return _placement_workload(spec, dataset, coordinates)
    if kind == "queries":
        return _queries_workload(
            spec,
            coordinates,
            workload_payload,
            coordinate_arrays=coordinate_arrays,
            profile=profile,
        )
    return {}


def _knn_workload(spec, dataset, coordinates) -> Dict[str, Optional[float]]:
    """kNN queries: how well do coordinate-space neighbors match true RTTs?

    Reports the mean overlap between the coordinate-predicted and the true
    ``k`` nearest sets, and the mean latency stretch of the predicted set
    (mean true RTT of predicted neighbors over mean true RTT of the
    optimal ones; 1.0 = perfect).
    """
    hosts = sorted(coordinates)
    k = min(int(spec.workload.param("k")), len(hosts) - 1)
    queries = int(spec.workload.param("queries"))
    if k < 1 or queries < 1:
        return {"knn_mean_overlap": None, "knn_mean_stretch": None}

    index = CoordinateIndex()
    index.update_many(coordinates)
    end_time = spec.duration_s
    rng = derive_rng(spec.seed, "workload-knn")

    overlaps: List[float] = []
    stretches: List[float] = []
    for _ in range(queries):
        target = hosts[int(rng.integers(0, len(hosts)))]
        predicted = [node_id for node_id, _ in index.nearest_to_node(target, k=k)]
        by_true_rtt = sorted(
            (dataset.true_rtt_ms(target, other, end_time), other)
            for other in hosts
            if other != target
        )
        true_best = [other for _, other in by_true_rtt[:k]]
        optimal_mean = sum(rtt for rtt, _ in by_true_rtt[:k]) / k
        predicted_mean = (
            sum(dataset.true_rtt_ms(target, other, end_time) for other in predicted) / k
        )
        overlaps.append(len(set(predicted) & set(true_best)) / k)
        stretches.append(predicted_mean / optimal_mean if optimal_mean > 0.0 else 1.0)
    return {
        "knn_mean_overlap": float(sum(overlaps) / len(overlaps)),
        "knn_mean_stretch": float(sum(stretches) / len(stretches)),
    }


def _queries_workload(
    spec: ScenarioSpec,
    coordinates: Dict[str, Coordinate],
    workload_payload: Dict[str, Any],
    *,
    coordinate_arrays: Optional[Tuple[List[str], Any, Any]] = None,
    profile: Optional[Dict[str, float]] = None,
) -> Dict[str, Optional[float]]:
    """Serve a deterministic query mix from the coordinate query service.

    The final coordinates are committed into a
    :class:`~repro.service.snapshot.SnapshotStore` and a seeded query
    stream is driven through the batching planner twice -- once on the
    configured spatial index and once on the linear oracle -- so the cell
    reports both the service's behaviour (cache hit rate, per-kind counts)
    and an end-to-end index/oracle agreement check.  The planner's clock
    and timer are pinned to a logical zero so every reported number is a
    pure function of the spec: engine results stay byte-identical across
    worker counts and cache states.

    When the run produced its coordinates as arrays (vectorized backend),
    the indexed leg publishes them through the zero-copy
    ``SnapshotStore.from_arrays`` path -- with the ``dense`` index the
    whole dataset -> simulation -> snapshot -> answered-workload pipeline
    never materialises per-node objects.  The oracle leg always uses the
    object-based ingest, so whenever the indexed leg served from arrays
    the agreement check also guards the array bridge -- including the
    ``index='linear'`` configuration, where the two legs differ only in
    ingest path.  ``profile`` (when given) receives the snapshot-publish
    and query-serving wall-clock phases.
    """
    from repro.service.planner import QueryPlanner
    from repro.service.snapshot import SnapshotStore
    from repro.service.workload import generate_queries, run_workload

    hosts = sorted(coordinates)
    if len(hosts) < 2:
        return {"query_count": None, "query_cache_hit_rate": None}
    workload = spec.workload
    queries = generate_queries(
        hosts,
        int(workload.param("count")),
        mix=str(workload.param("mix")),
        seed=spec.seed,
        k=int(workload.param("k")),
        radius_ms=float(workload.param("radius_ms")),
    )

    def record_phase(phase: str, seconds: float) -> None:
        if profile is not None:
            profile[phase] = round(profile.get(phase, 0.0) + seconds, 6)

    def serve(index_kind: str, *, use_arrays: bool):
        started = time.perf_counter()
        if use_arrays and coordinate_arrays is not None:
            host_ids, components, heights = coordinate_arrays
            store = SnapshotStore.from_arrays(
                host_ids,
                components,
                heights,
                index_kind=index_kind,
                source=spec.name,
            )
        else:
            store = SnapshotStore.from_coordinates(
                coordinates, index_kind=index_kind, source=spec.name
            )
        record_phase("snapshot_publish_s", time.perf_counter() - started)
        planner = QueryPlanner(
            store,
            cache_entries=int(workload.param("cache_entries")),
            clock=lambda: 0.0,
            timer=lambda: 0.0,
        )
        started = time.perf_counter()
        report = run_workload(
            planner,
            queries,
            batch_size=int(workload.param("batch_size")),
            timer=lambda: 0.0,
        )
        record_phase(
            "query_serve_s" if use_arrays else "oracle_serve_s",
            time.perf_counter() - started,
        )
        return report

    index_kind = str(workload.param("index"))
    served_from_arrays = coordinate_arrays is not None
    indexed = serve(index_kind, use_arrays=True)
    # With the linear index configured AND no array bridge in play, the
    # oracle run would compare the linear scan with itself; skip the
    # duplicate work.  When the indexed leg served from arrays, the
    # object-ingest oracle leg is what validates the bridge, so it runs
    # even for index='linear'.
    oracle = (
        indexed
        if index_kind == "linear" and not served_from_arrays
        else serve("linear", use_arrays=False)
    )
    if profile is not None:
        profile["query_count"] = float(indexed.query_count)
    neighbor_rtts = [
        neighbor["predicted_rtt_ms"]
        for result in indexed.results
        if result.query.kind in ("knn", "nearest")
        for neighbor in result.payload["neighbors"]
    ]
    workload_payload.update(
        {
            "index_kind": index_kind,
            "checksum": indexed.checksum,
            "stats": dict(indexed.stats),
        }
    )
    return {
        "query_count": float(indexed.query_count),
        "query_cache_hit_rate": float(indexed.cache_hit_rate),
        "query_index_linear_agreement": float(indexed.checksum == oracle.checksum),
        "query_mean_neighbor_rtt_ms": (
            float(sum(neighbor_rtts) / len(neighbor_rtts)) if neighbor_rtts else None
        ),
    }


def _placement_workload(spec, dataset, coordinates) -> Dict[str, Optional[float]]:
    """Operator placement: choose hosts by coordinates, score by true RTTs.

    For each synthetic operator (a set of endpoint hosts), the host
    minimising the *predicted* endpoint cost is selected and scored
    against the host minimising the *true* endpoint cost.
    """
    hosts = sorted(coordinates)
    operators = int(spec.workload.param("operators"))
    endpoints = min(int(spec.workload.param("endpoints")), len(hosts))
    if operators < 1 or endpoints < 1:
        return {"placement_mean_stretch": None, "placement_mean_cost_ms": None}

    end_time = spec.duration_s
    rng = derive_rng(spec.seed, "workload-placement")

    def true_cost(host: str, endpoint_hosts: List[str]) -> float:
        return sum(
            dataset.true_rtt_ms(host, endpoint, end_time)
            for endpoint in endpoint_hosts
            if endpoint != host
        )

    stretches: List[float] = []
    costs: List[float] = []
    for _ in range(operators):
        chosen_indexes = rng.choice(len(hosts), size=endpoints, replace=False)
        endpoint_hosts = [hosts[int(i)] for i in chosen_indexes]
        chosen = min(
            hosts,
            key=lambda host: sum(
                coordinates[host].distance(coordinates[endpoint])
                for endpoint in endpoint_hosts
            ),
        )
        chosen_cost = true_cost(chosen, endpoint_hosts)
        optimal_cost = min(true_cost(host, endpoint_hosts) for host in hosts)
        costs.append(chosen_cost)
        stretches.append(chosen_cost / optimal_cost if optimal_cost > 0.0 else 1.0)
    return {
        "placement_mean_stretch": float(sum(stretches) / len(stretches)),
        "placement_mean_cost_ms": float(sum(costs) / len(costs)),
    }
