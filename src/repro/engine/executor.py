"""Sharded scenario execution across worker processes.

:func:`execute` fans a list of scenario specs (typically a
:class:`~repro.scenarios.grid.ScenarioGrid` expansion) out across
``multiprocessing`` workers.  Design points:

* **One kernel.**  Workers and the serial fallback both call
  :func:`repro.engine.kernel.run_scenario`, a pure function of the spec,
  so parallel results are byte-identical to serial results (asserted by
  ``tests/test_engine.py`` and ``benchmarks/bench_engine_scaling.py``).
* **Specs travel as data.**  Cells are shipped to workers as ``to_dict``
  payloads and rebuilt there, avoiding any pickling coupling to the
  scenario classes and keeping the worker interface stable.
* **Incremental re-runs.**  With a cache directory, completed cells are
  looked up by (spec hash, seed) before any worker is spawned; only the
  missing cells execute.
* **Collector merging.**  With ``keep_collectors=True`` each shard's
  :class:`~repro.metrics.collector.MetricsCollector` is returned to the
  parent and :meth:`EngineReport.merged_collector` exposes the grid-wide
  view (cells are namespaced by name since shards reuse host ids).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.metrics.collector import MetricsCollector
from repro.scenarios.spec import ScenarioSpec

from repro.engine.cache import ResultCache
from repro.engine.kernel import run_scenario
from repro.engine.results import ScenarioResult, results_canonical_json

__all__ = ["EngineReport", "execute"]


@dataclass(slots=True)
class EngineReport:
    """Outcome of one :func:`execute` call."""

    #: Per-cell results, in the order the specs were given (regardless of
    #: completion order across workers).
    results: List[ScenarioResult]
    #: Worker processes used (1 = serial).
    workers: int
    #: Cells served from the cache.
    cache_hits: int
    #: Wall-clock time of the whole execution.
    elapsed_s: float
    #: Shard collectors (same order as ``results``) when requested.
    collectors: Optional[List[MetricsCollector]] = field(default=None, repr=False)

    def canonical_json(self) -> str:
        """Byte-stable JSON over all results (for determinism checks)."""
        return results_canonical_json(self.results)

    def merged_collector(self) -> MetricsCollector:
        """Grid-wide metrics view over all shard collectors."""
        if self.collectors is None:
            raise ValueError(
                "collectors were not kept; run execute(..., keep_collectors=True)"
            )
        return MetricsCollector.merge(
            self.collectors, prefixes=[result.name for result in self.results]
        )


def _run_cell(
    task: Tuple[int, Dict[str, Any], bool]
) -> Tuple[int, Dict[str, Any], Optional[MetricsCollector]]:
    """Worker entry point: rebuild the spec, run it, ship the result back."""
    index, payload, keep_collector = task
    run = run_scenario(ScenarioSpec.from_dict(payload))
    return index, run.result.to_dict(), run.collector if keep_collector else None


def execute(
    specs: Sequence[ScenarioSpec],
    *,
    workers: int = 1,
    cache_dir: Optional[Path | str] = None,
    keep_collectors: bool = False,
    mp_context: str = "spawn",
) -> EngineReport:
    """Run every spec and return ordered results.

    Parameters
    ----------
    workers:
        Worker *processes*; ``1`` runs everything serially in-process (the
        reference path).  The pool size never exceeds the number of cells
        that actually need to run.
    cache_dir:
        Enables the (spec hash, seed) result cache.  Ignored while
        ``keep_collectors`` is set, because collectors cannot be served
        from the JSON cache; results are still *written* for later runs.
    keep_collectors:
        Return each shard's :class:`MetricsCollector` for grid-level
        merging.  Costs one pickled collector per cell of transfer.
    mp_context:
        ``multiprocessing`` start method.  The default ``spawn`` works
        everywhere; ``fork`` starts faster on Linux.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    started = time.perf_counter()
    specs = list(specs)
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    results: List[Optional[ScenarioResult]] = [None] * len(specs)
    collectors: List[Optional[MetricsCollector]] = [None] * len(specs)
    cache_hits = 0

    pending: List[Tuple[int, Dict[str, Any], bool]] = []
    for index, spec in enumerate(specs):
        cached = cache.get(spec) if cache is not None and not keep_collectors else None
        if cached is not None:
            results[index] = cached
            cache_hits += 1
        else:
            pending.append((index, spec.to_dict(), keep_collectors))

    pool_size = min(workers, len(pending))
    if pool_size <= 1:
        for index, _payload, _keep in pending:
            run = run_scenario(specs[index])
            results[index] = run.result
            collectors[index] = run.collector
    else:
        context = multiprocessing.get_context(mp_context)
        with context.Pool(processes=pool_size) as pool:
            for index, payload, collector in pool.imap_unordered(
                _run_cell, pending, chunksize=1
            ):
                results[index] = ScenarioResult.from_dict(payload)
                collectors[index] = collector

    if cache is not None:
        for result in results:
            if result is not None and not result.cached:
                cache.put(result)

    final_results = [result for result in results if result is not None]
    if len(final_results) != len(specs):  # pragma: no cover - defensive
        raise RuntimeError("engine lost track of a shard result")
    return EngineReport(
        results=final_results,
        workers=workers,
        cache_hits=cache_hits,
        elapsed_s=time.perf_counter() - started,
        collectors=[c for c in collectors if c is not None] if keep_collectors else None,
    )
