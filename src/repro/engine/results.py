"""Serializable per-cell results of scenario execution.

A :class:`ScenarioResult` is everything a grid cell reports back across a
process boundary or out of the on-disk cache: headline metrics, per-node
distributions (for CDFs), and workload-specific outputs.  Results are
*canonically* serialisable -- :meth:`ScenarioResult.canonical_json` is
byte-identical for identical runs regardless of worker count, process
start method or cache state, which is how the engine's determinism
guarantee is stated and tested.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["ScenarioResult", "canonical_json", "results_canonical_json"]


def canonical_json(payload: Mapping[str, Any]) -> str:
    """Deterministic JSON: sorted keys, no whitespace, exact float reprs."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=True)


@dataclass(slots=True)
class ScenarioResult:
    """Outcome of one scenario run (one grid cell)."""

    name: str
    spec_hash: str
    seed: int
    mode: str
    #: Flat headline metrics: the system snapshot plus run counters plus
    #: workload summary figures.  ``None`` marks an undefined statistic
    #: (e.g. no application errors recorded).
    metrics: Dict[str, Optional[float]] = field(default_factory=dict)
    #: Per-node distributions, keyed metric name -> node id -> value.
    per_node: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Workload-specific structured output (e.g. drift tracks).
    workload: Dict[str, Any] = field(default_factory=dict)
    #: Wall-clock cost of producing this result (excluded from canonical
    #: output: timing varies run to run, the numbers must not).
    elapsed_s: float = 0.0
    #: Whether this result came from the engine's cache.
    cached: bool = False

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def canonical_dict(self) -> Dict[str, Any]:
        """The deterministic payload: everything except timing/provenance."""
        return {
            "name": self.name,
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "mode": self.mode,
            "metrics": self.metrics,
            "per_node": self.per_node,
            "workload": self.workload,
        }

    def canonical_json(self) -> str:
        return canonical_json(self.canonical_dict())

    # ------------------------------------------------------------------
    # Serialisation (cache, process transfer)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = self.canonical_dict()
        payload["elapsed_s"] = self.elapsed_s
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], *, cached: bool = False) -> "ScenarioResult":
        return cls(
            name=payload["name"],
            spec_hash=payload["spec_hash"],
            seed=int(payload["seed"]),
            mode=payload["mode"],
            metrics=dict(payload.get("metrics", {})),
            per_node={k: dict(v) for k, v in payload.get("per_node", {}).items()},
            workload=dict(payload.get("workload", {})),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
            cached=cached,
        )


def results_canonical_json(results: List[ScenarioResult]) -> str:
    """Canonical JSON over an ordered result list (the sweep-level form)."""
    return canonical_json({"results": [r.canonical_dict() for r in results]})
