"""On-disk result cache keyed by (spec hash, seed).

Completed grid cells are stored as one JSON file each, so re-running a
sweep after editing a few cells only executes the edited cells: the spec
hash covers everything that affects a run's outcome (and nothing that
doesn't -- renames and timing never invalidate).  The cache is safe to
share between serial and parallel runs because cell results are pure
functions of (spec, seed); corrupt or unreadable entries are treated as
misses rather than errors.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.engine.results import ScenarioResult
from repro.scenarios.spec import ScenarioSpec

__all__ = ["ResultCache"]


class ResultCache:
    """One-file-per-cell JSON cache of scenario results."""

    __slots__ = ("directory",)

    #: Bumped when the result schema changes; part of every filename so a
    #: schema change invalidates old entries instead of mis-parsing them.
    FORMAT = 1

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)

    def _path(self, spec_hash: str, seed: int) -> Path:
        return self.directory / f"v{self.FORMAT}-{spec_hash}-{seed}.json"

    def get(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        """The cached result for ``spec``, or ``None`` on a miss."""
        path = self._path(spec.spec_hash(), spec.seed)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        try:
            result = ScenarioResult.from_dict(payload, cached=True)
        except (KeyError, TypeError, ValueError):
            return None
        # The cell may have been renamed since it was cached; the label is
        # not part of the key, so restore the caller's name.
        result.name = spec.name
        return result

    def put(self, result: ScenarioResult) -> None:
        """Store ``result`` atomically (rename over a temp file)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(result.spec_hash, result.seed)
        handle, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(result.to_dict(), stream)
            os.replace(temp_name, path)
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob(f"v{self.FORMAT}-*.json"))
