"""Sharded, cached execution engine for declarative scenarios.

* :mod:`repro.engine.kernel` -- the serial kernel (one spec, one result);
* :mod:`repro.engine.executor` -- multiprocessing fan-out with a serial
  fallback that is byte-identical by construction;
* :mod:`repro.engine.cache` -- incremental (spec hash, seed) result cache;
* :mod:`repro.engine.results` -- canonical, serialisable cell results.
"""

from repro.engine.cache import ResultCache
from repro.engine.executor import EngineReport, execute
from repro.engine.kernel import ScenarioRun, run_scenario
from repro.engine.results import ScenarioResult, results_canonical_json

__all__ = [
    "EngineReport",
    "ResultCache",
    "ScenarioResult",
    "ScenarioRun",
    "execute",
    "results_canonical_json",
    "run_scenario",
]
