"""The ``queries-live`` workload harness: sim -> ingest -> serve, one spec.

:class:`LiveServingHarness` wires a running simulation into a running
daemon and drives query load against it, in three overlapping phases:

1. **Stream** -- the harness's sharded store is handed to
   :func:`~repro.netsim.batch.run_batch_simulation` as its
   ``publish_store``; every epoch the simulation publishes becomes a new
   serving generation under the live daemon, with zero serving downtime.
2. **Live load** -- from the moment the first epoch lands, a background
   closed-loop driver replays a fixed query stream over the wire.  Every
   response is audited for *internal consistency*: the payload must equal
   a re-serve of the same query against the retained generation of the
   version the response claims -- the torn-read detector.
3. **Measure** -- once the simulation (and its final publish) completes,
   a deterministic measured workload replays against the final
   generation and is checksummed against the in-process single-store
   linear oracle.

Scenario results must be byte-identical across worker counts, so
everything entering the scenario metrics is deterministic: fixed query
counts, ok/consistency *rates* (1.0 unless something is wrong), epoch
counts and the oracle-agreement bit.  Wall-clock figures (qps, p99) go
into the kernel's ``--profile`` channel only, exactly like the
vectorized backend's tick timings.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.chaos.injector import ChaosInjector
from repro.chaos.schedule import FaultSchedule
from repro.chaos.slo import SLOThresholds, evaluate as evaluate_slo
from repro.server.daemon import CoordinateServer, ServerThread
from repro.server.load import LoadReport, run_load
from repro.server.sharding import ShardedCoordinateStore
from repro.service.planner import QueryError, QueryPlanner
from repro.service.publish import EpochDelta
from repro.service.snapshot import SnapshotStore
from repro.service.workload import generate_queries, run_workload

__all__ = ["LiveServingHarness"]


class LiveServingHarness:
    """Owns the daemon, the live driver, and the measured-leg comparison."""

    def __init__(
        self,
        *,
        shards: int,
        index_kind: str,
        publish_every_ticks: int,
        live_count: int,
        measured_count: int,
        mix: str,
        k: int,
        radius_ms: float,
        concurrency: int,
        cache_entries: int,
        seed: int,
        source: str = "queries-live",
        chaos_spec: str = "",
    ) -> None:
        self.publish_every_ticks = publish_every_ticks
        self.live_count = live_count
        self.measured_count = measured_count
        self.mix = mix
        self.k = k
        self.radius_ms = radius_ms
        self.concurrency = concurrency
        self.seed = seed
        self.source = source
        #: Every published generation is retained so the live audit can
        #: re-serve any response's claimed version; sized generously --
        #: a live scenario publishes tens of epochs, not millions.
        self.store = ShardedCoordinateStore(
            shards,
            index_kind=index_kind,
            history=1_000_000,
            cache_entries=cache_entries,
            health_seed=seed,
        )
        self.server = CoordinateServer(self.store, admission_limit=4096)
        #: Optional deterministic fault schedule: faults fire on request
        #: and publish *counts*, so the chaos metrics below stay
        #: byte-identical across runs and worker counts.
        self.chaos: Optional[ChaosInjector] = None
        if chaos_spec:
            schedule = FaultSchedule.parse(chaos_spec, seed=seed)
            self.chaos = ChaosInjector(schedule, self.store)
            self.store.chaos = self.chaos
        #: The server-side telemetry registry (store + daemon instruments;
        #: the daemon adopts the store's).  Client-side load telemetry
        #: lives in each leg's LoadReport instead, so daemon-observed and
        #: client-observed latency never mix in one instrument.
        self.registry = self.server.registry
        self._server_thread: Optional[ServerThread] = None
        self._driver: Optional[threading.Thread] = None
        self._driver_report: Optional[LoadReport] = None
        self._driver_error: Optional[BaseException] = None
        #: Set on harness exit so a driver still waiting for the first
        #: epoch (the simulation failed before publishing) stops promptly
        #: instead of spinning until its join times out.
        self._closing = threading.Event()
        self._live_consistent = 0
        self._live_audited = 0
        self._live_degraded = 0

    # ------------------------------------------------------------------
    # Lifecycle around the simulation
    # ------------------------------------------------------------------
    def __enter__(self) -> "LiveServingHarness":
        self._server_thread = self.server.run_in_thread()
        self._server_thread.start()
        self._driver = threading.Thread(
            target=self._drive_live_load, name="live-load-driver", daemon=True
        )
        self._driver.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._closing.set()
        if self._driver is not None:
            self._driver.join(timeout=120.0)
        if self._server_thread is not None:
            self._server_thread.stop()
            self._server_thread = None

    def publish_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``run_batch_simulation``'s streaming path.

        The harness hands *itself* over as the ``publish_store``: it
        implements :class:`~repro.service.publish.EpochPublisher` by
        delegating to its sharded store, so the simulation can stream
        full or delta epochs without knowing the serving topology.
        """
        return {
            "publish_store": self,
            "publish_every_ticks": self.publish_every_ticks,
        }

    # ------------------------------------------------------------------
    # EpochPublisher: the harness is the simulation's publish target
    # ------------------------------------------------------------------
    def publish_epoch(
        self, node_ids, components, heights=None, *, source: str = ""
    ):
        """Publish a complete population epoch into the serving store."""
        return self.store.publish_epoch(node_ids, components, heights, source=source)

    def publish_delta(self, delta: EpochDelta):
        """Apply an incremental epoch on top of the serving generation."""
        return self.store.publish_delta(delta)

    # ------------------------------------------------------------------
    # Phase 2: the live closed-loop driver (background thread)
    # ------------------------------------------------------------------
    def _drive_live_load(self) -> None:
        try:
            import time

            # Wait for the first epoch: the node population exists from
            # version 1 on and is static thereafter.  Bail out if the
            # harness starts closing first (the simulation died before
            # publishing anything).
            while self.store.version < 1:
                if self._closing.wait(0.005):
                    return
            node_ids = self.store.generation().node_order
            queries = generate_queries(
                node_ids,
                self.live_count,
                mix=self.mix,
                seed=self.seed + 1,  # distinct stream from the measured leg
                k=self.k,
                radius_ms=self.radius_ms,
            )
            assert self._server_thread is not None and self._server_thread.address
            report = run_load(
                self._server_thread.address,
                queries,
                mode="closed",
                concurrency=self.concurrency,
            )
            self._driver_report = report
            # Torn-read audit: every response must match a re-serve of
            # its query against the generation of its claimed version.
            # Degraded (partial) responses are audited on the healthy
            # subset they declared via ``missing_shards``.
            for query, response in zip(queries, report.responses):
                if not response.get("ok"):
                    continue
                self._live_audited += 1
                missing = frozenset(response.get("missing_shards") or ())
                if response.get("partial"):
                    self._live_degraded += 1
                generation = self.store.at(int(response["version"]))
                try:
                    expected = generation.answer(query, exclude_shards=missing)
                except QueryError:
                    continue  # counted as inconsistent
                if expected == response.get("payload"):
                    self._live_consistent += 1
        except BaseException as exc:  # surfaced by finish(), not swallowed
            self._driver_error = exc

    # ------------------------------------------------------------------
    # Phase 3: the measured leg and the oracle comparison
    # ------------------------------------------------------------------
    def finish(
        self, profile: Optional[Dict[str, float]] = None
    ) -> Tuple[Dict[str, Optional[float]], Dict[str, Any]]:
        """Join the live driver, measure, compare, and summarise.

        Returns ``(metrics, workload_payload)`` in the kernel's shapes;
        both contain only deterministic values.  Must be called while the
        harness context is still open (the daemon is needed for the
        measured leg); the simulation must already have completed so the
        final generation is published.
        """
        assert self._driver is not None
        self._driver.join(timeout=300.0)
        if self._driver.is_alive():
            raise RuntimeError("live load driver did not finish")
        if self._driver_error is not None:
            raise RuntimeError(
                f"live load driver failed: {self._driver_error}"
            ) from self._driver_error

        if self.chaos is not None:
            # Force-clear any serve fault still open at the end of the
            # live stream so the measured leg runs against a healthy
            # store (and return any injected admission slots).
            released = self.chaos.finish_serve_faults()
            if released:
                self.server.release_admission_load(released)

        generation = self.store.generation()
        if len(generation) < 2:
            raise RuntimeError("queries-live needs at least two published nodes")
        queries = generate_queries(
            generation.node_order,
            self.measured_count,
            mix=self.mix,
            seed=self.seed,
            k=self.k,
            radius_ms=self.radius_ms,
        )
        assert self._server_thread is not None and self._server_thread.address
        measured = run_load(
            self._server_thread.address,
            queries,
            mode="closed",
            concurrency=self.concurrency,
        )

        # The single-store linear oracle over the same final snapshot;
        # clock and timer pinned so its behaviour is a pure function of
        # the inputs (mirrors the in-kernel queries workload).
        oracle_store = SnapshotStore.from_snapshot(
            generation.snapshot, index_kind="linear"
        )
        oracle = run_workload(
            QueryPlanner(oracle_store, clock=lambda: 0.0, timer=lambda: 0.0),
            queries,
            timer=lambda: 0.0,
        )
        agreement = float(measured.checksum == oracle.checksum)

        live = self._driver_report
        live_issued = live.query_count if live is not None else 0
        metrics: Dict[str, Optional[float]] = {
            "live_query_count": float(live_issued),
            "live_ok_rate": (
                float(live.ok / live.query_count)
                if live is not None and live.query_count
                else None
            ),
            "live_consistency": (
                float(self._live_consistent / self._live_audited)
                if self._live_audited
                else None
            ),
            "epochs_published": float(self.store.stats()["ingest"]["versions_published"]),
            "query_count": float(measured.query_count),
            "query_error_count": float(measured.errors),
            "query_oracle_agreement": agreement,
        }
        # Store-side coordinate health over the streamed epochs: every
        # value is a pure function of the (deterministic) publish stream
        # -- no wall clock -- so it belongs in the scenario metrics, not
        # the profile.  Self-referenced: relative error here measures
        # movement away from the first published geometry, i.e. how much
        # the embedding was still converging while serving.
        metrics.update(self.store.health_tracker.metrics_summary(prefix="store_health_"))
        chaos_report: Optional[Dict[str, Any]] = None
        if self.chaos is not None:
            # Chaos metrics are pure functions of the (count-driven)
            # fault schedule and the fixed live query stream, so they are
            # deterministic and belong in the scenario metrics.  Wall-
            # clock latencies stay out: the SLO evaluation here runs with
            # latencies_ms=None, making p99 recovery vacuous by design.
            chaos_report = self.chaos.report()
            live_responses = live.responses if live is not None else ()
            error_positions = [
                position
                for position, response in enumerate(live_responses)
                if not response.get("ok")
            ]
            torn_reads = self._live_audited - self._live_consistent
            slo = evaluate_slo(
                thresholds=SLOThresholds(),
                fault_windows=[
                    (event.at, event.clear_at)
                    for event in self.chaos.schedule.serve_events()
                ],
                error_positions=error_positions,
                total_requests=live_issued,
                latencies_ms=None,
                torn_reads=torn_reads,
                generation_recovered=not self.store.down_shards,
            )
            faults = chaos_report["faults"]
            metrics.update(
                {
                    "chaos_faults_fired": float(
                        sum(1 for fault in faults if fault["fired"])
                    ),
                    "chaos_faults_cleared": float(
                        sum(1 for fault in faults if fault["cleared"])
                    ),
                    "chaos_degraded_responses": float(self._live_degraded),
                    "chaos_dropped_publishes": float(
                        chaos_report["dropped_publishes"]
                    ),
                    "chaos_stalled_publishes": float(
                        chaos_report["stalled_publishes"]
                    ),
                    "chaos_error_count": float(len(error_positions)),
                    "chaos_torn_reads": float(torn_reads),
                    "chaos_slo_passed": float(slo["passed"]),
                }
            )
        if profile is not None:
            profile["live_serve_qps"] = round(
                live.queries_per_s if live is not None else 0.0, 3
            )
            profile["measured_serve_qps"] = round(measured.queries_per_s, 3)
            profile["measured_serve_s"] = round(measured.elapsed_s, 6)
            for kind, summary in measured.kinds.items():
                profile[f"measured_{kind}_p99_ms"] = summary["p99_ms"]
            for kind, summary in measured.telemetry.get("kinds", {}).items():
                profile[f"measured_{kind}_p999_ms"] = summary["p999_ms"]
        if profile is not None and live is not None:
            # Which versions the live stream happened to hit is timing-
            # dependent, so it rides with the wall-clock profile, never
            # the (deterministic) scenario result.
            profile["live_versions_observed"] = float(len(live.versions))
        payload: Dict[str, Any] = {
            "serving": "daemon",
            "shards": self.store.shards,
            "index_kind": self.store.index_kind,
            "checksum": measured.checksum,
            "oracle_checksum": oracle.checksum,
            "store_health": self.store.health_tracker.summary(),
        }
        if chaos_report is not None:
            payload["chaos"] = chaos_report
        return metrics, payload

    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """The server-side registry rendered as Prometheus text."""
        return self.registry.render_prometheus()

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server_thread is not None and self._server_thread.address
        return self._server_thread.address
