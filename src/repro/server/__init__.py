"""Async coordinate-serving daemon: the network layer over the query service.

The :mod:`repro.service` layer made coordinate queries a library concern;
this package turns them into a *served* concern:

* :mod:`repro.server.protocol` -- the length-prefixed JSON wire protocol
  shared by the daemon and its clients;
* :mod:`repro.server.sharding` -- :class:`ShardedCoordinateStore`, N
  hash-partitioned shards (each a
  :class:`~repro.service.snapshot.SnapshotStore` plus pluggable index)
  behind a scatter-gather router whose answers are byte-identical to the
  single-store oracle, with atomic zero-downtime snapshot rollover;
* :mod:`repro.server.daemon` -- :class:`CoordinateServer`, the asyncio
  daemon with per-connection backpressure and a bounded admission queue;
* :mod:`repro.server.client` -- :class:`AsyncCoordinateClient`, a
  pipelining client;
* :mod:`repro.server.load` -- the closed/open-loop load generator and its
  :class:`LoadReport`;
* :mod:`repro.server.live` -- the harness behind the ``queries-live``
  scenario workload: simulation epochs stream into a running daemon while
  queries are served.

``repro serve-daemon`` and ``repro load`` (see :mod:`repro.server.cli`)
expose the daemon and the load harness on the command line.
"""

from repro.server.sharding import ShardedCoordinateStore, ShardGeneration
from repro.server.daemon import CoordinateServer
from repro.server.client import AsyncCoordinateClient
from repro.server.load import LoadReport, run_load, synthetic_coordinates

__all__ = [
    "ShardedCoordinateStore",
    "ShardGeneration",
    "CoordinateServer",
    "AsyncCoordinateClient",
    "LoadReport",
    "run_load",
    "synthetic_coordinates",
]
