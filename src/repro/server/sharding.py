"""Sharded live coordinate stores with scatter-gather query routing.

:class:`ShardedCoordinateStore` partitions the node population across N
shards by a stable hash of the node id.  Each shard owns its own
:class:`~repro.service.snapshot.SnapshotStore` (and therefore its own
pluggable spatial index); cross-shard queries scatter to every shard and
merge the partial answers.

**Oracle identity.** Merged answers are byte-identical -- same node sets,
same ``Coordinate.distance`` floats, same ordering including ties -- to a
single un-sharded store serving the same snapshot:

* distances only involve the query point and one node's coordinate, so a
  shard computes exactly the floats the single store would;
* the single-store oracle breaks distance ties by snapshot insertion
  order, so every published generation carries a *global* insertion
  sequence; each shard ingests its nodes in global-order subsequence
  (making shard-local tie order consistent with it) and the merge sorts
  candidates by ``(distance, global sequence)``;
* any node in the global top-k is necessarily in its own shard's top-k
  (the global comparator restricted to one shard is the shard's own
  comparator), so merging per-shard top-k lists loses nothing.

**Generations and torn reads.** Every publish builds a complete immutable
:class:`ShardGeneration` -- per-shard snapshots, per-shard indexes, the
global sequence map -- *before* a single atomic reference swap installs
it.  A request pins the generation reference once and serves the whole
answer from it, so a response can never mix coordinate versions across
shards, and rollover never blocks serving (readers of the old generation
simply finish on it).  This is the router-level analogue of the snapshot
store's own immutability argument.

The store keeps an internal single-store router
:class:`~repro.service.snapshot.SnapshotStore` as the authority on
version numbers and global insertion order; its merge semantics under
incremental object commits are therefore *definitionally* the oracle's.

Thread-safety: publishes are serialised by an ingest lock; serving reads
one volatile reference and immutable data plus a small stats lock, so any
number of threads (or event-loop executors) can query concurrently with
ingest.
"""

from __future__ import annotations

import copy
import hashlib
import threading
import time
import warnings
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.coordinate import Coordinate, centroid
from repro.obs.events import EventLog
from repro.obs.health import HealthTracker
from repro.obs.registry import Counter, LatencyHistogram, TelemetryRegistry
from repro.obs.tracing import NOOP_SPAN, TraceRecorder, make_span
from repro.overlay.knn import CoordinateIndex
from repro.service.index import INDEX_KINDS
from repro.service.planner import LRUTTLCache, Query, QueryError, QUERY_KINDS
from repro.service.publish import EpochDelta
from repro.service.snapshot import SnapshotStore
from repro.stats.percentile import StreamingPercentile

__all__ = [
    "HEALTH_SECTIONS",
    "ServeResult",
    "ShardedCoordinateStore",
    "ShardGeneration",
    "shard_of",
]

#: The sections a store health payload can carry, in canonical order.
HEALTH_SECTIONS = (
    "generation",
    "relative_error",
    "drift",
    "neighbor_churn",
    "staleness",
)


def _span(registry: Optional[TelemetryRegistry], name: str, trace, **labels):
    """A span when a registry is attached; the shared no-op otherwise."""
    if registry is None:
        return NOOP_SPAN
    return make_span(registry, name, trace, labels)


class _DeadShardIndex:
    """Placeholder index for a shard that is down.

    Installed in generations built while a shard is killed; any scatter
    that reaches it (i.e. that did not exclude the dead shard) raises a
    counted :class:`QueryError` rather than silently serving nothing.
    """

    __slots__ = ("shard",)

    def __init__(self, shard: int) -> None:
        self.shard = shard

    def __len__(self) -> int:
        return 0

    def nearest(self, *args, **kwargs):
        raise QueryError(f"shard {self.shard} is down")

    def within(self, *args, **kwargs):
        raise QueryError(f"shard {self.shard} is down")


class ServeResult:
    """:meth:`ShardedCoordinateStore.serve`'s return value.

    Unpacks as the historical ``(payload, version, cached)`` 3-tuple so
    every existing caller keeps working, while the degraded-response
    attributes (``partial``, ``missing_shards``) ride along for callers
    that understand them (the daemon's wire envelope).
    """

    __slots__ = ("payload", "version", "cached", "partial", "missing_shards")

    def __init__(
        self,
        payload: Any,
        version: int,
        cached: bool,
        *,
        partial: bool = False,
        missing_shards: Tuple[int, ...] = (),
    ) -> None:
        self.payload = payload
        self.version = version
        self.cached = cached
        self.partial = partial
        self.missing_shards = missing_shards

    def __iter__(self):
        return iter((self.payload, self.version, self.cached))

    def __len__(self) -> int:
        return 3

    def __getitem__(self, item):
        return (self.payload, self.version, self.cached)[item]


def shard_of(node_id: str, shards: int) -> int:
    """Stable hash partition of ``node_id`` into ``[0, shards)``.

    blake2b rather than ``hash()``: the assignment must be identical
    across processes and Python releases (PYTHONHASHSEED varies).
    """
    digest = hashlib.blake2b(node_id.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


class ShardGeneration:
    """One immutable, fully built serving generation.

    Everything a request needs -- per-shard indexes, the coordinate
    lookup, the global tie-break order -- is reachable from this object,
    so a request that captured it is untouched by later publishes.
    """

    __slots__ = (
        "version",
        "source",
        "snapshot",
        "shard_indexes",
        "shard_sizes",
        "global_seq",
        "node_order",
    )

    def __init__(
        self,
        version: int,
        source: str,
        snapshot,
        shard_indexes: Tuple[CoordinateIndex, ...],
        shard_sizes: Tuple[int, ...],
        global_seq: Dict[str, int],
        node_order: List[str],
    ) -> None:
        self.version = version
        self.source = source
        #: The un-sharded router snapshot (coordinate lookup + wire dump).
        self.snapshot = snapshot
        self.shard_indexes = shard_indexes
        self.shard_sizes = shard_sizes
        #: node id -> position in the oracle's insertion order.
        self.global_seq = global_seq
        #: Node ids in oracle insertion order.
        self.node_order = node_order

    def __len__(self) -> int:
        return len(self.node_order)

    # -- scatter-gather queries (oracle-identical payloads) -------------
    def _coordinate_of(self, node_id: str) -> Coordinate:
        coordinate = self.snapshot.coordinate_of(node_id)
        if coordinate is None:
            raise QueryError(f"unknown node {node_id!r}")
        return coordinate

    def _merge(
        self, partials: List[List[Tuple[str, float]]], limit: Optional[int]
    ) -> List[Tuple[str, float]]:
        """Merge per-shard (node_id, rtt) lists by ``(rtt, global seq)``."""
        merged = [pair for partial in partials for pair in partial]
        merged.sort(key=lambda pair: (pair[1], self.global_seq[pair[0]]))
        return merged if limit is None else merged[:limit]

    def knn(
        self,
        target: str,
        k: int,
        *,
        registry: Optional[TelemetryRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        exclude_shards: Sequence[int] = (),
    ) -> Dict[str, Any]:
        coordinate = self._coordinate_of(target)
        partials = []
        for shard, index in enumerate(self.shard_indexes):
            if shard in exclude_shards:
                continue
            with _span(registry, "query.scatter", trace, shard=shard):
                partials.append(index.nearest(coordinate, k, exclude=[target]))
        with _span(registry, "query.merge", trace):
            neighbors = self._merge(partials, k)
        return {
            "target": target,
            "neighbors": [
                {"node_id": node_id, "predicted_rtt_ms": rtt}
                for node_id, rtt in neighbors
            ],
        }

    def range(
        self,
        target: str,
        radius_ms: float,
        *,
        registry: Optional[TelemetryRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        exclude_shards: Sequence[int] = (),
    ) -> Dict[str, Any]:
        coordinate = self._coordinate_of(target)
        partials = []
        for shard, index in enumerate(self.shard_indexes):
            if shard in exclude_shards:
                continue
            with _span(registry, "query.scatter", trace, shard=shard):
                partials.append(index.within(coordinate, radius_ms))
        with _span(registry, "query.merge", trace):
            hits = self._merge(partials, None)
        return {
            "target": target,
            "radius_ms": radius_ms,
            "hits": [
                {"node_id": node_id, "predicted_rtt_ms": rtt}
                for node_id, rtt in hits
                if node_id != target
            ],
        }

    def distance(self, first: str, second: str) -> Dict[str, Any]:
        a = self.snapshot.coordinate_of(first)
        b = self.snapshot.coordinate_of(second)
        if a is None or b is None:
            missing = first if a is None else second
            raise QueryError(f"unknown node {missing!r}")
        return {"pair": [first, second], "predicted_rtt_ms": a.distance(b)}

    def centroid(
        self,
        members: Tuple[str, ...],
        *,
        registry: Optional[TelemetryRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        exclude_shards: Sequence[int] = (),
    ) -> Dict[str, Any]:
        chosen = members or tuple(self.node_order)
        coordinates = [self._coordinate_of(node_id) for node_id in chosen]
        if not coordinates:
            raise QueryError("centroid query over an empty snapshot")
        point = centroid(coordinates)
        partials = []
        for shard, index in enumerate(self.shard_indexes):
            if shard in exclude_shards:
                continue
            with _span(registry, "query.scatter", trace, shard=shard):
                partials.append(index.nearest(point, 1))
        with _span(registry, "query.merge", trace):
            nearest = self._merge(partials, 1)
        return {
            "members": len(chosen),
            "centroid": list(point.components),
            "nearest_host": nearest[0][0] if nearest else None,
            "nearest_rtt_ms": nearest[0][1] if nearest else None,
        }

    def answer(
        self,
        query: Query,
        *,
        registry: Optional[TelemetryRegistry] = None,
        trace: Optional[TraceRecorder] = None,
        exclude_shards: Sequence[int] = (),
    ) -> Any:
        """The oracle-identical payload for one service-layer query.

        ``exclude_shards`` restricts the scatter to the healthy subset --
        the degraded-response path while a shard is down.  A partial
        answer is exactly the full merge minus the excluded shards'
        candidates (pairwise distance reads the snapshot directly and is
        never affected).
        """
        if query.kind in ("knn", "nearest"):
            return self.knn(
                query.target,
                query.k if query.kind == "knn" else 1,
                registry=registry,
                trace=trace,
                exclude_shards=exclude_shards,
            )
        if query.kind == "range":
            return self.range(
                query.target,
                query.radius_ms,
                registry=registry,
                trace=trace,
                exclude_shards=exclude_shards,
            )
        if query.kind == "pairwise":
            return self.distance(*query.pair)
        if query.kind == "centroid":
            return self.centroid(
                query.members,
                registry=registry,
                trace=trace,
                exclude_shards=exclude_shards,
            )
        raise QueryError(f"unknown query kind {query.kind!r}")  # pragma: no cover


#: Reservoir size for the exact per-kind latency percentiles.
_LATENCY_RESERVOIR = 65536


class _ServeStats:
    """Per-query-kind serving instruments.

    Counts and the mergeable latency histogram live in the store's
    telemetry registry (each instrument carries its own lock), so serving
    threads never touch the store-wide stats lock for bookkeeping.  The
    *exact* percentile read-out (``p50_us``/``p99_us`` in ``stats()``)
    additionally keeps one :class:`StreamingPercentile` per executor
    thread -- recorded lock-free via a thread-local -- and folds them
    together with :meth:`StreamingPercentile.merge` only when stats are
    read.  Below the reservoir capacity the merge is a concatenation, so
    the folded answer equals a single shared estimator's, without the
    shared lock.
    """

    __slots__ = (
        "kind",
        "served",
        "cache_hits",
        "errors",
        "latency_ms",
        "_local",
        "_estimators",
        "_lock",
    )

    def __init__(self, kind: str, registry: TelemetryRegistry) -> None:
        self.kind = kind
        self.served: Counter = registry.counter(
            "store_served_total", "Queries served by the sharded store.", kind=kind
        )
        self.cache_hits: Counter = registry.counter(
            "store_cache_hits_total", "Result-cache hits.", kind=kind
        )
        self.errors: Counter = registry.counter(
            "store_errors_total", "Queries that raised QueryError.", kind=kind
        )
        self.latency_ms: LatencyHistogram = registry.histogram(
            "store_serve_latency_ms",
            "Uncached serve latency in milliseconds.",
            kind=kind,
        )
        self._local = threading.local()
        self._estimators: List[StreamingPercentile] = []
        self._lock = threading.Lock()

    def record_latency(self, elapsed_us: float) -> None:
        estimator = getattr(self._local, "estimator", None)
        if estimator is None:
            estimator = StreamingPercentile(capacity=_LATENCY_RESERVOIR)
            with self._lock:
                self._estimators.append(estimator)
            self._local.estimator = estimator
        estimator.add(elapsed_us)
        self.latency_ms.observe(elapsed_us / 1e3)

    def merged_latency_us(self) -> StreamingPercentile:
        """All per-thread estimators folded into one (read-time merge)."""
        merged = StreamingPercentile(capacity=_LATENCY_RESERVOIR)
        with self._lock:
            estimators = list(self._estimators)
        for estimator in estimators:
            merged.merge(estimator)
        return merged

    def as_dict(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = {
            "served": self.served.value,
            "cache_hits": self.cache_hits.value,
            "errors": self.errors.value,
        }
        latency_us = self.merged_latency_us()
        if latency_us.count:
            summary["p50_us"] = latency_us.percentile(50.0)
            summary["p99_us"] = latency_us.percentile(99.0)
            summary["latency_exact"] = latency_us.is_exact
        return summary


class ShardedCoordinateStore:
    """N hash-partitioned shard stores behind one scatter-gather router.

    The complete serving engine minus the network: the asyncio daemon
    (:mod:`repro.server.daemon`) is a thin shell over :meth:`serve` and
    the publish methods, which keeps the whole behaviour testable and
    benchmarkable in-process.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        index_kind: str = "vptree",
        history: int = 4,
        cache_entries: int = 8192,
        cache_ttl_s: float = float("inf"),
        timer: Callable[[], float] = time.perf_counter,
        registry: Optional[TelemetryRegistry] = None,
        health_seed: int = 0,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if index_kind not in INDEX_KINDS:
            raise ValueError(
                f"unknown index kind {index_kind!r}; known: {list(INDEX_KINDS)}"
            )
        self.shards = shards
        self.index_kind = index_kind
        self.history = history
        self._timer = timer
        #: All serving/ingest instruments; the daemon adopts this registry
        #: so one ``metrics`` render covers the whole server.
        self.registry = registry if registry is not None else TelemetryRegistry()
        #: Serialises publishes; serving never takes it.
        self._ingest_lock = threading.Lock()
        #: Guards cache + stats bookkeeping (short critical sections).
        self._stats_lock = threading.Lock()
        #: The single-store authority on versions and insertion order.
        #: Its index is never built; it exists for merge semantics, the
        #: coordinate lookup and the wire snapshot dump.
        self._router = SnapshotStore(index_kind="linear", history=history)
        self._shard_stores = tuple(
            SnapshotStore(index_kind=index_kind, history=history) for _ in range(shards)
        )
        empty = ShardGeneration(
            0, "", self._router.latest(), tuple(CoordinateIndex() for _ in range(shards)),
            tuple(0 for _ in range(shards)), {}, [],
        )
        self._generation = empty
        self._generations: Dict[int, ShardGeneration] = {0: empty}
        self.cache = LRUTTLCache(cache_entries, cache_ttl_s)
        self._serve_stats: Dict[str, _ServeStats] = {
            kind: _ServeStats(kind, self.registry) for kind in QUERY_KINDS
        }
        self._c_publishes = self.registry.counter(
            "store_publishes_total", "Generations published."
        )
        self._c_nodes_ingested = self.registry.counter(
            "store_nodes_ingested_total", "Nodes ingested across all publishes."
        )
        self._g_last_publish_s = self.registry.gauge(
            "store_last_publish_seconds", "Duration of the latest publish."
        )
        # One instrument per publish mode: full rebuilds and incremental
        # delta rollovers live on wildly different latency scales, and a
        # single histogram would bury the millisecond delta path under
        # the multi-second full one.
        self._h_publish_ms = {
            mode: self.registry.histogram(
                "store_publish_ms", "Generation build-and-install time.", mode=mode
            )
            for mode in ("full", "delta")
        }
        self._g_version = self.registry.gauge(
            "store_version", "Currently served generation version."
        )
        self._g_nodes = self.registry.gauge(
            "store_nodes", "Node count of the current generation."
        )
        #: Structured lifecycle events (epoch published, generation
        #: swapped, admission shed, ...); the daemon serves the tail over
        #: the wire and emits its own admission events into the same log.
        self.events = EventLog()
        #: Streaming coordinate health over the published epoch stream.
        #: Self-referenced (no RTT oracle here): relative error measures
        #: deviation from the first published geometry, i.e. corruption.
        self.health_tracker = HealthTracker(
            seed=health_seed, registry=self.registry, events=self.events
        )
        self._g_generation_age_s = self.registry.gauge(
            "store_generation_age_s",
            "Seconds since the served generation was installed (staleness).",
        )
        self._h_serve_age_ms = self.registry.histogram(
            "store_serve_generation_age_ms",
            "Publish-to-serve age of the generation answering each query.",
        )
        #: Install wall-time per retained generation version (timer units),
        #: pruned alongside the generations themselves.
        self._publish_walls: Dict[int, float] = {}
        #: Shards currently killed by fault injection.  Serving excludes
        #: them from the scatter (degraded partial responses); publishes
        #: skip their shard stores and install a dead-index placeholder.
        #: Written only under the ingest lock; read as one volatile
        #: reference by serving threads.
        self._down_shards: frozenset = frozenset()
        #: A :class:`repro.chaos.injector.ChaosInjector` when a fault
        #: schedule is active; the store consults it at publish entry
        #: (never under the ingest lock -- see the injector's lock-order
        #: note) and for the injected gray-failure delay while serving.
        self.chaos = None

    # ------------------------------------------------------------------
    # Ingest (whole-population epochs and incremental commits)
    # ------------------------------------------------------------------
    def publish_epoch(
        self,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: Optional[np.ndarray] = None,
        *,
        source: str = "",
    ) -> ShardGeneration:
        """Publish one whole-population array epoch as the next generation.

        The full half of the :class:`~repro.service.publish.EpochPublisher`
        protocol, signature-compatible with
        :meth:`repro.service.snapshot.SnapshotStore.publish_epoch`, so a
        running :func:`~repro.netsim.batch.run_batch_simulation` can
        stream epochs straight into a live server via ``publish_store``.
        """
        if self._chaos_publish_gate():
            return self._generation
        with self._ingest_lock:
            started = self._timer()
            snapshot = self._router.publish_epoch(
                node_ids, components, heights, source=source
            )
            ids, comps, hts = snapshot.arrays()
            comps = np.asarray(comps)
            hts = np.asarray(hts)
            generation = self._build_generation_locked(snapshot, ids, comps, hts)
            self._install_locked(
                generation, started, ids, comps, hts,
                mode="full", changed_count=len(ids),
            )
            return generation

    def publish_arrays(
        self,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: Optional[np.ndarray] = None,
        *,
        source: str = "",
    ) -> ShardGeneration:
        """Deprecated alias of :meth:`publish_epoch` (same semantics)."""
        warnings.warn(
            "ShardedCoordinateStore.publish_arrays() is deprecated; use "
            "publish_epoch() (the EpochPublisher protocol entry point)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.publish_epoch(node_ids, components, heights, source=source)

    def publish_delta(self, delta: EpochDelta) -> ShardGeneration:
        """Apply an incremental epoch on top of the serving generation.

        The incremental half of the
        :class:`~repro.service.publish.EpochPublisher` protocol.  The
        router applies the delta by copy-on-write of the touched rows
        (the authority on versions and global insertion order), then the
        delta is re-partitioned into per-shard sub-deltas so each shard's
        spatial index derives incrementally from its predecessor instead
        of rebuilding.  Shards the delta never touches receive an empty
        sub-delta, which mints their next version while *sharing* the
        previous snapshot's frozen arrays and index -- zero copy, zero
        build.  The resulting generation is byte-identical (coordinates,
        query results including tie order, health snapshots) to
        publishing the same final population through
        :meth:`publish_epoch`.
        """
        if not isinstance(delta, EpochDelta):
            raise TypeError(
                f"publish_delta() needs an EpochDelta, got {type(delta).__name__}"
            )
        if self._chaos_publish_gate():
            return self._generation
        with self._ingest_lock:
            started = self._timer()
            base_generation = self._generation
            snapshot = self._router.publish_delta(delta)
            ids, comps, hts = snapshot.arrays()
            comps = np.asarray(comps)
            hts = np.asarray(hts)
            if delta.changed_count and comps.size:
                dims = comps.shape[1]
            else:
                dims = delta.components.shape[1] if delta.components.ndim == 2 else 1
            changed_rows: List[List[int]] = [[] for _ in range(self.shards)]
            for position, node_id in enumerate(delta.node_ids):
                changed_rows[shard_of(node_id, self.shards)].append(position)
            removed_per_shard: List[List[str]] = [[] for _ in range(self.shards)]
            for node_id in delta.removed_ids:
                removed_per_shard[shard_of(node_id, self.shards)].append(node_id)
            shard_indexes: List[CoordinateIndex] = []
            shard_sizes: List[int] = []
            for shard in range(self.shards):
                if shard in self._down_shards:
                    # The shard store missed this delta; restart_shard
                    # repairs it from the router snapshot later.
                    shard_indexes.append(_DeadShardIndex(shard))
                    shard_sizes.append(0)
                    continue
                rows = changed_rows[shard]
                # Fancy indexing copies, so the shard sub-delta is
                # independent of the caller's (possibly reused) arrays.
                sub = EpochDelta(
                    [delta.node_ids[row] for row in rows],
                    delta.components[rows] if rows else np.empty((0, dims)),
                    delta.heights[rows] if rows else np.empty(0),
                    removed_ids=tuple(removed_per_shard[shard]),
                    source=snapshot.source,
                    epoch=delta.epoch,
                )
                store = self._shard_stores[shard]
                shard_snapshot = store.publish_delta(sub)
                # Derived incrementally inside publish_delta when the
                # budget allows; otherwise this compacts via a full build.
                shard_indexes.append(store.index_for(shard_snapshot))
                shard_sizes.append(len(shard_snapshot))
            if delta.removed_ids or any(
                node_id not in base_generation.global_seq
                for node_id in delta.node_ids
            ):
                node_order = list(ids)
                global_seq = {
                    node_id: position for position, node_id in enumerate(node_order)
                }
            else:
                # Population unchanged: the base generation's order maps
                # are immutable and can be shared outright.
                node_order = base_generation.node_order
                global_seq = base_generation.global_seq
            generation = ShardGeneration(
                snapshot.version,
                snapshot.source,
                snapshot,
                tuple(shard_indexes),
                tuple(shard_sizes),
                global_seq,
                node_order,
            )
            self._install_locked(
                generation, started, ids, comps, hts,
                mode="delta", changed_count=delta.changed_count,
            )
            return generation

    def publish_coordinates(
        self, coordinates: Mapping[str, Coordinate], *, source: str = ""
    ) -> ShardGeneration:
        """Deprecated alias of :meth:`_publish_mapping` (same semantics).

        Use :meth:`publish_delta` with
        :meth:`EpochDelta.from_coordinates` for incremental object
        batches, or :meth:`publish_epoch` for whole populations.
        """
        warnings.warn(
            "ShardedCoordinateStore.publish_coordinates() is deprecated; use "
            "publish_delta(EpochDelta.from_coordinates(...)) or publish_epoch()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._publish_mapping(coordinates, source=source)

    def _publish_mapping(
        self, coordinates: Mapping[str, Coordinate], *, source: str = ""
    ) -> ShardGeneration:
        """Commit an object-based update batch as the next generation.

        Incremental semantics are exactly the single store's: existing
        nodes update in place, new nodes append in iteration order.
        """
        if self._chaos_publish_gate():
            return self._generation
        with self._ingest_lock:
            started = self._timer()
            self._router.apply_many(coordinates)
            snapshot = self._router.commit(source=source)
            if snapshot.version == self._generation.version:
                return self._generation  # no-op commit: nothing staged
            order = snapshot.node_ids()
            if order:
                comps = np.asarray(
                    [snapshot.coordinates[node_id].components for node_id in order],
                    dtype=np.float64,
                )
                hts = np.asarray(
                    [snapshot.coordinates[node_id].height for node_id in order],
                    dtype=np.float64,
                )
            else:
                comps = np.empty((0, 1))
                hts = np.empty(0)
            generation = self._build_generation_locked(snapshot, order, comps, hts)
            self._install_locked(
                generation, started, order, comps, hts,
                mode="full", changed_count=len(order),
            )
            return generation

    def ingest_collector(self, collector, *, level: str = "application", source: str = "") -> ShardGeneration:
        """Publish every node's latest coordinate from a metrics collector."""
        return self._publish_mapping(
            collector.latest_coordinates(level=level), source=source
        )

    def _build_generation_locked(
        self,
        snapshot,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: np.ndarray,
    ) -> ShardGeneration:
        """Partition one published snapshot and build every shard index.

        Runs entirely on the publisher's thread while the previous
        generation keeps serving; nothing is visible until the caller's
        atomic install.
        """
        assignments = [shard_of(node_id, self.shards) for node_id in node_ids]
        global_seq = {node_id: position for position, node_id in enumerate(node_ids)}
        dims = components.shape[1] if components.ndim == 2 and components.shape[1] else 1
        shard_indexes: List[CoordinateIndex] = []
        shard_sizes: List[int] = []
        for shard in range(self.shards):
            if shard in self._down_shards:
                shard_indexes.append(_DeadShardIndex(shard))
                shard_sizes.append(0)
                continue
            rows = [row for row, owner in enumerate(assignments) if owner == shard]
            store = self._shard_stores[shard]
            # Fancy indexing copies, so the shard arrays are independent of
            # (and writable regardless of) the frozen router snapshot.
            shard_snapshot = store.publish_epoch(
                [node_ids[row] for row in rows],
                components[rows] if rows else np.empty((0, dims)),
                heights[rows] if rows else np.empty(0),
                source=snapshot.source,
            )
            shard_indexes.append(store.index_for(shard_snapshot))
            shard_sizes.append(len(rows))
        return ShardGeneration(
            snapshot.version,
            snapshot.source,
            snapshot,
            tuple(shard_indexes),
            tuple(shard_sizes),
            global_seq,
            list(node_ids),
        )

    def _install_locked(
        self,
        generation: ShardGeneration,
        started: float,
        node_ids: Sequence[str],
        components: np.ndarray,
        heights: np.ndarray,
        *,
        mode: str = "full",
        changed_count: Optional[int] = None,
    ) -> None:
        if changed_count is None:
            changed_count = len(generation)
        self.events.emit(
            "epoch_published",
            version=generation.version,
            nodes=len(generation),
            source=generation.source,
            changed_count=changed_count,
            mode=mode,
        )
        self._generations[generation.version] = generation
        floor = generation.version - self.history + 1
        for version in [v for v in self._generations if v < floor]:
            self._generations.pop(version, None)
            self._publish_walls.pop(version, None)
        # The swap: a single reference assignment.  Readers see either the
        # whole old generation or the whole new one, never a mixture.
        self._generation = generation
        elapsed_s = self._timer() - started
        with self._stats_lock:
            self.cache.current_version = generation.version
        self._c_publishes.inc()
        self._c_nodes_ingested.inc(len(generation))
        self._g_last_publish_s.set(elapsed_s)
        self._h_publish_ms[mode].observe(elapsed_s * 1e3)
        self._g_version.set(generation.version)
        self._g_nodes.set(len(generation))
        self._publish_walls[generation.version] = self._timer()
        self.events.emit(
            "generation_swapped",
            version=generation.version,
            retained=len(self._generations),
            shard_sizes=list(generation.shard_sizes),
        )
        # Health observes the same frozen arrays the generation serves;
        # no wall time is passed, so its values stay a pure function of
        # the publish stream (per-epoch drift/error units).
        self.health_tracker.observe_epoch(
            node_ids, components, heights, version=generation.version
        )

    # ------------------------------------------------------------------
    # Fault injection (chaos)
    # ------------------------------------------------------------------
    def _chaos_publish_gate(self) -> bool:
        """Consult the injector before a publish; True means drop it.

        Called at publish entry, *before* the ingest lock, so the lock
        order is always injector-then-ingest and never cycles (the
        injector calls :meth:`kill_shard`/:meth:`restart_shard`, which
        take the ingest lock, while holding its own lock).
        """
        chaos = self.chaos
        if chaos is None:
            return False
        action, delay_ms = chaos.on_publish()
        if action == "drop":
            self.events.emit("publish_dropped", version=self._generation.version)
            return True
        if action == "stall":
            self.events.emit(
                "publish_stalled",
                version=self._generation.version,
                delay_ms=delay_ms,
            )
            time.sleep(delay_ms / 1e3)
        return False

    def kill_shard(self, shard: int) -> None:
        """Drop one shard from the scatter set (fault injection).

        Queries keep being served from the healthy subset as degraded
        partial responses; publishes while down skip the shard's store
        and install a dead-index placeholder.  Idempotent.
        """
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} out of range for {self.shards} shards")
        with self._ingest_lock:
            if shard in self._down_shards:
                return
            self._down_shards = self._down_shards | {shard}
            self.events.emit(
                "shard_killed", shard=shard, version=self._generation.version
            )

    def restart_shard(self, shard: int) -> None:
        """Re-admit a killed shard, rebuilding it from the last generation.

        The shard's rows are recovered from the serving generation's
        router snapshot (the authority the shard store may have missed
        publishes of while down), republished into the shard's own
        :class:`SnapshotStore`, and the freshly built index is installed
        into the serving generation by an atomic swap -- the same
        no-torn-reads argument as a publish.  Idempotent.
        """
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} out of range for {self.shards} shards")
        with self._ingest_lock:
            if shard not in self._down_shards:
                return
            generation = self._generation
            snapshot = generation.snapshot
            rows = [
                node_id
                for node_id in generation.node_order
                if shard_of(node_id, self.shards) == shard
            ]
            if rows:
                comps = np.asarray(
                    [snapshot.coordinate_of(node_id).components for node_id in rows],
                    dtype=np.float64,
                )
                hts = np.asarray(
                    [snapshot.coordinate_of(node_id).height for node_id in rows],
                    dtype=np.float64,
                )
            else:
                comps = np.empty((0, 1))
                hts = np.empty(0)
            store = self._shard_stores[shard]
            shard_snapshot = store.publish_epoch(
                rows, comps, hts, source=generation.source
            )
            index = store.index_for(shard_snapshot)
            shard_indexes = list(generation.shard_indexes)
            shard_sizes = list(generation.shard_sizes)
            shard_indexes[shard] = index
            shard_sizes[shard] = len(rows)
            rebuilt = ShardGeneration(
                generation.version,
                generation.source,
                snapshot,
                tuple(shard_indexes),
                tuple(shard_sizes),
                generation.global_seq,
                generation.node_order,
            )
            self._generations[generation.version] = rebuilt
            self._generation = rebuilt
            self._down_shards = self._down_shards - {shard}
            self.events.emit(
                "shard_restarted",
                shard=shard,
                version=generation.version,
                nodes=len(rows),
            )

    @property
    def down_shards(self) -> frozenset:
        """The shards currently excluded from the scatter set."""
        return self._down_shards

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def generation(self) -> ShardGeneration:
        """The current serving generation (pin it once per request)."""
        return self._generation

    def at(self, version: int) -> ShardGeneration:
        generation = self._generations.get(version)
        if generation is None:
            raise KeyError(
                f"generation {version} is not retained "
                f"(history={self.history}, latest={self._generation.version})"
            )
        return generation

    @property
    def version(self) -> int:
        return self._generation.version

    def serve(
        self,
        query: Query,
        *,
        generation: Optional[ShardGeneration] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> ServeResult:
        """Answer one query: a :class:`ServeResult` (unpacks as the
        historical ``(payload, snapshot_version, cached)`` 3-tuple).

        The whole answer is computed from one pinned generation.  Results
        are cached keyed on ``(version, query)`` -- an answer can never
        leak across generations -- and failures raise
        :class:`~repro.service.planner.QueryError` after being counted.

        While shards are down (fault injection) scatter queries are
        served *degraded* from the healthy subset: ``result.partial`` is
        true and ``result.missing_shards`` names the excluded shards.
        Degraded answers bypass the cache in both directions -- a partial
        payload must never be replayed once the shard is back, and a
        cached full payload must not masquerade as the degraded answer
        the oracle audit expects.

        Passing a :class:`TraceRecorder` collects per-stage durations
        (cache probe, per-shard scatter, merge) for this one request even
        when the registry's spans are globally disabled.
        """
        pinned = generation if generation is not None else self._generation
        stats = self._serve_stats[query.kind]
        installed = self._publish_walls.get(pinned.version)
        if installed is not None:
            age_s = self._timer() - installed
            self._h_serve_age_ms.observe(age_s * 1e3)
            self._g_generation_age_s.set(age_s)
        chaos = self.chaos
        if chaos is not None:
            delay_ms = chaos.serve_delay_ms()
            if delay_ms > 0.0 and query.kind != "pairwise":
                # Injected gray failure: the slow shard's extra service
                # time, charged to every scatter query.
                time.sleep(delay_ms / 1e3)
        down = self._down_shards
        degraded = bool(down) and query.kind != "pairwise"
        key = (pinned.version, query)
        if not degraded:
            with _span(self.registry, "store.cache", trace, kind=query.kind):
                with self._stats_lock:
                    found, payload = self.cache.get(key)
            if found:
                stats.served.inc()
                stats.cache_hits.inc()
                return ServeResult(copy.deepcopy(payload), pinned.version, True)
        started = self._timer()
        try:
            with _span(self.registry, "store.serve", trace, kind=query.kind):
                payload = pinned.answer(
                    query,
                    registry=self.registry,
                    trace=trace,
                    exclude_shards=down if degraded else (),
                )
        except QueryError:
            stats.errors.inc()
            raise
        elapsed_us = (self._timer() - started) * 1e6
        if degraded:
            if chaos is not None:
                chaos.note_degraded()
            stats.served.inc()
            stats.record_latency(elapsed_us)
            return ServeResult(
                payload,
                pinned.version,
                False,
                partial=True,
                missing_shards=tuple(sorted(down)),
            )
        # Copied outside the lock: a large range payload's deep copy must
        # not serialise every other executor thread's bookkeeping.
        cached_copy = copy.deepcopy(payload)
        with self._stats_lock:
            self.cache.put(key, cached_copy)
        stats.served.inc()
        stats.record_latency(elapsed_us)
        return ServeResult(payload, pinned.version, False)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Serving, cache, ingest and shard-occupancy counters (JSON-safe)."""
        generation = self._generation
        kinds = {
            kind: stats.as_dict()
            for kind, stats in self._serve_stats.items()
            if stats.served.value or stats.errors.value
        }
        with self._stats_lock:
            cache = {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "expirations": self.cache.expirations,
                "evictions_lru": self.cache.evictions_lru,
                "evictions_rollover": self.cache.evictions_rollover,
            }
        ingest = {
            "versions_published": self._c_publishes.value,
            "nodes_ingested": self._c_nodes_ingested.value,
            "last_publish_s": round(self._g_last_publish_s.value, 6),
        }
        return {
            "version": generation.version,
            "nodes": len(generation),
            "source": generation.source,
            "shards": {
                "count": self.shards,
                "index_kind": self.index_kind,
                "sizes": list(generation.shard_sizes),
                "down": sorted(self._down_shards),
            },
            "kinds": kinds,
            "cache": cache,
            "ingest": ingest,
        }

    def health(self, sections: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """The coordinate-health payload served by the ``health`` wire op.

        ``sections`` restricts the payload to the named
        :data:`HEALTH_SECTIONS` (canonical order is preserved; an unknown
        name raises ``ValueError``).  Every section except ``staleness``
        is a pure function of the publish stream -- byte-deterministic
        for a seeded publisher; ``staleness`` reads the store timer
        (generation age, publish-to-serve age quantiles), which is why
        deterministic consumers can ask for the other sections only.
        """
        if sections is None:
            wanted = HEALTH_SECTIONS
        else:
            unknown = [name for name in sections if name not in HEALTH_SECTIONS]
            if unknown:
                raise ValueError(
                    f"unknown health section(s) {unknown!r}; "
                    f"known: {list(HEALTH_SECTIONS)}"
                )
            wanted = tuple(name for name in HEALTH_SECTIONS if name in sections)
        summary = self.health_tracker.summary()
        generation = self._generation
        payload: Dict[str, Any] = {}
        for name in wanted:
            if name == "generation":
                payload[name] = {
                    "version": generation.version,
                    "nodes": len(generation),
                    "source": generation.source,
                    "epochs": summary["epochs"],
                    "mode": summary["mode"],
                }
            elif name == "staleness":
                installed = self._publish_walls.get(generation.version)
                payload[name] = {
                    "generation_age_s": (
                        self._timer() - installed if installed is not None else None
                    ),
                    "publish_to_serve_age_ms": self._h_serve_age_ms.quantile_summary(),
                    "serves_observed": self._h_serve_age_ms.count,
                }
            else:
                payload[name] = summary[name]
        return payload

    # ------------------------------------------------------------------
    # Construction conveniences
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(
        cls, snapshot, *, shards: int = 2, index_kind: str = "vptree", **kwargs
    ) -> "ShardedCoordinateStore":
        """A store pre-loaded with one snapshot's coordinates.

        The generation is republished (version restarts at 1); use the
        publish methods directly to preserve external version numbering.
        """
        store = cls(shards, index_kind=index_kind, **kwargs)
        store._publish_mapping(dict(snapshot.coordinates), source=snapshot.source)
        return store

    @classmethod
    def from_coordinates(
        cls,
        coordinates: Mapping[str, Coordinate],
        *,
        shards: int = 2,
        index_kind: str = "vptree",
        source: str = "",
        **kwargs,
    ) -> "ShardedCoordinateStore":
        store = cls(shards, index_kind=index_kind, **kwargs)
        store._publish_mapping(coordinates, source=source)
        return store
