"""The asyncio coordinate-serving daemon.

The serving logic is split in two layers:

* :class:`RequestEngine` -- the transport-agnostic half: bounded
  admission, thread-pool query execution, the chaos control plane and
  every wire operation's handler.  ``await engine.process(request)``
  turns one protocol request object into one response object, no socket
  involved.  The multi-tenant HTTP gateway (:mod:`repro.gateway`) runs
  one engine per tenant, which is what makes its responses byte-identical
  to the TCP daemon's: they are produced by the very same code.
* :class:`CoordinateServer` -- the TCP shell: it owns the listening
  socket, per-connection pipelining and backpressure, and delegates all
  request processing to its engine.

:class:`CoordinateServer` wraps a
:class:`~repro.server.sharding.ShardedCoordinateStore` with the
length-prefixed JSON protocol (:mod:`repro.server.protocol`) over TCP:

* **Pipelining with ordered responses** -- a connection may have many
  requests in flight; responses are written strictly in arrival order
  (ids are echoed as well, so clients can use either discipline).
* **Per-connection backpressure** -- each connection has a bounded
  in-flight window; once it fills, the daemon simply stops *reading*
  that socket, pushing back through TCP flow control instead of
  buffering without bound.
* **Bounded admission** -- a global in-flight limit sheds load
  explicitly: past it, requests are answered immediately with an
  ``overloaded`` error (and counted) rather than queued into memory.
  With ``retry_after_ms`` configured, the overloaded error carries that
  value as a retry-after hint which
  :meth:`~repro.server.client.AsyncCoordinateClient.request_with_retry`
  honors in place of its exponential backoff schedule.
* **Non-blocking serving** -- query execution runs on a small thread
  pool, so a long scatter-gather at 50k nodes never stalls the event
  loop's frame reading, and NumPy-backed shard kernels can overlap.
* **Zero-downtime ingest** -- the store's publish methods are plain
  thread-safe calls; a simulation thread streams epochs straight into
  the serving store (``run_batch_simulation(publish_store=...)``) while
  the loop keeps serving, and remote writers can use the wire
  ``publish`` op (full, or incremental deltas from protocol version 2;
  see :mod:`repro.server.protocol`).  Rollover is one atomic reference
  swap, so no request ever observes a half-published generation.

The daemon can run inside an existing event loop (:meth:`start` /
:meth:`wait_stopped`) or own a background loop thread
(:meth:`run_in_thread`), which is how the load harness, the
``queries-live`` scenario workload and the tests drive it.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Tuple

from repro.chaos.injector import ChaosInjector
from repro.chaos.schedule import FaultSchedule
from repro.obs.registry import TelemetryRegistry
from repro.obs.tracing import TraceRecorder, make_span
from repro.server.protocol import (
    HEADER,
    OPS,
    PROTOCOL_VERSION,
    QUERY_OPS,
    ProtocolError,
    decode_frame,
    encode_frame,
    frame_length,
    request_to_publish,
    request_to_query,
    request_version,
)
from repro.server.sharding import ShardedCoordinateStore
from repro.service.planner import QueryError

__all__ = ["CoordinateServer", "RequestEngine", "ServerThread"]


class RequestEngine:
    """Transport-agnostic request processing for one sharded store.

    Everything between "a protocol request object arrived" and "here is
    its response object" lives here: the atomic admission decision, the
    deterministic chaos schedule hooks, thread-pool query execution, and
    the per-op handlers.  The TCP daemon and the HTTP gateway are both
    thin shells over :meth:`process`, so their answers for the same
    store state are byte-identical by construction.
    """

    def __init__(
        self,
        store: ShardedCoordinateStore,
        *,
        admission_limit: int = 1024,
        executor_workers: Optional[int] = None,
        registry: Optional[TelemetryRegistry] = None,
        retry_after_ms: Optional[float] = None,
        admission_stats_extra: Optional[Callable[[], Dict[str, Any]]] = None,
        thread_name_prefix: str = "coordserve",
    ) -> None:
        if admission_limit < 1:
            raise ValueError("admission_limit must be >= 1")
        if retry_after_ms is not None and retry_after_ms <= 0.0:
            raise ValueError("retry_after_ms must be positive")
        self.store = store
        self.admission_limit = admission_limit
        #: Optional hint attached to overloaded errors; clients honoring
        #: it back off for the server-chosen interval instead of their
        #: own exponential schedule.
        self.retry_after_ms = retry_after_ms
        #: The engine adopts the store's registry by default, so one
        #: ``metrics`` op renders store + engine instruments together.
        self.registry = registry if registry is not None else store.registry
        #: Extra fields the transport merges into the ``stats`` op's
        #: admission section (the TCP daemon adds connection counters).
        self._admission_stats_extra = admission_stats_extra
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers or max(2, store.shards),
            thread_name_prefix=thread_name_prefix,
        )
        #: The admission decision stays an atomic check-and-increment
        #: under this lock; the registry instruments mirror the counts.
        self._stats_lock = threading.Lock()
        self._in_flight = 0
        self._max_in_flight_seen = 0
        self._c_admitted = self.registry.counter(
            "daemon_admitted_total", "Requests admitted past the limiter."
        )
        self._c_rejected = self.registry.counter(
            "daemon_rejected_overload_total", "Requests shed by admission control."
        )
        self._g_in_flight = self.registry.gauge(
            "daemon_in_flight", "Requests currently admitted and executing."
        )
        self._g_in_flight_max = self.registry.gauge(
            "daemon_in_flight_max", "High-water mark of admitted requests."
        )

    def shutdown(self, wait: bool = True) -> None:
        """Shut the executor down (idempotent)."""
        self._executor.shutdown(wait=wait)

    def _count_error(self, op: Any) -> None:
        """Per-op error accounting (satellite: the stats op reports these)."""
        label = op if isinstance(op, str) and op in OPS else "invalid"
        self.registry.counter(
            "daemon_errors_total", "Error responses by requested op.", op=label
        ).inc()

    def error_stats(self) -> Dict[str, Any]:
        """The ``errors`` section of the stats payload: per-op counts.

        ``by_op`` holds only ops that actually failed (requests whose op
        was missing or unknown count under ``"invalid"``); ``total`` sums
        them, so the old single global view is still one key away.
        """
        by_op: Dict[str, int] = {}
        for op in (*OPS, "invalid"):
            count = self.registry.counter("daemon_errors_total", op=op).value
            if count:
                by_op[op] = count
        return {"by_op": by_op, "total": sum(by_op.values())}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self) -> bool:
        with self._stats_lock:
            if self._in_flight >= self.admission_limit:
                admitted = False
            else:
                admitted = True
                self._in_flight += 1
                if self._in_flight > self._max_in_flight_seen:
                    self._max_in_flight_seen = self._in_flight
                in_flight = self._in_flight
        if not admitted:
            self._c_rejected.inc()
            return False
        self._c_admitted.inc()
        self._g_in_flight.set(in_flight)
        self._g_in_flight_max.update_max(in_flight)
        return True

    def _release(self) -> None:
        with self._stats_lock:
            self._in_flight -= 1
            in_flight = self._in_flight
        self._g_in_flight.set(in_flight)

    def inject_admission_load(self, amount: int) -> None:
        """Occupy ``amount`` admission slots (the admission-burst fault)."""
        if amount <= 0:
            return
        with self._stats_lock:
            self._in_flight += amount
            if self._in_flight > self._max_in_flight_seen:
                self._max_in_flight_seen = self._in_flight
            in_flight = self._in_flight
        self._g_in_flight.set(in_flight)
        self._g_in_flight_max.update_max(in_flight)

    def release_admission_load(self, amount: int) -> None:
        """Release slots taken by :meth:`inject_admission_load`."""
        if amount <= 0:
            return
        with self._stats_lock:
            self._in_flight = max(0, self._in_flight - amount)
            in_flight = self._in_flight
        self._g_in_flight.set(in_flight)

    def admission_stats(self) -> Dict[str, Any]:
        with self._stats_lock:
            in_flight = self._in_flight
            max_in_flight = self._max_in_flight_seen
        stats = {
            "limit": self.admission_limit,
            "in_flight": in_flight,
            "max_in_flight": max_in_flight,
            "admitted": self._c_admitted.value,
            "rejected_overload": self._c_rejected.value,
        }
        if self._admission_stats_extra is not None:
            stats.update(self._admission_stats_extra())
        return stats

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------
    async def process(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request; never raises (the response carries errors).

        The catch-all matters for correlation: an id-matching client only
        resolves a pending request when its id comes back, so even an
        unexpected failure (e.g. the executor shut down by a concurrent
        ``shutdown`` op) must echo the request's id.
        """
        request_id = request.get("id")
        op = request.get("op")
        # Per-request tracing is explicitly propagated (not contextvars:
        # those do not follow values into run_in_executor threads).
        trace = TraceRecorder() if request.get("trace") else None
        span_op = op if isinstance(op, str) and op in OPS else "invalid"
        try:
            with make_span(self.registry, "daemon.request", trace, {"op": span_op}):
                response = await self._process_admitted(request, request_id, trace)
        except Exception as exc:
            response = {
                "id": request_id,
                "ok": False,
                "error": f"internal error: {exc}",
            }
        if not response.get("ok"):
            self._count_error(op)
        if trace is not None:
            response["trace"] = trace.as_payload()
        return response

    async def _process_admitted(
        self,
        request: Dict[str, Any],
        request_id: Any,
        trace: Optional[TraceRecorder] = None,
    ) -> Dict[str, Any]:
        op = request.get("op")
        # Chaos is control plane: it bypasses admission entirely so an
        # active admission-burst fault can always be reported and
        # cleared over the wire (it would otherwise shed the very
        # request that ends it).
        if op == "chaos":
            return self._serve_chaos(request, request_id)
        chaos = getattr(self.store, "chaos", None)
        if chaos is not None and op in QUERY_OPS:
            # Advance the deterministic fault schedule *before* the
            # admission decision: requests shed by an injected burst
            # must still tick the counter or the burst never clears.
            decision = chaos.on_query(op)
            if decision.admission_acquire:
                self.inject_admission_load(decision.admission_acquire)
            if decision.admission_release:
                self.release_admission_load(decision.admission_release)
        with make_span(self.registry, "daemon.admission", trace, {}):
            admitted = self._admit()
        if not admitted:
            events = getattr(self.store, "events", None)
            if events is not None:
                events.emit(
                    "admission_shed",
                    op=str(request.get("op")),
                    limit=self.admission_limit,
                )
            response = {
                "id": request_id,
                "ok": False,
                "error": (
                    f"overloaded: admission limit of {self.admission_limit} "
                    "in-flight requests reached"
                ),
                "overloaded": True,
            }
            if self.retry_after_ms is not None:
                response["retry_after_ms"] = self.retry_after_ms
            return response
        try:
            try:
                query = request_to_query(request)
            except (ProtocolError, QueryError) as exc:
                return {"id": request_id, "ok": False, "error": str(exc)}
            if query is not None:
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    self._executor, self._serve_query, request_id, query, trace
                )
            if op == "ping":
                return {"id": request_id, "ok": True, "payload": {"pong": True}}
            if op == "hello":
                return {
                    "id": request_id,
                    "ok": True,
                    "payload": {
                        "protocol_version": PROTOCOL_VERSION,
                        "ops": list(OPS),
                    },
                }
            if op == "publish":
                try:
                    mode, parsed = request_to_publish(request)
                except (ProtocolError, QueryError) as exc:
                    return {"id": request_id, "ok": False, "error": str(exc)}
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    self._executor, self._serve_publish, request_id, mode, parsed
                )
            if op == "version":
                generation = self.store.generation()
                return {
                    "id": request_id,
                    "ok": True,
                    "payload": {
                        "version": generation.version,
                        "nodes": len(generation),
                        "source": generation.source,
                    },
                    "version": generation.version,
                }
            if op == "stats":
                payload = self.store.stats()
                payload["admission"] = self.admission_stats()
                payload["errors"] = self.error_stats()
                return {"id": request_id, "ok": True, "payload": payload}
            if op == "metrics":
                return {
                    "id": request_id,
                    "ok": True,
                    "payload": {
                        "content_type": "text/plain; version=0.0.4",
                        "text": self.registry.render_prometheus(),
                    },
                }
            if op == "health":
                sections = request.get("sections")
                if sections is not None and (
                    not isinstance(sections, (list, tuple))
                    or not all(isinstance(name, str) for name in sections)
                ):
                    return {
                        "id": request_id,
                        "ok": False,
                        "error": "health 'sections' must be a list of section names",
                    }
                try:
                    with make_span(self.registry, "daemon.health", trace, {}):
                        payload = self.store.health(sections)
                except ValueError as exc:
                    return {"id": request_id, "ok": False, "error": str(exc)}
                return {
                    "id": request_id,
                    "ok": True,
                    "payload": payload,
                    "version": self.store.version,
                }
            if op == "events":
                limit = request.get("limit")
                if limit is not None and (
                    isinstance(limit, bool) or not isinstance(limit, int) or limit < 0
                ):
                    return {
                        "id": request_id,
                        "ok": False,
                        "error": "events 'limit' must be a non-negative integer",
                    }
                events = self.store.events
                return {
                    "id": request_id,
                    "ok": True,
                    "payload": {
                        "events": events.tail(limit),
                        "stats": events.stats(),
                    },
                }
            if op == "nodes":
                generation = self.store.generation()
                return {
                    "id": request_id,
                    "ok": True,
                    "payload": {"node_ids": list(generation.node_order)},
                    "version": generation.version,
                }
            if op == "snapshot":
                loop = asyncio.get_running_loop()
                generation = self.store.generation()
                payload = await loop.run_in_executor(
                    self._executor, generation.snapshot.to_dict
                )
                return {
                    "id": request_id,
                    "ok": True,
                    "payload": payload,
                    "version": generation.version,
                }
            if op == "shutdown":
                return {"id": request_id, "ok": True, "payload": {"stopping": True}}
            return {  # pragma: no cover - request_to_query already validated op
                "id": request_id,
                "ok": False,
                "error": f"unhandled op {op!r}",
            }
        finally:
            self._release()

    def _serve_chaos(self, request: Dict[str, Any], request_id: Any) -> Dict[str, Any]:
        """The chaos control plane: install / report / clear a schedule.

        Gated on protocol version 3 exactly like delta publish is gated
        on version 2, so fault injection cannot be triggered by accident
        from an old client.
        """
        try:
            version = request_version(request)
        except ProtocolError as exc:
            return {"id": request_id, "ok": False, "error": str(exc)}
        if version < 3:
            return {
                "id": request_id,
                "ok": False,
                "error": (
                    "chaos op requires protocol version 3; "
                    "declare 'version': 3 (negotiate via the hello op)"
                ),
            }
        injector = getattr(self.store, "chaos", None)
        if request.get("report"):
            return {
                "id": request_id,
                "ok": True,
                "payload": {
                    "installed": injector is not None,
                    "report": injector.report() if injector is not None else None,
                },
            }
        if request.get("clear"):
            released = 0
            if injector is not None:
                released = injector.finish_serve_faults()
                if released:
                    self.release_admission_load(released)
                self.store.chaos = None
            return {
                "id": request_id,
                "ok": True,
                "payload": {
                    "cleared": injector is not None,
                    "released": released,
                },
            }
        spec = request.get("spec")
        if not isinstance(spec, str) or not spec:
            return {
                "id": request_id,
                "ok": False,
                "error": (
                    "chaos request needs a non-empty 'spec' string "
                    "(or 'report'/'clear': true)"
                ),
            }
        seed = request.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            return {"id": request_id, "ok": False, "error": "chaos 'seed' must be an integer"}
        if injector is not None:
            return {
                "id": request_id,
                "ok": False,
                "error": "a chaos schedule is already installed; clear it first",
            }
        try:
            schedule = FaultSchedule.parse(spec, seed=seed)
            installed = ChaosInjector(schedule, self.store)
        except ValueError as exc:
            return {"id": request_id, "ok": False, "error": str(exc)}
        self.store.chaos = installed
        return {
            "id": request_id,
            "ok": True,
            "payload": {"installed": True, "faults": len(schedule.events)},
        }

    def _serve_publish(self, request_id: Any, mode: str, parsed) -> Dict[str, Any]:
        """Executed on the thread pool: publish an epoch into the store.

        The store's publish methods are plain thread-safe calls
        (serialised by its ingest lock), so wire publishes, a streaming
        simulation thread and in-process callers can all interleave.
        """
        try:
            if mode == "delta":
                generation = self.store.publish_delta(parsed)
                changed = parsed.changed_count
            else:
                node_ids, components, heights, source = parsed
                generation = self.store.publish_epoch(
                    node_ids, components, heights, source=source
                )
                changed = len(node_ids)
        except (ValueError, TypeError) as exc:
            return {"id": request_id, "ok": False, "error": str(exc)}
        return {
            "id": request_id,
            "ok": True,
            "payload": {
                "version": generation.version,
                "nodes": len(generation),
                "mode": mode,
                "changed": changed,
            },
            "version": generation.version,
        }

    def _serve_query(
        self, request_id: Any, query, trace: Optional[TraceRecorder] = None
    ) -> Dict[str, Any]:
        """Executed on the thread pool: pin a generation, serve, respond."""
        try:
            result = self.store.serve(query, trace=trace)
        except QueryError as exc:
            events = getattr(self.store, "events", None)
            if events is not None:
                events.emit("shard_error", query_kind=query.kind, error=str(exc))
            return {"id": request_id, "ok": False, "error": str(exc)}
        response = {
            "id": request_id,
            "ok": True,
            "payload": result.payload,
            "version": result.version,
            "cached": result.cached,
        }
        if getattr(result, "partial", False):
            # Degraded contract: still ok, but the client is told exactly
            # which shards' candidates are missing from the answer.
            response["partial"] = True
            response["missing_shards"] = sorted(result.missing_shards)
        return response


class CoordinateServer:
    """Serve a sharded coordinate store over the wire protocol (TCP)."""

    def __init__(
        self,
        store: ShardedCoordinateStore,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight_per_connection: int = 32,
        admission_limit: int = 1024,
        executor_workers: Optional[int] = None,
        registry: Optional[TelemetryRegistry] = None,
        trace_spans: bool = False,
        retry_after_ms: Optional[float] = None,
    ) -> None:
        if max_in_flight_per_connection < 1:
            raise ValueError("max_in_flight_per_connection must be >= 1")
        self.store = store
        self.host = host
        self.port = port
        self.max_in_flight_per_connection = max_in_flight_per_connection
        #: The daemon adopts the store's registry by default, so one
        #: ``metrics`` op renders store + daemon instruments together.
        self.registry = registry if registry is not None else store.registry
        if trace_spans:
            self.registry.enable_spans(True)
        self.engine = RequestEngine(
            store,
            admission_limit=admission_limit,
            executor_workers=executor_workers,
            registry=self.registry,
            retry_after_ms=retry_after_ms,
            admission_stats_extra=self._connection_stats,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._c_connections = self.registry.counter(
            "daemon_connections_total", "Client connections accepted."
        )
        self._g_connections_open = self.registry.gauge(
            "daemon_connections_open", "Currently open client connections."
        )

    # -- engine delegation (the historical daemon API keeps working) ----
    @property
    def admission_limit(self) -> int:
        return self.engine.admission_limit

    def _admit(self) -> bool:
        return self.engine._admit()

    def _release(self) -> None:
        self.engine._release()

    def inject_admission_load(self, amount: int) -> None:
        self.engine.inject_admission_load(amount)

    def release_admission_load(self, amount: int) -> None:
        self.engine.release_admission_load(amount)

    def error_stats(self) -> Dict[str, Any]:
        return self.engine.error_stats()

    def admission_stats(self) -> Dict[str, Any]:
        return self.engine.admission_stats()

    def _connection_stats(self) -> Dict[str, Any]:
        """The TCP-transport fields of the admission stats section."""
        return {
            "per_connection_window": self.max_in_flight_per_connection,
            "connections_total": self._c_connections.value,
            "connections_open": int(self._g_connections_open.value),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); valid once started."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        name = sock.getsockname()
        return name[0], name[1]

    async def start(self) -> Tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self.address

    def stop(self) -> None:
        """Request shutdown (safe from any thread; idempotent)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass  # the loop already stopped (e.g. a wire 'shutdown' op)

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` op), then shut down."""
        assert self._stop_event is not None and self._server is not None
        await self._stop_event.wait()
        self._server.close()
        await self._server.wait_closed()
        self.engine.shutdown(wait=True)

    def run_in_thread(self) -> "ServerThread":
        """Run the daemon on its own background event-loop thread."""
        return ServerThread(self)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._c_connections.inc()
        self._g_connections_open.inc()
        window = asyncio.Semaphore(self.max_in_flight_per_connection)
        responses: "asyncio.Queue[Optional[asyncio.Task]]" = asyncio.Queue()
        writer_task = asyncio.create_task(
            self._write_responses(responses, writer, window)
        )
        shutdown_requested = False
        try:
            while True:
                try:
                    header = await reader.readexactly(HEADER.size)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                length = frame_length(header)
                body = await reader.readexactly(length)
                request = decode_frame(body)
                # Backpressure: once this connection's window is full we
                # stop reading its socket until a response drains.
                await window.acquire()
                task = asyncio.create_task(self.engine.process(request))
                await responses.put(task)
                if request.get("op") == "shutdown":
                    shutdown_requested = True
                    break
        except ProtocolError as exc:
            # A corrupt frame poisons the stream; report once and drop.
            self.engine._count_error(None)
            await window.acquire()
            failed: asyncio.Future = asyncio.get_running_loop().create_future()
            failed.set_result({"id": None, "ok": False, "error": str(exc)})
            await responses.put(failed)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            await responses.put(None)
            await writer_task
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._g_connections_open.dec()
            if shutdown_requested:
                self.stop()

    async def _write_responses(
        self,
        responses: "asyncio.Queue[Optional[asyncio.Task]]",
        writer: asyncio.StreamWriter,
        window: asyncio.Semaphore,
    ) -> None:
        """Drain completed responses to the socket, strictly in order."""
        while True:
            pending = await responses.get()
            if pending is None:
                return
            try:
                response = await pending
            except Exception as exc:  # defensive: a handler bug, not a client error
                response = {"id": None, "ok": False, "error": f"internal error: {exc}"}
            try:
                writer.write(encode_frame(response))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                return
            finally:
                window.release()


class ServerThread:
    """A daemon running on its own event-loop thread (context manager).

    The owning thread starts the loop, runs the server until
    :meth:`stop`, then tears everything down.  The serving *store* stays
    directly usable from any other thread -- publishing epochs does not
    go through the loop at all.

    Duck-typed over ``server``: anything exposing ``start()`` /
    ``wait_stopped()`` / ``stop()`` with the daemon's semantics works,
    which is how the HTTP gateway reuses this thread harness.
    """

    def __init__(self, server) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.address: Optional[Tuple[str, int]] = None

    def start(self, timeout_s: float = 10.0) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="coordinate-daemon", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("coordinate daemon failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"coordinate daemon failed to start: {self._startup_error}"
            )
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        async def main() -> None:
            try:
                self.address = await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            await self.server.wait_stopped()

        asyncio.run(main())

    def stop(self, timeout_s: float = 10.0) -> None:
        self.server.stop()
        if self._thread is not None:
            self._thread.join(timeout_s)
            if self._thread.is_alive():  # pragma: no cover - watchdog only
                raise RuntimeError("coordinate daemon did not stop in time")
            self._thread = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
