"""Typed client-side transport errors for the coordinate daemon.

The async client used to collapse every failure into a bare
``ConnectionError("connection lost: ...")`` string, leaving callers to
parse messages to tell a dead socket from a slow daemon.  These classes
make the failure mode part of the type:

* :class:`TransportError` -- the connection failed (reset, EOF, protocol
  corruption, or a request issued on a closed client).  Subclasses
  ``ConnectionError`` so every existing ``except ConnectionError`` site
  keeps working unchanged.
* :class:`RequestTimeout` -- one request exceeded its per-request
  timeout; the connection itself is still healthy and the late response,
  if it ever arrives, is discarded by correlation id.
* :class:`ServerOverloaded` -- the daemon answered, but shed the request
  via admission control; raised by the retry helper once its backoff
  budget is exhausted (a single ``request()`` returns the overloaded
  envelope rather than raising, preserving the wire contract).

Every instance raised by the client preserves the underlying cause via
``raise ... from`` / ``__cause__``, so tracebacks still show the socket-
level exception that started it.
"""

from __future__ import annotations

__all__ = ["RequestTimeout", "ServerOverloaded", "TransportError"]


class TransportError(ConnectionError):
    """The connection to the daemon failed mid-request."""


class RequestTimeout(TransportError):
    """No response arrived within the per-request timeout."""


class ServerOverloaded(TransportError):
    """The daemon shed the request (admission control) past all retries."""
