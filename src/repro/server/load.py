"""Closed- and open-loop load generation against a coordinate daemon.

The harness replays the service layer's deterministic workload mixes
(:mod:`repro.service.workload`) over the wire:

* **closed** mode runs N concurrent workers, each issuing its next query
  the moment its previous response arrives -- the classic closed loop
  whose offered load adapts to service rate; throughput is the headline.
* **open** mode fires queries on a fixed arrival schedule (``rate_qps``)
  regardless of completions -- latency under a *given* offered load is
  the headline.  Arrivals that cannot be admitted locally (the in-flight
  cap) wait, and that wait is charged to the recorded latency, so the
  report does not suffer from coordinated omission.

Responses are collected *in query-stream order* (not completion order)
and checksummed with the exact service-layer digest, which is what lets a
replayed mix be compared byte-for-byte against the in-process single
store: ``payload_checksum(load.results) == payload_checksum(oracle)``.

Per-kind latency percentiles are exact (the reservoir capacity is sized
above the query count) and reported in milliseconds.

**Telemetry.** Every run feeds a :class:`~repro.obs.registry
.TelemetryRegistry` (a fresh one per run unless the caller passes its
own): per-kind mergeable latency histograms plus outcome counters.  The
registry renders to Prometheus text for ``repro load --metrics-out``,
and the report's ``telemetry`` section embeds the per-kind histograms so
two runs' distributions can be diffed by :mod:`repro.obs.regression`.

**Deterministic timing.** With ``deterministic_timing=True`` the
recorded per-query latency is a pure hash of ``(position, kind)`` -- a
log-uniform synthetic value -- instead of the wall clock.  Latencies are
folded into the estimators and histograms *in query-stream order* after
the run, independent of async completion interleaving, so a seeded
workload yields byte-identical telemetry (and Prometheus text) on every
run -- the property the histogram determinism tests pin down.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.coordinate import Coordinate
from repro.obs.registry import TelemetryRegistry
from repro.server.client import AsyncCoordinateClient
from repro.server.errors import RequestTimeout
from repro.server.protocol import query_to_request
from repro.service.planner import Query
from repro.service.workload import payload_checksum
from repro.stats.percentile import StreamingPercentile

__all__ = [
    "LoadReport",
    "run_load",
    "run_load_async",
    "synthetic_arrays",
    "synthetic_coordinates",
]

#: Load-generation modes.
LOAD_MODES = ("closed", "open")


def deterministic_latency_ms(position: int, kind: str) -> float:
    """A synthetic per-query latency: a pure hash of (position, kind).

    Log-uniform over [0.1, 10) ms.  Being independent of the wall clock
    *and* of async completion order, it makes a seeded workload's whole
    telemetry output reproducible bit for bit.
    """
    digest = hashlib.blake2b(
        f"load-latency:{kind}:{position}".encode(), digest_size=8
    ).digest()
    uniform = int.from_bytes(digest, "big") / 2.0**64
    return 0.1 * 10.0 ** (2.0 * uniform)


def synthetic_arrays(
    n: int, *, seed: int = 7, clusters: int = 12, dims: int = 3
):
    """``(node_ids, components (n, d), heights (n,))`` of a clustered universe.

    Deterministic in ``(n, seed, clusters, dims)``.  The single source of
    the synthetic population: :func:`synthetic_coordinates` (the CLI's
    ``--synthetic``) and ``bench_server.py`` both build from it, so the
    populations they serve are identical by construction.
    """
    if n < 2:
        raise ValueError("synthetic universes need at least two nodes")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-300.0, 300.0, size=(clusters, dims))
    assignments = rng.integers(0, clusters, size=n)
    points = centers[assignments] + rng.normal(scale=25.0, size=(n, dims))
    return [f"node{i:06d}" for i in range(n)], points, np.zeros(n)


def synthetic_coordinates(
    n: int, *, seed: int = 7, clusters: int = 12, dims: int = 3
) -> Dict[str, Coordinate]:
    """The object-mapping view of :func:`synthetic_arrays`."""
    node_ids, points, _ = synthetic_arrays(n, seed=seed, clusters=clusters, dims=dims)
    return {
        node_id: Coordinate(points[row].tolist())
        for row, node_id in enumerate(node_ids)
    }


@dataclass(frozen=True, slots=True)
class LoadReport:
    """Outcome of one load run against a daemon."""

    mode: str
    query_count: int
    ok: int
    errors: int
    overloaded: int
    elapsed_s: float
    #: Per-kind latency summaries: count / p50_ms / p99_ms / exact flag.
    kinds: Dict[str, Dict[str, Any]]
    #: Responses in query-stream order (wire response objects).
    responses: Tuple[Dict[str, Any], ...]
    #: Exact service-layer digest over payloads in stream order.
    checksum: str
    #: Distinct snapshot versions observed across responses.
    versions: Tuple[int, ...]
    #: For open mode: the offered arrival rate (None in closed mode).
    offered_qps: Optional[float] = None
    #: Histogram-backed per-kind tail summary (p50/p99/p999 + buckets).
    telemetry: Dict[str, Any] = field(default_factory=dict)
    #: The daemon's coordinate-health payload fetched after the run
    #: (relative-error percentiles, drift, staleness); empty when the
    #: daemon predates the ``health`` op or the fetch was disabled.
    health: Dict[str, Any] = field(default_factory=dict)
    #: Every error counted by kind -- ``timeout``/``transport`` raised
    #: client-side, ``overloaded`` shed by admission, ``server`` error
    #: envelopes, ``health_fetch`` for a failed post-run health fetch.
    #: Nothing is ever silently dropped; the kinds sum to ``errors``
    #: (plus ``health_fetch``, which is not a query failure).
    error_kinds: Dict[str, int] = field(default_factory=dict)
    #: Ok responses that were served degraded (``"partial": true``).
    degraded: int = 0
    #: Per-position latency in ms (None where the request failed).  Kept
    #: off ``as_dict()``: it is raw SLO-evaluation input, not summary.
    latencies_ms: Tuple[Optional[float], ...] = ()

    @property
    def queries_per_s(self) -> float:
        if self.elapsed_s <= 0.0:
            return float("nan")
        return self.query_count / self.elapsed_s

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (responses elided).

        The ``telemetry`` key is additive: every pre-existing key keeps
        its exact meaning, so older report consumers are unaffected (the
        schema-stability test pins this).
        """
        return {
            "mode": self.mode,
            "query_count": self.query_count,
            "ok": self.ok,
            "errors": self.errors,
            "overloaded": self.overloaded,
            "elapsed_s": round(self.elapsed_s, 4),
            "qps": round(self.queries_per_s, 1),
            "offered_qps": self.offered_qps,
            "kinds": self.kinds,
            "checksum": self.checksum,
            "versions": list(self.versions),
            "telemetry": self.telemetry,
            "health": self.health,
            "error_kinds": dict(self.error_kinds),
            "degraded": self.degraded,
        }


async def _fetch_health(
    client: AsyncCoordinateClient, deterministic_timing: bool
) -> Tuple[Dict[str, Any], Optional[str]]:
    """``(health payload, error or None)`` for the report's ``health`` section.

    Under deterministic timing, the wall-clock ``staleness`` section is
    replaced by a deterministic placeholder (the section is still
    present -- the report schema does not depend on the timing mode) so
    seeded runs stay byte-identical end to end.  A failed fetch returns
    an empty section *and* the error string, which the caller counts as
    ``error_kinds["health_fetch"]`` -- never silently swallowed.
    """
    try:
        response = await client.op("health")
    except (ConnectionError, OSError) as exc:
        return {}, f"{type(exc).__name__}: {exc}"
    if not response.get("ok"):
        return {}, str(response.get("error") or "health op failed")
    health = dict(response.get("payload") or {})
    if deterministic_timing and "staleness" in health:
        health["staleness"] = {
            "deterministic_timing": True,
            "generation_age_s": None,
            "publish_to_serve_age_ms": None,
        }
    return health, None


async def run_load_async(
    address: Tuple[str, int],
    queries: Sequence[Query],
    *,
    mode: str = "closed",
    concurrency: int = 8,
    connections: int = 1,
    rate_qps: Optional[float] = None,
    max_in_flight: int = 1024,
    registry: Optional[TelemetryRegistry] = None,
    deterministic_timing: bool = False,
    collect_health: bool = True,
    request_timeout: Optional[float] = None,
    connect=None,
) -> LoadReport:
    """Drive ``queries`` through a running daemon and summarise.

    ``request_timeout`` (seconds) bounds each request individually; an
    expiry is recorded as an ``error_kinds["timeout"]`` failure at that
    stream position and the run continues.  Transport failures likewise
    count under ``error_kinds["transport"]`` instead of aborting the
    whole run -- the chaos harness depends on the load loop surviving a
    daemon that is deliberately misbehaving.

    ``connect`` swaps the transport: an async factory called once per
    connection that returns any client with the
    :class:`AsyncCoordinateClient` request surface (``request``, ``op``,
    ``close``).  The default connects over TCP to ``address``; the HTTP
    gateway passes a :class:`repro.gateway.client.GatewayClient` factory,
    which is how one load harness (and its oracle verification) drives
    both transports.
    """
    if mode not in LOAD_MODES:
        raise ValueError(f"unknown load mode {mode!r}; known: {list(LOAD_MODES)}")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if connections < 1:
        raise ValueError("connections must be >= 1")
    if mode == "open" and (rate_qps is None or rate_qps <= 0.0):
        raise ValueError("open mode needs a positive rate_qps")
    if request_timeout is not None and request_timeout <= 0.0:
        raise ValueError("request_timeout must be positive")
    if registry is None:
        registry = TelemetryRegistry()

    if connect is None:
        async def connect() -> AsyncCoordinateClient:
            return await AsyncCoordinateClient.connect(*address)

    clients = [await connect() for _ in range(connections)]
    responses: List[Optional[Dict[str, Any]]] = [None] * len(queries)
    #: Raw per-query latency in ms, indexed by stream position; folded
    #: into estimators/histograms in stream order after the run so the
    #: telemetry is independent of completion interleaving.
    measured: List[Optional[float]] = [None] * len(queries)
    requests = [query_to_request(query, None) for query in queries]

    async def issue(position: int, client: AsyncCoordinateClient, sent_at: float) -> None:
        # Client-side failures are *counted at their stream position*,
        # never allowed to propagate and abort the gather (which used to
        # silently lose every other in-flight result with them).
        try:
            response = await client.request(
                requests[position], timeout=request_timeout
            )
        except RequestTimeout as exc:
            responses[position] = {
                "ok": False,
                "error": str(exc),
                "client_error": "timeout",
            }
            return
        except (ConnectionError, OSError) as exc:
            responses[position] = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "client_error": "transport",
            }
            return
        measured[position] = (
            deterministic_latency_ms(position, queries[position].kind)
            if deterministic_timing
            else (time.perf_counter() - sent_at) * 1e3
        )
        responses[position] = response

    started = time.perf_counter()
    try:
        if mode == "closed":
            stream = iter(range(len(queries)))

            async def worker(worker_index: int) -> None:
                client = clients[worker_index % connections]
                while True:
                    # No await between next() and issue(): the single-loop
                    # iterator hand-off is race-free.
                    try:
                        position = next(stream)
                    except StopIteration:
                        return
                    await issue(position, client, time.perf_counter())

            await asyncio.gather(*(worker(i) for i in range(concurrency)))
        else:
            interval = 1.0 / float(rate_qps)
            in_flight = asyncio.Semaphore(max_in_flight)
            tasks: List[asyncio.Task] = []

            async def fire(position: int) -> None:
                # The arrival clock starts at the *scheduled* send time:
                # any local admission wait is part of measured latency.
                sent_at = time.perf_counter()
                async with in_flight:
                    await issue(position, clients[position % connections], sent_at)

            for position in range(len(queries)):
                due = started + position * interval
                delay = due - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(asyncio.create_task(fire(position)))
            await asyncio.gather(*tasks)
        health, health_error = (
            await _fetch_health(clients[0], deterministic_timing)
            if collect_health
            else ({}, None)
        )
    finally:
        for client in clients:
            await client.close()
    elapsed = time.perf_counter() - started

    ok = sum(1 for response in responses if response and response.get("ok"))
    overloaded = sum(
        1 for response in responses if response and response.get("overloaded")
    )
    errors = len(responses) - ok
    degraded = sum(
        1 for response in responses if response and response.get("partial")
    )

    # Count every failure by kind; the per-kind breakdown is what lets a
    # chaos run distinguish an injected fault's expected errors from a
    # genuine regression.
    error_kinds: Dict[str, int] = {}
    for response in responses:
        if response is None:
            kind = "transport"  # never returned: connection died mid-run
        elif response.get("ok"):
            continue
        elif response.get("client_error"):
            kind = str(response["client_error"])
        elif response.get("overloaded"):
            kind = "overloaded"
        else:
            kind = "server"
        error_kinds[kind] = error_kinds.get(kind, 0) + 1
    if health_error is not None:
        error_kinds["health_fetch"] = error_kinds.get("health_fetch", 0) + 1
    for kind in sorted(error_kinds):
        registry.counter(
            "load_errors_total", "Load-run failures by kind.", kind=kind
        ).inc(error_kinds[kind])

    # Fold latencies in stream order: exact reservoir + registry histogram
    # receive the identical value sequence, so the histogram-derived tails
    # are one bucket width from the exact ones by construction.
    latency = {
        kind: StreamingPercentile(capacity=max(len(queries), 1))
        for kind in ("knn", "nearest", "range", "pairwise", "centroid")
    }
    histograms = {
        kind: registry.histogram(
            "load_latency_ms", "Client-observed query latency.", kind=kind
        )
        for kind in latency
    }
    for position, value in enumerate(measured):
        if value is None:
            continue
        kind = queries[position].kind
        latency[kind].add(value)
        histograms[kind].observe(value)
    registry.counter("load_requests_total", "Load-run responses.", outcome="ok").inc(ok)
    registry.counter("load_requests_total", outcome="error").inc(errors)
    registry.counter(
        "load_overloaded_total", "Responses shed by daemon admission control."
    ).inc(overloaded)

    kinds: Dict[str, Dict[str, Any]] = {}
    telemetry_kinds: Dict[str, Dict[str, Any]] = {}
    for kind, summary in latency.items():
        if summary.count:
            kinds[kind] = {
                "count": summary.count,
                "p50_ms": round(summary.percentile(50.0), 4),
                "p99_ms": round(summary.percentile(99.0), 4),
                "latency_exact": summary.is_exact,
            }
            telemetry_kinds[kind] = {
                "count": summary.count,
                "p50_ms": round(summary.percentile(50.0), 4),
                "p99_ms": round(summary.percentile(99.0), 4),
                "p999_ms": round(summary.percentile(99.9), 4),
                "latency_exact": summary.is_exact,
                "histogram": histograms[kind].to_dict(),
            }
    telemetry = {
        "unit": "ms",
        "deterministic_timing": deterministic_timing,
        "kinds": telemetry_kinds,
    }
    checksum = payload_checksum(
        [
            SimpleNamespace(payload=(response or {}).get("payload"))
            for response in responses
        ]
    )
    versions = sorted(
        {
            int(response["version"])
            for response in responses
            if response and response.get("version") is not None
        }
    )
    return LoadReport(
        mode=mode,
        query_count=len(queries),
        ok=ok,
        errors=errors,
        overloaded=overloaded,
        elapsed_s=elapsed,
        kinds=kinds,
        responses=tuple(response or {} for response in responses),
        checksum=checksum,
        versions=tuple(versions),
        # Only an open loop *offers* a rate; a stray rate_qps passed with
        # closed mode must not masquerade as an offered-load figure.
        offered_qps=float(rate_qps) if mode == "open" and rate_qps else None,
        telemetry=telemetry,
        health=health,
        error_kinds=error_kinds,
        degraded=degraded,
        latencies_ms=tuple(measured),
    )


def run_load(address: Tuple[str, int], queries: Sequence[Query], **kwargs) -> LoadReport:
    """Synchronous wrapper: run the async load harness to completion."""
    return asyncio.run(run_load_async(address, queries, **kwargs))
