"""Closed- and open-loop load generation against a coordinate daemon.

The harness replays the service layer's deterministic workload mixes
(:mod:`repro.service.workload`) over the wire:

* **closed** mode runs N concurrent workers, each issuing its next query
  the moment its previous response arrives -- the classic closed loop
  whose offered load adapts to service rate; throughput is the headline.
* **open** mode fires queries on a fixed arrival schedule (``rate_qps``)
  regardless of completions -- latency under a *given* offered load is
  the headline.  Arrivals that cannot be admitted locally (the in-flight
  cap) wait, and that wait is charged to the recorded latency, so the
  report does not suffer from coordinated omission.

Responses are collected *in query-stream order* (not completion order)
and checksummed with the exact service-layer digest, which is what lets a
replayed mix be compared byte-for-byte against the in-process single
store: ``payload_checksum(load.results) == payload_checksum(oracle)``.

Per-kind latency percentiles are exact (the reservoir capacity is sized
above the query count) and reported in milliseconds.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.coordinate import Coordinate
from repro.server.client import AsyncCoordinateClient
from repro.server.protocol import query_to_request
from repro.service.planner import Query
from repro.service.workload import payload_checksum
from repro.stats.percentile import StreamingPercentile

__all__ = [
    "LoadReport",
    "run_load",
    "run_load_async",
    "synthetic_arrays",
    "synthetic_coordinates",
]

#: Load-generation modes.
LOAD_MODES = ("closed", "open")


def synthetic_arrays(
    n: int, *, seed: int = 7, clusters: int = 12, dims: int = 3
):
    """``(node_ids, components (n, d), heights (n,))`` of a clustered universe.

    Deterministic in ``(n, seed, clusters, dims)``.  The single source of
    the synthetic population: :func:`synthetic_coordinates` (the CLI's
    ``--synthetic``) and ``bench_server.py`` both build from it, so the
    populations they serve are identical by construction.
    """
    if n < 2:
        raise ValueError("synthetic universes need at least two nodes")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-300.0, 300.0, size=(clusters, dims))
    assignments = rng.integers(0, clusters, size=n)
    points = centers[assignments] + rng.normal(scale=25.0, size=(n, dims))
    return [f"node{i:06d}" for i in range(n)], points, np.zeros(n)


def synthetic_coordinates(
    n: int, *, seed: int = 7, clusters: int = 12, dims: int = 3
) -> Dict[str, Coordinate]:
    """The object-mapping view of :func:`synthetic_arrays`."""
    node_ids, points, _ = synthetic_arrays(n, seed=seed, clusters=clusters, dims=dims)
    return {
        node_id: Coordinate(points[row].tolist())
        for row, node_id in enumerate(node_ids)
    }


@dataclass(frozen=True, slots=True)
class LoadReport:
    """Outcome of one load run against a daemon."""

    mode: str
    query_count: int
    ok: int
    errors: int
    overloaded: int
    elapsed_s: float
    #: Per-kind latency summaries: count / p50_ms / p99_ms / exact flag.
    kinds: Dict[str, Dict[str, Any]]
    #: Responses in query-stream order (wire response objects).
    responses: Tuple[Dict[str, Any], ...]
    #: Exact service-layer digest over payloads in stream order.
    checksum: str
    #: Distinct snapshot versions observed across responses.
    versions: Tuple[int, ...]
    #: For open mode: the offered arrival rate (None in closed mode).
    offered_qps: Optional[float] = None

    @property
    def queries_per_s(self) -> float:
        if self.elapsed_s <= 0.0:
            return float("nan")
        return self.query_count / self.elapsed_s

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (responses elided)."""
        return {
            "mode": self.mode,
            "query_count": self.query_count,
            "ok": self.ok,
            "errors": self.errors,
            "overloaded": self.overloaded,
            "elapsed_s": round(self.elapsed_s, 4),
            "qps": round(self.queries_per_s, 1),
            "offered_qps": self.offered_qps,
            "kinds": self.kinds,
            "checksum": self.checksum,
            "versions": list(self.versions),
        }


async def run_load_async(
    address: Tuple[str, int],
    queries: Sequence[Query],
    *,
    mode: str = "closed",
    concurrency: int = 8,
    connections: int = 1,
    rate_qps: Optional[float] = None,
    max_in_flight: int = 1024,
) -> LoadReport:
    """Drive ``queries`` through a running daemon and summarise."""
    if mode not in LOAD_MODES:
        raise ValueError(f"unknown load mode {mode!r}; known: {list(LOAD_MODES)}")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if connections < 1:
        raise ValueError("connections must be >= 1")
    if mode == "open" and (rate_qps is None or rate_qps <= 0.0):
        raise ValueError("open mode needs a positive rate_qps")

    clients = [
        await AsyncCoordinateClient.connect(*address) for _ in range(connections)
    ]
    responses: List[Optional[Dict[str, Any]]] = [None] * len(queries)
    latency = {
        kind: StreamingPercentile(capacity=max(len(queries), 1))
        for kind in ("knn", "nearest", "range", "pairwise", "centroid")
    }
    requests = [query_to_request(query, None) for query in queries]

    async def issue(position: int, client: AsyncCoordinateClient, sent_at: float) -> None:
        response = await client.request(requests[position])
        latency[queries[position].kind].add((time.perf_counter() - sent_at) * 1e3)
        responses[position] = response

    started = time.perf_counter()
    try:
        if mode == "closed":
            stream = iter(range(len(queries)))

            async def worker(worker_index: int) -> None:
                client = clients[worker_index % connections]
                while True:
                    # No await between next() and issue(): the single-loop
                    # iterator hand-off is race-free.
                    try:
                        position = next(stream)
                    except StopIteration:
                        return
                    await issue(position, client, time.perf_counter())

            await asyncio.gather(*(worker(i) for i in range(concurrency)))
        else:
            interval = 1.0 / float(rate_qps)
            in_flight = asyncio.Semaphore(max_in_flight)
            tasks: List[asyncio.Task] = []

            async def fire(position: int) -> None:
                # The arrival clock starts at the *scheduled* send time:
                # any local admission wait is part of measured latency.
                sent_at = time.perf_counter()
                async with in_flight:
                    await issue(position, clients[position % connections], sent_at)

            for position in range(len(queries)):
                due = started + position * interval
                delay = due - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(asyncio.create_task(fire(position)))
            await asyncio.gather(*tasks)
    finally:
        for client in clients:
            await client.close()
    elapsed = time.perf_counter() - started

    ok = sum(1 for response in responses if response and response.get("ok"))
    overloaded = sum(
        1 for response in responses if response and response.get("overloaded")
    )
    errors = len(responses) - ok
    kinds: Dict[str, Dict[str, Any]] = {}
    for kind, summary in latency.items():
        if summary.count:
            kinds[kind] = {
                "count": summary.count,
                "p50_ms": round(summary.percentile(50.0), 4),
                "p99_ms": round(summary.percentile(99.0), 4),
                "latency_exact": summary.is_exact,
            }
    checksum = payload_checksum(
        [
            SimpleNamespace(payload=(response or {}).get("payload"))
            for response in responses
        ]
    )
    versions = sorted(
        {
            int(response["version"])
            for response in responses
            if response and response.get("version") is not None
        }
    )
    return LoadReport(
        mode=mode,
        query_count=len(queries),
        ok=ok,
        errors=errors,
        overloaded=overloaded,
        elapsed_s=elapsed,
        kinds=kinds,
        responses=tuple(response or {} for response in responses),
        checksum=checksum,
        versions=tuple(versions),
        # Only an open loop *offers* a rate; a stray rate_qps passed with
        # closed mode must not masquerade as an offered-load figure.
        offered_qps=float(rate_qps) if mode == "open" and rate_qps else None,
    )


def run_load(address: Tuple[str, int], queries: Sequence[Query], **kwargs) -> LoadReport:
    """Synchronous wrapper: run the async load harness to completion."""
    return asyncio.run(run_load_async(address, queries, **kwargs))
