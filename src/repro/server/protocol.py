"""The daemon's wire protocol: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON.  Requests and responses are JSON objects:

Request::

    {"id": 7, "op": "knn", "target": "node000012", "k": 3}

Response::

    {"id": 7, "ok": true, "payload": {...}, "version": 42, "cached": false}
    {"id": 7, "ok": false, "error": "unknown node 'nodeXXX'"}

``id`` is an opaque client-chosen correlation value echoed back verbatim;
the daemon answers each connection's requests in arrival order, so clients
may also rely on ordering alone.  ``version`` is the snapshot version the
whole answer was served from -- every element of a payload is consistent
with exactly that one published generation, across all shards.

Query payloads are *identical* to the in-process
:class:`~repro.service.planner.QueryPlanner` payload shapes (same keys,
same floats, same ordering), which is what lets a replayed workload be
checksummed against the single-store oracle byte for byte.

Operations
----------

========== ==========================================================
``knn``       ``target``, ``k`` -> planner knn payload
``nearest``   ``target`` -> planner knn payload with one neighbor
``range``     ``target``, ``radius_ms`` -> planner range payload
``distance``  ``a``, ``b`` -> planner pairwise payload
``centroid``  ``members`` (list, may be empty) -> planner centroid payload
``version``   -> ``{"version": int, "nodes": int, "source": str}``
``stats``     -> serving/ingest/admission/error counters (JSON-safe)
``metrics``   -> ``{"content_type": str, "text": str}`` -- the server's
                 telemetry registry rendered in Prometheus text format
``health``    -> coordinate-health sections (relative error, drift,
                 neighbor churn, staleness); optional ``sections`` list
                 restricts the payload, an unknown name is an error
``events``    -> ``{"events": [...], "stats": {...}}`` -- the structured
                 event log tail; optional integer ``limit``
``nodes``     -> ``{"node_ids": [...], "version": int}``
``snapshot``  -> the full snapshot dict (``CoordinateSnapshot.to_dict``)
``ping``      -> ``{"pong": true}``
``shutdown``  -> ``{"stopping": true}`` and the daemon begins shutdown
========== ==========================================================

Any request may additionally set ``"trace": true``; the response then
carries a ``trace`` list of per-stage ``{"stage", ..., "ms"}`` entries
(admission, cache probe, per-shard scatter, merge) for that one request.

The module is deliberately dependency-light (no asyncio imports) so both
the asyncio daemon and synchronous tools can share it.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.service.planner import Query, QueryError

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "frame_length",
    "HEADER",
    "request_to_query",
    "query_to_request",
    "OPS",
]

#: Frame header: 4-byte big-endian unsigned payload length.
HEADER = struct.Struct(">I")

#: Upper bound on a single frame's JSON body.  Large enough for a full
#: 100k-node snapshot dump, small enough to fail fast on a corrupt or
#: hostile length prefix.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Recognised operations.
OPS = (
    "knn",
    "nearest",
    "range",
    "distance",
    "centroid",
    "version",
    "stats",
    "metrics",
    "health",
    "events",
    "nodes",
    "snapshot",
    "ping",
    "shutdown",
)


class ProtocolError(ValueError):
    """A malformed frame or request (the connection should be dropped)."""


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """One wire frame: header + compact JSON body."""
    body = json.dumps(payload, separators=(",", ":"), allow_nan=False).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return HEADER.pack(len(body)) + body


def frame_length(header: bytes) -> int:
    """Decode and validate the 4-byte length prefix."""
    if len(header) != HEADER.size:
        raise ProtocolError(f"truncated frame header ({len(header)} bytes)")
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return length

def decode_frame(body: bytes) -> Dict[str, Any]:
    """Parse a frame body into a request/response object."""
    try:
        payload = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame body must be a JSON object")
    return payload


# ----------------------------------------------------------------------
# Request <-> Query translation
# ----------------------------------------------------------------------
def request_to_query(request: Mapping[str, Any]) -> Optional[Query]:
    """The service-layer :class:`Query` for a query-op request.

    Returns ``None`` for non-query operations (``version``, ``stats``,
    ...).  Raises :class:`~repro.service.planner.QueryError` on invalid
    parameters and :class:`ProtocolError` on an unknown/missing ``op`` --
    the caller turns both into error responses.
    """
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; known: {list(OPS)}"
        )
    if op == "knn":
        return Query.knn(_require_str(request, "target"), k=_require_int(request, "k", 3))
    if op == "nearest":
        return Query.nearest(_require_str(request, "target"))
    if op == "range":
        return Query.range(
            _require_str(request, "target"), _require_float(request, "radius_ms")
        )
    if op == "distance":
        return Query.pairwise(_require_str(request, "a"), _require_str(request, "b"))
    if op == "centroid":
        members = request.get("members", [])
        if not isinstance(members, (list, tuple)) or not all(
            isinstance(member, str) for member in members
        ):
            raise QueryError("centroid 'members' must be a list of node ids")
        return Query.centroid(tuple(members))
    return None


def query_to_request(query: Query, request_id: Any) -> Dict[str, Any]:
    """The wire request answering ``query`` (the load generator's side)."""
    if query.kind == "knn":
        return {"id": request_id, "op": "knn", "target": query.target, "k": query.k}
    if query.kind == "nearest":
        return {"id": request_id, "op": "nearest", "target": query.target}
    if query.kind == "range":
        return {
            "id": request_id,
            "op": "range",
            "target": query.target,
            "radius_ms": query.radius_ms,
        }
    if query.kind == "pairwise":
        return {"id": request_id, "op": "distance", "a": query.pair[0], "b": query.pair[1]}
    if query.kind == "centroid":
        return {"id": request_id, "op": "centroid", "members": list(query.members)}
    raise ProtocolError(f"query kind {query.kind!r} has no wire form")


def _require_str(request: Mapping[str, Any], key: str) -> str:
    value = request.get(key)
    if not isinstance(value, str) or not value:
        raise QueryError(f"request needs a non-empty string {key!r}")
    return value


def _require_int(request: Mapping[str, Any], key: str, default: int) -> int:
    value = request.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise QueryError(f"request field {key!r} must be an integer")
    return value


def _require_float(request: Mapping[str, Any], key: str) -> float:
    value = request.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"request needs a numeric {key!r}")
    return float(value)


def split_frames(buffer: bytes) -> Tuple[Tuple[Dict[str, Any], ...], bytes]:
    """Split complete frames off ``buffer``; returns (frames, remainder).

    A convenience for synchronous consumers (tests, simple tools); the
    asyncio paths read frames incrementally instead.
    """
    frames = []
    offset = 0
    while len(buffer) - offset >= HEADER.size:
        length = frame_length(buffer[offset : offset + HEADER.size])
        if len(buffer) - offset - HEADER.size < length:
            break
        start = offset + HEADER.size
        frames.append(decode_frame(buffer[start : start + length]))
        offset = start + length
    return tuple(frames), buffer[offset:]
