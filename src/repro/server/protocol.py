"""The daemon's wire protocol: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON.  Requests and responses are JSON objects:

Request::

    {"id": 7, "op": "knn", "target": "node000012", "k": 3}

Response::

    {"id": 7, "ok": true, "payload": {...}, "version": 42, "cached": false}
    {"id": 7, "ok": false, "error": "unknown node 'node000099'"}

``id`` is an opaque client-chosen correlation value echoed back verbatim;
the daemon answers each connection's requests in arrival order, so clients
may also rely on ordering alone.  ``version`` is the snapshot version the
whole answer was served from -- every element of a payload is consistent
with exactly that one published generation, across all shards.

Query payloads are *identical* to the in-process
:class:`~repro.service.planner.QueryPlanner` payload shapes (same keys,
same floats, same ordering), which is what lets a replayed workload be
checksummed against the single-store oracle byte for byte.

Operations
----------

========== ==========================================================
``knn``       ``target``, ``k`` -> planner knn payload
``nearest``   ``target`` -> planner knn payload with one neighbor
``range``     ``target``, ``radius_ms`` -> planner range payload
``distance``  ``a``, ``b`` -> planner pairwise payload
``centroid``  ``members`` (list, may be empty) -> planner centroid payload
``version``   -> ``{"version": int, "nodes": int, "source": str}``
``stats``     -> serving/ingest/admission/error counters (JSON-safe)
``metrics``   -> ``{"content_type": str, "text": str}`` -- the server's
                 telemetry registry rendered in Prometheus text format
``health``    -> coordinate-health sections (relative error, drift,
                 neighbor churn, staleness); optional ``sections`` list
                 restricts the payload, an unknown name is an error
``events``    -> ``{"events": [...], "stats": {...}}`` -- the structured
                 event log tail; optional integer ``limit``
``nodes``     -> ``{"node_ids": [...], "version": int}``
``snapshot``  -> the full snapshot dict (``CoordinateSnapshot.to_dict``)
``ping``      -> ``{"pong": true}``
``hello``     -> ``{"protocol_version": int, "ops": [...]}`` -- protocol
                 negotiation; see *Protocol versions* below
``publish``   -> ``nodes``, ``components``, optional ``heights``/
                 ``source`` publish a full epoch; with ``"delta": true``
                 (protocol version >= 2) only the changed rows travel,
                 plus optional ``removed``/``epoch`` -> ``{"version",
                 "nodes", "mode", "changed"}``
``chaos``     -> fault-injection control plane (protocol version >= 3):
                 ``spec``/``seed`` install a deterministic
                 :class:`~repro.chaos.schedule.FaultSchedule`,
                 ``"report": true`` fetches the chaos report,
                 ``"clear": true`` force-clears active faults.  Handled
                 *before* admission so an active admission burst can
                 always be cleared
``shutdown``  -> ``{"stopping": true}`` and the daemon begins shutdown
========== ==========================================================

While a shard is killed by fault injection, scatter-query responses are
*degraded*: still ``"ok": true`` but with ``"partial": true`` and a
``"missing_shards"`` list naming the shards whose candidates are absent.
The payload is byte-identical to the full scatter minus those shards
(checked by :func:`repro.chaos.oracle.verify_chaos_responses`).

Any request may additionally set ``"trace": true``; the response then
carries a ``trace`` list of per-stage ``{"stage", ..., "ms"}`` entries
(admission, cache probe, per-shard scatter, merge) for that one request.

Protocol versions
-----------------

Requests may carry an integer ``"version"`` field naming the protocol
revision they speak; a request without one speaks version 1, the
original versionless protocol, and is answered byte-identically to how
it always was.  ``hello`` returns the server's
:data:`PROTOCOL_VERSION` so a client can negotiate up front.  Version 2
adds the delta form of ``publish`` -- a version-1 (or versionless)
``publish`` can only be a full epoch, and a ``"delta": true`` request
that does not declare version >= 2 is rejected, so an old server or a
mixed fleet never misinterprets a delta as a tiny full population.
Version 3 adds the ``chaos`` op; a ``chaos`` request that does not
declare version >= 3 is rejected the same way, so fault injection can
never be triggered by accident from an old client.

The full hello-negotiation matrix -- what a client that declared each
version may send, and what the server answers when a request overreaches
the declared revision:

=================  =========  =========  =========
capability         v1 (none)  v2         v3
=================  =========  =========  =========
queries + admin    yes        yes        yes
full ``publish``   yes        yes        yes
delta ``publish``  rejected   yes        yes
``chaos`` op       rejected   rejected   yes
=================  =========  =========  =========

"rejected" is an ordinary ``ok: false`` error response naming the
required version (never a dropped connection), so a mixed-version fleet
degrades loudly instead of misbehaving: the client learns the server's
ceiling from ``hello`` and the server refuses anything above the
client's declared floor.

The module is deliberately dependency-light (no asyncio imports) so both
the asyncio daemon and synchronous tools can share it.

The HTTP gateway (:mod:`repro.gateway`) reuses this module's request and
response *objects* verbatim over HTTP/JSON; :func:`encode_body` is the
shared serializer that makes a gateway response body byte-identical to
the body of the equivalent TCP frame.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.service.planner import Query, QueryError
from repro.service.publish import EpochDelta

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_body",
    "encode_frame",
    "decode_frame",
    "frame_length",
    "HEADER",
    "request_to_query",
    "request_to_publish",
    "request_version",
    "query_to_request",
    "OPS",
    "QUERY_OPS",
]

#: Frame header: 4-byte big-endian unsigned payload length.
HEADER = struct.Struct(">I")

#: Upper bound on a single frame's JSON body.  Large enough for a full
#: 100k-node snapshot dump, small enough to fail fast on a corrupt or
#: hostile length prefix.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: The protocol revision this module speaks.  Version 1 is the original
#: versionless protocol; version 2 adds the delta form of ``publish``;
#: version 3 adds the ``chaos`` fault-injection op.
PROTOCOL_VERSION = 3

#: Recognised operations.
OPS = (
    "knn",
    "nearest",
    "range",
    "distance",
    "centroid",
    "version",
    "stats",
    "metrics",
    "health",
    "events",
    "nodes",
    "snapshot",
    "ping",
    "hello",
    "publish",
    "chaos",
    "shutdown",
)

#: The subset of :data:`OPS` that are store queries -- the requests that
#: advance a chaos schedule's deterministic request counter.
QUERY_OPS = ("knn", "nearest", "range", "distance", "centroid")


class ProtocolError(ValueError):
    """A malformed frame or request (the connection should be dropped)."""


def encode_body(payload: Mapping[str, Any]) -> bytes:
    """The canonical compact-JSON serialization of one request/response.

    This is exactly the body of a wire frame without its length prefix.
    The HTTP gateway sends these bytes as its response bodies, which is
    what makes them byte-identical to the TCP path.
    """
    body = json.dumps(payload, separators=(",", ":"), allow_nan=False).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return body


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """One wire frame: header + compact JSON body."""
    body = encode_body(payload)
    return HEADER.pack(len(body)) + body


def frame_length(header: bytes) -> int:
    """Decode and validate the 4-byte length prefix."""
    if len(header) != HEADER.size:
        raise ProtocolError(f"truncated frame header ({len(header)} bytes)")
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return length

def decode_frame(body: bytes) -> Dict[str, Any]:
    """Parse a frame body into a request/response object."""
    try:
        payload = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame body must be a JSON object")
    return payload


# ----------------------------------------------------------------------
# Request <-> Query translation
# ----------------------------------------------------------------------
def request_to_query(request: Mapping[str, Any]) -> Optional[Query]:
    """The service-layer :class:`Query` for a query-op request.

    Returns ``None`` for non-query operations (``version``, ``stats``,
    ...).  Raises :class:`~repro.service.planner.QueryError` on invalid
    parameters and :class:`ProtocolError` on an unknown/missing ``op`` --
    the caller turns both into error responses.
    """
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; known: {list(OPS)}"
        )
    if op == "knn":
        return Query.knn(_require_str(request, "target"), k=_require_int(request, "k", 3))
    if op == "nearest":
        return Query.nearest(_require_str(request, "target"))
    if op == "range":
        return Query.range(
            _require_str(request, "target"), _require_float(request, "radius_ms")
        )
    if op == "distance":
        return Query.pairwise(_require_str(request, "a"), _require_str(request, "b"))
    if op == "centroid":
        members = request.get("members", [])
        if not isinstance(members, (list, tuple)) or not all(
            isinstance(member, str) for member in members
        ):
            raise QueryError("centroid 'members' must be a list of node ids")
        return Query.centroid(tuple(members))
    return None


def request_version(request: Mapping[str, Any]) -> int:
    """The protocol version a request declares (1 when absent).

    Raises :class:`ProtocolError` for a malformed or unsupported value;
    a newer-than-ours version is rejected rather than guessed at.
    """
    version = request.get("version", 1)
    if isinstance(version, bool) or not isinstance(version, int):
        raise ProtocolError("request 'version' must be an integer protocol version")
    if version < 1:
        raise ProtocolError(f"protocol version {version} is not valid (minimum 1)")
    if version > PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version} is newer than this server's "
            f"{PROTOCOL_VERSION}; negotiate via the hello op"
        )
    return version


def request_to_publish(request: Mapping[str, Any]):
    """Parse a ``publish`` request into its mode and payload.

    Returns ``("full", (node_ids, components, heights, source))`` for a
    whole-population publish (the only form before protocol version 2)
    or ``("delta", EpochDelta)`` for the incremental form.  Raises
    :class:`~repro.service.planner.QueryError` on invalid fields and
    :class:`ProtocolError` on version violations -- the daemon turns
    both into error responses.
    """
    version = request_version(request)
    delta = bool(request.get("delta", False))
    if delta and version < 2:
        raise ProtocolError(
            "delta publish requires protocol version 2; "
            "declare 'version': 2 (negotiate via the hello op)"
        )
    node_ids = request.get("nodes", [])
    if not isinstance(node_ids, (list, tuple)) or not all(
        isinstance(node_id, str) and node_id for node_id in node_ids
    ):
        raise QueryError("publish 'nodes' must be a list of non-empty node ids")
    node_ids = list(node_ids)
    rows = request.get("components", [])
    if not isinstance(rows, (list, tuple)):
        raise QueryError("publish 'components' must be a list of coordinate rows")
    try:
        components = np.asarray(rows, dtype=np.float64)
    except (TypeError, ValueError):
        raise QueryError("publish 'components' rows must be numeric") from None
    if components.size == 0:
        components = components.reshape(0, 1)
    if components.ndim != 2 or components.shape[0] != len(node_ids):
        raise QueryError(
            "publish 'components' must hold one equal-length numeric row "
            "per entry of 'nodes'"
        )
    heights_field = request.get("heights")
    if heights_field is None:
        heights = None
    else:
        if not isinstance(heights_field, (list, tuple)):
            raise QueryError("publish 'heights' must be a list of numbers")
        try:
            heights = np.asarray(heights_field, dtype=np.float64)
        except (TypeError, ValueError):
            raise QueryError("publish 'heights' must be a list of numbers") from None
        if heights.shape != (len(node_ids),):
            raise QueryError("publish 'heights' must match 'nodes' in length")
    source = request.get("source", "")
    if not isinstance(source, str):
        raise QueryError("publish 'source' must be a string")
    if not delta:
        for key in ("removed", "epoch"):
            if request.get(key) is not None:
                raise QueryError(
                    f"publish {key!r} is only valid on a delta publish "
                    "('delta': true, protocol version >= 2)"
                )
        return "full", (node_ids, components, heights, source)
    removed = request.get("removed", [])
    if not isinstance(removed, (list, tuple)) or not all(
        isinstance(node_id, str) and node_id for node_id in removed
    ):
        raise QueryError("publish 'removed' must be a list of non-empty node ids")
    epoch = request.get("epoch")
    if epoch is not None and (isinstance(epoch, bool) or not isinstance(epoch, int)):
        raise QueryError("publish 'epoch' must be an integer")
    try:
        payload = EpochDelta(
            node_ids,
            components,
            heights,
            removed_ids=tuple(removed),
            source=source,
            epoch=epoch,
        )
    except ValueError as exc:
        raise QueryError(f"invalid delta publish: {exc}") from None
    return "delta", payload


def query_to_request(query: Query, request_id: Any) -> Dict[str, Any]:
    """The wire request answering ``query`` (the load generator's side)."""
    if query.kind == "knn":
        return {"id": request_id, "op": "knn", "target": query.target, "k": query.k}
    if query.kind == "nearest":
        return {"id": request_id, "op": "nearest", "target": query.target}
    if query.kind == "range":
        return {
            "id": request_id,
            "op": "range",
            "target": query.target,
            "radius_ms": query.radius_ms,
        }
    if query.kind == "pairwise":
        return {"id": request_id, "op": "distance", "a": query.pair[0], "b": query.pair[1]}
    if query.kind == "centroid":
        return {"id": request_id, "op": "centroid", "members": list(query.members)}
    raise ProtocolError(f"query kind {query.kind!r} has no wire form")


def _require_str(request: Mapping[str, Any], key: str) -> str:
    value = request.get(key)
    if not isinstance(value, str) or not value:
        raise QueryError(f"request needs a non-empty string {key!r}")
    return value


def _require_int(request: Mapping[str, Any], key: str, default: int) -> int:
    value = request.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise QueryError(f"request field {key!r} must be an integer")
    return value


def _require_float(request: Mapping[str, Any], key: str) -> float:
    value = request.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise QueryError(f"request needs a numeric {key!r}")
    return float(value)


def split_frames(buffer: bytes) -> Tuple[Tuple[Dict[str, Any], ...], bytes]:
    """Split complete frames off ``buffer``; returns (frames, remainder).

    A convenience for synchronous consumers (tests, simple tools); the
    asyncio paths read frames incrementally instead.
    """
    frames = []
    offset = 0
    while len(buffer) - offset >= HEADER.size:
        length = frame_length(buffer[offset : offset + HEADER.size])
        if len(buffer) - offset - HEADER.size < length:
            break
        start = offset + HEADER.size
        frames.append(decode_frame(buffer[start : start + length]))
        offset = start + length
    return tuple(frames), buffer[offset:]
