"""Asyncio client for the coordinate daemon.

:class:`AsyncCoordinateClient` speaks the length-prefixed JSON protocol
with pipelining: many requests may be outstanding on one connection, and
a background reader task resolves them by correlation id (the daemon also
guarantees in-order responses, but id matching keeps the client correct
for any compliant server).  The client assigns its own monotonically
increasing ids; callers never manage them.

**Failure typing.** Every transport failure raises a
:class:`~repro.server.errors.TransportError` (a ``ConnectionError``
subclass, so legacy handlers keep working) with the underlying socket or
protocol exception preserved as its ``__cause__``; a per-request
``timeout`` raises :class:`~repro.server.errors.RequestTimeout` while
leaving the connection usable -- the late response, if it ever arrives,
is dropped by correlation id.  :meth:`close` is idempotent and safe to
call concurrently with in-flight requests: the first caller tears the
connection down (failing every pending future with a typed error) and
every other caller simply awaits that teardown.

**Backoff.** :func:`backoff_delay_ms` is the client's deterministic
retry schedule -- capped exponential growth with seeded equal-jitter --
and :meth:`request_with_retry` applies it to timeouts and overloaded
responses, raising :class:`~repro.server.errors.ServerOverloaded` once
the budget is exhausted.  An overloaded response may carry a
server-supplied ``retry_after_ms`` hint; when it does, the next delay is
:func:`retry_after_delay_ms` -- at least the hinted interval, plus the
same seeded jitter discipline -- instead of the exponential schedule, so
the server's own estimate of when capacity returns wins over the
client's blind guess while retries stay byte-deterministic per seed.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
from typing import Any, Dict, Optional, Tuple

from repro.server.errors import RequestTimeout, ServerOverloaded, TransportError
from repro.server.protocol import (
    HEADER,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    frame_length,
    query_to_request,
)
from repro.service.planner import Query

__all__ = [
    "AsyncCoordinateClient",
    "backoff_delay_ms",
    "request_once",
    "retry_after_delay_ms",
]


def _rows(components) -> list:
    """JSON-safe nested lists for a coordinate-row array or sequence."""
    return [[float(value) for value in row] for row in components]


def backoff_delay_ms(
    attempt: int,
    *,
    base_ms: float = 10.0,
    cap_ms: float = 500.0,
    seed: int = 0,
) -> float:
    """Retry delay for ``attempt`` (0-based): capped exponential, seeded jitter.

    The bound doubles per attempt up to ``cap_ms``; the returned delay is
    equal-jitter over ``[bound/2, bound)`` with the jitter fraction a pure
    blake2b hash of ``(seed, attempt)`` -- deterministic for a seeded
    client, decorrelated across seeds, and never synchronised into a
    retry stampede the way un-jittered exponential backoff is.
    """
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    if base_ms <= 0.0 or cap_ms < base_ms:
        raise ValueError("need 0 < base_ms <= cap_ms")
    bound = min(cap_ms, base_ms * (2.0**attempt))
    digest = hashlib.blake2b(
        f"backoff:{seed}:{attempt}".encode(), digest_size=8
    ).digest()
    fraction = int.from_bytes(digest, "big") / 2.0**64
    return bound * (0.5 + 0.5 * fraction)


def retry_after_delay_ms(hint_ms: float, attempt: int, *, seed: int = 0) -> float:
    """Retry delay honoring a server ``retry_after_ms`` hint.

    ``Retry-After`` semantics are "wait at least this long", so the delay
    is the hint plus up to 50% seeded jitter *above* it (never below --
    jittering under the hint would land the retry back inside the window
    the server said was saturated).  The jitter fraction is a pure
    blake2b hash of ``(seed, attempt)``, matching
    :func:`backoff_delay_ms`'s determinism discipline.
    """
    if hint_ms < 0.0:
        raise ValueError("hint_ms must be >= 0")
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    digest = hashlib.blake2b(
        f"retry-after:{seed}:{attempt}".encode(), digest_size=8
    ).digest()
    fraction = int.from_bytes(digest, "big") / 2.0**64
    return hint_ms * (1.0 + 0.5 * fraction)


class AsyncCoordinateClient:
    """One pipelined protocol connection to a coordinate daemon."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[Any, asyncio.Future] = {}
        self._closed = False
        self._close_started = False
        self._close_done = asyncio.Event()
        self._reader_task = asyncio.create_task(self._read_responses())

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncCoordinateClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_responses(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(HEADER.size)
                body = await self._reader.readexactly(frame_length(header))
                response = decode_frame(body)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            OSError,
            ProtocolError,
        ) as exc:
            self._fail_pending(exc)
        except asyncio.CancelledError:
            self._fail_pending(TransportError("client is closed"))
            raise

    def _fail_pending(self, exc: BaseException) -> None:
        """Fail every in-flight request with a typed, cause-preserving error."""
        self._closed = True
        if isinstance(exc, TransportError):
            error = exc
        else:
            error = TransportError(f"connection lost: {exc}")
            error.__cause__ = exc
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    async def request(
        self, request: Dict[str, Any], *, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send one request object and await its response.

        The client overwrites ``id`` with its own correlation value.
        With ``timeout`` (seconds) the wait is bounded: expiry raises
        :class:`RequestTimeout` and abandons the correlation id, so a
        late response is silently discarded and the connection stays
        usable for subsequent requests.
        """
        if self._closed:
            raise TransportError("client is closed")
        request_id = next(self._ids)
        payload = dict(request)
        payload["id"] = request_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(encode_frame(payload))
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            self._pending.pop(request_id, None)
            raise TransportError(f"connection lost: {exc}") from exc
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise RequestTimeout(
                f"request {request_id} ({payload.get('op')}) timed out "
                f"after {timeout}s"
            ) from None

    async def request_with_retry(
        self,
        request: Dict[str, Any],
        *,
        retries: int = 3,
        timeout: Optional[float] = None,
        seed: int = 0,
        base_ms: float = 10.0,
        cap_ms: float = 500.0,
        sleep=asyncio.sleep,
    ) -> Dict[str, Any]:
        """``request()`` with deterministic capped-exponential backoff.

        Retries the transient failure modes -- :class:`RequestTimeout`
        and overloaded (admission-shed) responses -- up to ``retries``
        times, sleeping :func:`backoff_delay_ms` between attempts.  When
        an overloaded response carries a ``retry_after_ms`` hint, the
        next sleep is :func:`retry_after_delay_ms` over that hint instead
        (still seeded-jitter deterministic); a malformed hint is ignored
        and the exponential schedule applies.  Once the budget is
        exhausted the last timeout re-raises, or a
        :class:`ServerOverloaded` is raised for a still-shedding daemon.
        A :class:`TransportError` is never retried: this client owns a
        single connection, so a lost connection cannot heal here.
        """
        if retries < 0:
            raise ValueError("retries must be >= 0")
        last: Optional[BaseException] = None
        hint_ms: Optional[float] = None
        for attempt in range(retries + 1):
            if attempt:
                if hint_ms is not None:
                    delay_ms = retry_after_delay_ms(hint_ms, attempt - 1, seed=seed)
                else:
                    delay_ms = backoff_delay_ms(
                        attempt - 1, base_ms=base_ms, cap_ms=cap_ms, seed=seed
                    )
                await sleep(delay_ms / 1e3)
            hint_ms = None
            try:
                response = await self.request(request, timeout=timeout)
            except RequestTimeout as exc:
                last = exc
                continue
            if response.get("overloaded"):
                overloaded = ServerOverloaded(
                    response.get("error") or "server overloaded"
                )
                last = overloaded
                hint = response.get("retry_after_ms")
                if (
                    not isinstance(hint, bool)
                    and isinstance(hint, (int, float))
                    and hint >= 0
                ):
                    hint_ms = float(hint)
                continue
            return response
        assert last is not None
        raise last

    async def query(
        self, query: Query, *, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send one service-layer query and await its wire response."""
        return await self.request(query_to_request(query, None), timeout=timeout)

    async def op(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one non-query operation (``version``, ``stats``, ...)."""
        return await self.request({"op": op, **fields})

    async def chaos(self, **fields: Any) -> Dict[str, Any]:
        """Send one ``chaos`` control-plane request (protocol version 3).

        ``chaos(spec="shard-kill@40+60:shard=1", seed=0)`` installs a
        fault schedule, ``chaos(report=True)`` fetches the deterministic
        chaos report, ``chaos(clear=True)`` force-clears every active
        fault and detaches the injector.
        """
        return await self.request(
            {"op": "chaos", "version": PROTOCOL_VERSION, **fields}
        )

    async def publish_full(
        self, node_ids, components, heights=None, *, source: str = ""
    ) -> Dict[str, Any]:
        """Publish a whole-population epoch over the wire (any version)."""
        request: Dict[str, Any] = {
            "op": "publish",
            "nodes": [str(node_id) for node_id in node_ids],
            "components": _rows(components),
            "source": source,
        }
        if heights is not None:
            request["heights"] = [float(height) for height in heights]
        return await self.request(request)

    async def publish_delta(
        self,
        node_ids,
        components,
        heights=None,
        *,
        removed_ids=(),
        source: str = "",
        epoch: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Publish only the changed rows (protocol version 2's delta op)."""
        request: Dict[str, Any] = {
            "op": "publish",
            "version": PROTOCOL_VERSION,
            "delta": True,
            "nodes": [str(node_id) for node_id in node_ids],
            "components": _rows(components),
            "removed": [str(node_id) for node_id in removed_ids],
            "source": source,
        }
        if heights is not None:
            request["heights"] = [float(height) for height in heights]
        if epoch is not None:
            request["epoch"] = epoch
        return await self.request(request)

    async def close(self) -> None:
        """Tear the connection down; idempotent and concurrency-safe.

        The first caller performs the teardown (cancelling the reader
        fails every pending request with a typed :class:`TransportError`);
        concurrent and repeated callers await the same completion event,
        so double-close from a ``finally`` plus a context-manager exit is
        harmless.
        """
        if self._close_started:
            await self._close_done.wait()
            return
        self._close_started = True
        self._closed = True
        try:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        finally:
            self._close_done.set()

    async def __aenter__(self) -> "AsyncCoordinateClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def request_once(
    address: Tuple[str, int], request: Dict[str, Any]
) -> Dict[str, Any]:
    """Connect, send one request, return its response, disconnect."""
    client = await AsyncCoordinateClient.connect(*address)
    try:
        return await client.request(request)
    finally:
        await client.close()
