"""Asyncio client for the coordinate daemon.

:class:`AsyncCoordinateClient` speaks the length-prefixed JSON protocol
with pipelining: many requests may be outstanding on one connection, and
a background reader task resolves them by correlation id (the daemon also
guarantees in-order responses, but id matching keeps the client correct
for any compliant server).  The client assigns its own monotonically
increasing ids; callers never manage them.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Optional, Tuple

from repro.server.protocol import (
    HEADER,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    frame_length,
    query_to_request,
)
from repro.service.planner import Query

__all__ = ["AsyncCoordinateClient", "request_once"]


def _rows(components) -> list:
    """JSON-safe nested lists for a coordinate-row array or sequence."""
    return [[float(value) for value in row] for row in components]


class AsyncCoordinateClient:
    """One pipelined protocol connection to a coordinate daemon."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[Any, asyncio.Future] = {}
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_responses())

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncCoordinateClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_responses(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(HEADER.size)
                body = await self._reader.readexactly(frame_length(header))
                response = decode_frame(body)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            ProtocolError,
        ) as exc:
            self._fail_pending(exc)
        except asyncio.CancelledError:
            self._fail_pending(ConnectionError("client closed"))
            raise

    def _fail_pending(self, exc: BaseException) -> None:
        self._closed = True
        for future in self._pending.values():
            if not future.done():
                future.set_exception(ConnectionError(f"connection lost: {exc}"))
        self._pending.clear()

    async def request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object and await its response.

        The client overwrites ``id`` with its own correlation value.
        """
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = next(self._ids)
        payload = dict(request)
        payload["id"] = request_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_frame(payload))
        await self._writer.drain()
        return await future

    async def query(self, query: Query) -> Dict[str, Any]:
        """Send one service-layer query and await its wire response."""
        return await self.request(query_to_request(query, None))

    async def op(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one non-query operation (``version``, ``stats``, ...)."""
        return await self.request({"op": op, **fields})

    async def publish_full(
        self, node_ids, components, heights=None, *, source: str = ""
    ) -> Dict[str, Any]:
        """Publish a whole-population epoch over the wire (any version)."""
        request: Dict[str, Any] = {
            "op": "publish",
            "nodes": [str(node_id) for node_id in node_ids],
            "components": _rows(components),
            "source": source,
        }
        if heights is not None:
            request["heights"] = [float(height) for height in heights]
        return await self.request(request)

    async def publish_delta(
        self,
        node_ids,
        components,
        heights=None,
        *,
        removed_ids=(),
        source: str = "",
        epoch: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Publish only the changed rows (protocol version 2's delta op)."""
        request: Dict[str, Any] = {
            "op": "publish",
            "version": PROTOCOL_VERSION,
            "delta": True,
            "nodes": [str(node_id) for node_id in node_ids],
            "components": _rows(components),
            "removed": [str(node_id) for node_id in removed_ids],
            "source": source,
        }
        if heights is not None:
            request["heights"] = [float(height) for height in heights]
        if epoch is not None:
            request["epoch"] = epoch
        return await self.request(request)

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "AsyncCoordinateClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def request_once(
    address: Tuple[str, int], request: Dict[str, Any]
) -> Dict[str, Any]:
    """Connect, send one request, return its response, disconnect."""
    client = await AsyncCoordinateClient.connect(*address)
    try:
        return await client.request(request)
    finally:
        await client.close()
