"""The ``repro serve-daemon`` and ``repro load`` command groups.

Usage::

    # Serve a saved snapshot over TCP on 4 shards
    repro serve-daemon --snapshot snapshot.json --shards 4 --port 9917

    # Serve a registered scenario's final coordinates
    repro serve-daemon --scenario mesh-replay --shards 2 --index vptree

    # Serve a synthetic clustered universe (benchmarks, smoke tests)
    repro serve-daemon --synthetic 5000 --port 9917 --ready-file ready.txt

    # Replay a deterministic mixed workload against a running daemon
    repro load --port 9917 --count 5000 --mix mixed --concurrency 16

    # ... verifying byte-identical results against the linear oracle,
    # then shutting the daemon down cleanly
    repro load --port 9917 --count 2000 --verify-oracle --shutdown

    # Dump the server's telemetry registry in Prometheus text format
    repro metrics --port 9917
    repro metrics --port 9917 --out metrics.prom

    # Coordinate-health report (relative error, drift, churn, staleness)
    repro health --port 9917
    repro health --port 9917 --sections relative_error,drift --json

    # Live text dashboard: poll stats + health, plot trends
    repro watch --port 9917 --interval 0.5 --iterations 10

``serve-daemon`` runs in the foreground until Ctrl-C, a ``shutdown``
request, or ``--max-seconds``; ``--ready-file`` writes ``host port`` once
the socket is bound (for scripts and CI).  ``load`` fetches the node
population over the wire, generates the same deterministic query stream
the in-process workload layer would, and reports throughput plus exact
per-kind latency percentiles; ``--verify-oracle`` downloads the served
snapshot and replays the stream through the single-store linear oracle,
failing (exit 1) unless the daemon's answers are byte-identical.

``load --metrics-out FILE`` writes the load run's *client-side* registry
(per-kind latency histograms and outcome counters) as Prometheus text;
with ``--deterministic-timing`` recorded latencies are a pure hash of the
query stream, so the file is byte-identical across repeated seeded runs.
``load --health-out FILE`` writes the daemon's coordinate-health section
of the report as JSON and ``--events-out FILE`` dumps the daemon's
structured event log as JSONL.  Every artifact flag creates missing
parent directories and fails with a one-line ``error:`` message and exit
code 2 when the path is unwritable.  ``metrics`` fetches the
*server-side* registry over the wire ``metrics`` op.  ``serve-daemon
--trace-spans`` additionally records per-stage span histograms
(``span_ms``) on the request path.

``load --gateway http://HOST:PORT --tenant NAME --api-key KEY`` drives a
multi-tenant HTTP gateway (:mod:`repro.gateway`) instead of a TCP
daemon: the same deterministic query stream, oracle verification and
chaos injection run against the named tenant's coordinate space through
:class:`repro.gateway.client.GatewayClient`.  ``--shutdown`` is refused
in gateway mode -- tenants cannot stop the shared process.

``load --chaos SPEC`` installs a deterministic fault schedule on the
daemon for the duration of the run (``kind@at+duration[:key=value...]``,
comma-separated) and evaluates recovery SLOs afterwards: bounded counted
error window, no torn reads, and p99 re-convergence.  ``--chaos-out``
writes the full chaos report (fault lifecycle, SLO inputs and verdicts)
as JSON, re-checkable offline with ``python -m repro.chaos.slo``;
``--request-timeout`` bounds each request and counts timeouts as typed
errors instead of hanging the run.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.chaos.schedule import FaultSchedule
from repro.chaos.slo import SLOThresholds, evaluate as evaluate_slo
from repro.obs.registry import TelemetryRegistry
from repro.server.client import AsyncCoordinateClient
from repro.server.daemon import CoordinateServer
from repro.server.load import LOAD_MODES, run_load_async, synthetic_coordinates
from repro.server.sharding import ShardedCoordinateStore
from repro.service.index import INDEX_KINDS
from repro.service.planner import QueryPlanner
from repro.service.publish import EpochDelta
from repro.service.snapshot import CoordinateSnapshot, SnapshotStore
from repro.service.workload import QUERY_MIXES, generate_queries, run_workload

__all__ = ["main"]


def _write_artifact(path: Path, text: str, label: str) -> None:
    """Write a CLI output artifact, creating missing parent directories.

    An unwritable path (a file where a directory is needed, a read-only
    tree) raises ``OSError``, which ``main`` turns into a one-line
    ``error:`` message and exit code 2 -- no traceback, no partially
    reported success.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    print(f"{label} written to {path}")


# ----------------------------------------------------------------------
# repro serve-daemon
# ----------------------------------------------------------------------
def _build_store(args: argparse.Namespace) -> ShardedCoordinateStore:
    store = ShardedCoordinateStore(
        args.shards,
        index_kind=args.index,
        history=args.history,
        cache_entries=args.cache_entries,
    )
    if args.snapshot is not None:
        snapshot = CoordinateSnapshot.load(args.snapshot)
        store.publish_delta(
            EpochDelta.from_coordinates(
                dict(snapshot.coordinates),
                source=snapshot.source or str(args.snapshot),
            )
        )
    elif args.scenario is not None:
        from repro.engine.kernel import run_scenario
        from repro.scenarios.registry import get_scenario

        spec = get_scenario(args.scenario)
        print(
            f"running scenario {spec.name!r} ({spec.mode}, "
            f"{spec.network.nodes} nodes)...",
            flush=True,
        )
        run = run_scenario(spec)
        store.ingest_collector(run.collector, source=spec.name)
    else:
        store.publish_delta(
            EpochDelta.from_coordinates(
                synthetic_coordinates(args.synthetic, seed=args.seed),
                source=f"synthetic-{args.synthetic}",
            )
        )
    return store


def _cmd_serve_daemon(args: argparse.Namespace) -> int:
    store = _build_store(args)
    server = CoordinateServer(
        store,
        host=args.host,
        port=args.port,
        max_in_flight_per_connection=args.window,
        admission_limit=args.admission_limit,
        trace_spans=args.trace_spans,
    )

    async def serve() -> None:
        host, port = await server.start()
        generation = store.generation()
        print(
            f"serving {len(generation)} nodes (v{generation.version}, "
            f"{store.shards} shard(s), {store.index_kind} index) "
            f"on {host}:{port}",
            flush=True,
        )
        if args.ready_file is not None:
            args.ready_file.write_text(f"{host} {port}\n")
        if args.max_seconds is not None:
            asyncio.get_running_loop().call_later(args.max_seconds, server.stop)
        await server.wait_stopped()
        print("daemon stopped cleanly", flush=True)

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        server.stop()
        print("interrupted; daemon stopped cleanly", flush=True)
    return 0


# ----------------------------------------------------------------------
# repro load
# ----------------------------------------------------------------------
def _print_load_report(report) -> None:
    print(
        f"{report.query_count} queries in {report.elapsed_s:.3f}s "
        f"({report.queries_per_s:,.0f} q/s, mode {report.mode}"
        + (
            f", offered {report.offered_qps:,.0f} q/s"
            if report.offered_qps is not None
            else ""
        )
        + f"), {report.ok} ok / {report.errors} errors "
        f"({report.overloaded} overloaded), "
        f"versions {list(report.versions)}, checksum {report.checksum[:12]}"
    )
    if report.kinds:
        width = max(len(kind) for kind in report.kinds)
        header = f"{'kind':<{width}}  {'count':>7}  {'p50 ms':>9}  {'p99 ms':>9}"
        print(header)
        print("-" * len(header))
        for kind, summary in sorted(report.kinds.items()):
            print(
                f"{kind:<{width}}  {summary['count']:>7}  "
                f"{summary['p50_ms']:>9.3f}  {summary['p99_ms']:>9.3f}"
            )


async def _load_async(args: argparse.Namespace, schedule=None) -> int:
    address = (args.host, args.port or 0)
    connect = None
    if args.gateway is not None:
        from repro.gateway.client import GatewayClient

        async def connect():
            return await GatewayClient.connect(
                args.gateway, args.tenant, args.api_key
            )

    if connect is not None:
        client = await connect()
    else:
        client = await AsyncCoordinateClient.connect(*address)
    chaos_installed = False
    try:
        listing = await client.op("nodes")
        if not listing.get("ok"):
            print(f"error: daemon refused node listing: {listing.get('error')}", file=sys.stderr)
            return 2
        node_ids = listing["payload"]["node_ids"]
        if len(node_ids) < 2:
            print("error: daemon is serving fewer than two nodes", file=sys.stderr)
            return 2
        snapshot_payload: Optional[Dict[str, Any]] = None
        if args.verify_oracle:
            dump = await client.op("snapshot")
            if not dump.get("ok"):
                print(
                    f"error: daemon refused snapshot dump: {dump.get('error')}",
                    file=sys.stderr,
                )
                return 2

            snapshot_payload = dump["payload"]

        shards_serving: Optional[int] = None
        if schedule is not None:
            stats = await client.op("stats")
            if stats.get("ok"):
                shards_serving = int(stats["payload"]["shards"]["count"])
            install = await client.chaos(spec=schedule.spec, seed=schedule.seed)
            if not install.get("ok"):
                print(
                    f"error: daemon refused chaos schedule: {install.get('error')}",
                    file=sys.stderr,
                )
                return 2
            chaos_installed = True
            print(
                f"chaos schedule installed: {len(schedule.events)} fault(s), "
                f"seed {schedule.seed}"
            )

        queries = generate_queries(
            node_ids,
            args.count,
            mix=args.mix,
            seed=args.seed,
            k=args.k,
            radius_ms=args.radius,
        )
        registry = TelemetryRegistry()
        report = await run_load_async(
            address,
            queries,
            mode=args.mode,
            concurrency=args.concurrency,
            connections=args.connections,
            rate_qps=args.rate,
            registry=registry,
            deterministic_timing=args.deterministic_timing,
            request_timeout=args.request_timeout,
            connect=connect,
        )
        _print_load_report(report)
        if report.error_kinds:
            print(
                "errors by kind: "
                + ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(report.error_kinds.items())
                )
            )
        if report.degraded:
            print(f"{report.degraded} response(s) served degraded (partial)")

        chaos_report: Optional[Dict[str, Any]] = None
        if chaos_installed:
            fetched = await client.chaos(report=True)
            if fetched.get("ok"):
                chaos_report = fetched["payload"].get("report")
            cleared = await client.chaos(clear=True)
            chaos_installed = False
            if not cleared.get("ok"):  # pragma: no cover - clear never refuses
                print(
                    f"error: daemon refused chaos clear: {cleared.get('error')}",
                    file=sys.stderr,
                )

        exit_code = 0
        torn_read_count: Optional[int] = None
        if report.errors and schedule is None:
            # Under a chaos schedule errors are expected inside the fault
            # windows; the SLO gate below bounds them instead.
            print(f"error: {report.errors} request(s) failed", file=sys.stderr)
            exit_code = 1
        if args.verify_oracle and snapshot_payload is not None:
            snapshot = CoordinateSnapshot.from_dict(snapshot_payload)
            if schedule is not None:
                # Partial responses cannot match the full-stream checksum;
                # check each response against the (healthy-subset) oracle.
                from repro.chaos.oracle import verify_chaos_responses

                verdict = verify_chaos_responses(
                    snapshot,
                    queries,
                    report.responses,
                    shards=shards_serving or 2,
                )
                identical = not verdict["mismatches"]
                torn_read_count = len(verdict["mismatches"])
                print(
                    f"chaos oracle: {verdict['matches']}/{verdict['checked']} "
                    f"responses identical ({verdict['partial_checked']} degraded)"
                )
                if not identical:
                    print(
                        "error: daemon results diverged from the healthy-subset "
                        f"oracle at positions {verdict['mismatches'][:10]}",
                        file=sys.stderr,
                    )
                    exit_code = 1
            else:
                oracle_store = SnapshotStore.from_snapshot(
                    snapshot, index_kind="linear"
                )
                oracle = run_workload(
                    QueryPlanner(oracle_store, clock=lambda: 0.0, timer=lambda: 0.0),
                    queries,
                    timer=lambda: 0.0,
                )
                identical = oracle.checksum == report.checksum
                print(
                    f"linear oracle checksum {oracle.checksum[:12]}; "
                    f"identical: {identical}"
                )
                if not identical:
                    print(
                        "error: daemon results diverged from the single-store "
                        "linear oracle",
                        file=sys.stderr,
                    )
                    exit_code = 1

        if schedule is not None:
            slo_inputs = {
                "fault_windows": [
                    [event.at, event.clear_at] for event in schedule.serve_events()
                ],
                "error_positions": [
                    position
                    for position, response in enumerate(report.responses)
                    if not response.get("ok")
                ],
                "total_requests": report.query_count,
                "latencies_ms": list(report.latencies_ms),
                "torn_reads": torn_read_count,
                "generation_recovered": None,
            }
            thresholds = SLOThresholds()
            slo = evaluate_slo(
                thresholds=thresholds,
                fault_windows=[tuple(w) for w in slo_inputs["fault_windows"]],
                error_positions=slo_inputs["error_positions"],
                total_requests=slo_inputs["total_requests"],
                latencies_ms=slo_inputs["latencies_ms"],
                torn_reads=slo_inputs["torn_reads"],
                generation_recovered=slo_inputs["generation_recovered"],
            )
            for name, entry in slo["checks"].items():
                status = "PASS" if entry["passed"] else "FAIL"
                print(f"  SLO {status}  {name}: {entry['detail']}")
            if args.chaos_out is not None:
                artifact = {
                    "chaos": chaos_report,
                    "slo_inputs": slo_inputs,
                    "slo": slo,
                    "error_kinds": dict(report.error_kinds),
                    "degraded": report.degraded,
                }
                _write_artifact(
                    args.chaos_out,
                    json.dumps(artifact, indent=2, sort_keys=True) + "\n",
                    "chaos report",
                )
            if not slo["passed"]:
                print("error: chaos recovery SLOs failed", file=sys.stderr)
                exit_code = 1
        if args.out is not None:
            _write_artifact(
                args.out, json.dumps(report.as_dict(), indent=2) + "\n", "load report"
            )
        if args.metrics_out is not None:
            _write_artifact(
                args.metrics_out, registry.render_prometheus(), "Prometheus metrics"
            )
        if args.health_out is not None:
            _write_artifact(
                args.health_out,
                json.dumps(report.health, indent=2, sort_keys=True) + "\n",
                "health report",
            )
        if args.events_out is not None:
            events = await client.op("events")
            if not events.get("ok"):
                print(
                    f"error: daemon refused event log: {events.get('error')}",
                    file=sys.stderr,
                )
                exit_code = exit_code or 1
            else:
                lines = "".join(
                    json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
                    for event in events["payload"]["events"]
                )
                _write_artifact(args.events_out, lines, "event log")
        if args.shutdown:
            response = await client.op("shutdown")
            if response.get("ok"):
                print("daemon acknowledged shutdown")
            else:  # pragma: no cover - daemon never refuses shutdown
                print(
                    f"error: daemon refused shutdown: {response.get('error')}",
                    file=sys.stderr,
                )
                exit_code = exit_code or 1
        return exit_code
    finally:
        if chaos_installed:
            try:
                await client.chaos(clear=True)
            except (ConnectionError, OSError):  # pragma: no cover - best effort
                pass
        await client.close()


def _cmd_load(args: argparse.Namespace) -> int:
    if args.gateway is not None:
        if args.tenant is None or args.api_key is None:
            print(
                "error: --gateway requires --tenant and --api-key", file=sys.stderr
            )
            return 2
        if args.port is not None:
            print("error: --gateway and --port are mutually exclusive", file=sys.stderr)
            return 2
        if args.shutdown:
            print(
                "error: --shutdown is not available through the gateway "
                "(tenants cannot stop the shared process)",
                file=sys.stderr,
            )
            return 2
    else:
        if args.port is None:
            print("error: --port is required (or use --gateway URL)", file=sys.stderr)
            return 2
        if args.tenant is not None or args.api_key is not None:
            print(
                "error: --tenant/--api-key only apply with --gateway",
                file=sys.stderr,
            )
            return 2
    if args.mode == "open" and args.rate is None:
        print("error: --mode open requires --rate", file=sys.stderr)
        return 2
    if args.rate is not None and args.rate <= 0:
        print(f"error: --rate must be positive, got {args.rate}", file=sys.stderr)
        return 2
    if args.concurrency < 1:
        print(
            f"error: --concurrency must be at least 1, got {args.concurrency}",
            file=sys.stderr,
        )
        return 2
    if args.connections < 1:
        print(
            f"error: --connections must be at least 1, got {args.connections}",
            file=sys.stderr,
        )
        return 2
    if args.request_timeout is not None and args.request_timeout <= 0:
        print(
            f"error: --request-timeout must be positive, got {args.request_timeout}",
            file=sys.stderr,
        )
        return 2
    schedule = None
    if args.chaos is not None:
        try:
            schedule = FaultSchedule.parse(args.chaos, seed=args.seed)
        except ValueError as exc:
            print(f"error: --chaos {exc}", file=sys.stderr)
            return 2
    try:
        return asyncio.run(_load_async(args, schedule))
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# repro metrics
# ----------------------------------------------------------------------
async def _metrics_async(args: argparse.Namespace) -> int:
    client = await AsyncCoordinateClient.connect(args.host, args.port)
    try:
        response = await client.op("metrics")
    finally:
        await client.close()
    if not response.get("ok"):
        print(
            f"error: daemon refused metrics: {response.get('error')}", file=sys.stderr
        )
        return 2
    text = response["payload"]["text"]
    if args.out is not None:
        _write_artifact(args.out, text, "Prometheus metrics")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    try:
        return asyncio.run(_metrics_async(args))
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# repro health
# ----------------------------------------------------------------------
def _format_number(value: Any) -> str:
    """Render a health figure deterministically (``%.6g`` for floats)."""
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return format(value, ".6g")
    return str(value)


def _format_health_text(payload: Dict[str, Any]) -> str:
    """A deterministic plain-text rendering of a ``health`` op payload."""
    num = _format_number
    lines = []
    generation = payload.get("generation")
    if generation is not None:
        lines.append(
            f"generation: v{num(generation.get('version'))}, "
            f"{num(generation.get('nodes'))} node(s), "
            f"{num(generation.get('epochs'))} epoch(s), "
            f"mode {num(generation.get('mode'))}, "
            f"source {num(generation.get('source'))}"
        )
    error = payload.get("relative_error")
    if error is not None:
        lines.append(
            f"relative_error: median {num(error.get('median'))}  "
            f"p95 {num(error.get('p95'))}  mean {num(error.get('mean'))}  "
            f"(samples {num(error.get('count'))}, "
            f"pairs {num(error.get('sample_pairs'))})"
        )
    drift = payload.get("drift")
    if drift is not None:
        lines.append(
            f"drift: velocity {num(drift.get('velocity'))}  "
            f"mean {num(drift.get('mean_velocity'))}  "
            f"path_ms {num(drift.get('path_ms'))}  "
            f"displacement p50 {num(drift.get('displacement_median'))} "
            f"/ p95 {num(drift.get('displacement_p95'))}"
        )
    churn = payload.get("neighbor_churn")
    if churn is not None:
        lines.append(
            f"neighbor_churn: last {num(churn.get('last'))}  "
            f"mean {num(churn.get('mean'))}  "
            f"(k {num(churn.get('k'))}, sample {num(churn.get('sample'))})"
        )
    staleness = payload.get("staleness")
    if staleness is not None:
        serve_age = staleness.get("publish_to_serve_age_ms") or {}
        lines.append(
            f"staleness: generation_age_s {num(staleness.get('generation_age_s'))}  "
            f"serve_age_ms p50 {num(serve_age.get('p50'))} "
            f"/ p99 {num(serve_age.get('p99'))}  "
            f"(serves {num(staleness.get('serves_observed'))})"
        )
    if not lines:
        lines.append("(no health sections)")
    return "\n".join(lines) + "\n"


async def _health_async(args: argparse.Namespace) -> int:
    request: Dict[str, Any] = {}
    if args.sections:
        request["sections"] = [
            name.strip() for name in args.sections.split(",") if name.strip()
        ]
    client = await AsyncCoordinateClient.connect(args.host, args.port)
    try:
        response = await client.op("health", **request)
    finally:
        await client.close()
    if not response.get("ok"):
        print(
            f"error: daemon refused health: {response.get('error')}", file=sys.stderr
        )
        return 2
    payload = response["payload"]
    if args.json:
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    else:
        text = _format_health_text(payload)
    if args.out is not None:
        _write_artifact(args.out, text, "health report")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    try:
        return asyncio.run(_health_async(args))
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# repro watch
# ----------------------------------------------------------------------
async def _watch_async(args: argparse.Namespace) -> int:
    from repro.analysis.textplot import render_series

    client = await AsyncCoordinateClient.connect(args.host, args.port)
    served_series = []
    error_series = []
    last_health: Dict[str, Any] = {}
    try:
        for frame in range(args.iterations):
            stats_response = await client.op("stats")
            health_response = await client.op("health")
            if not stats_response.get("ok") or not health_response.get("ok"):
                failure = stats_response.get("error") or health_response.get("error")
                print(f"error: daemon refused watch poll: {failure}", file=sys.stderr)
                return 2
            stats = stats_response["payload"]
            last_health = health_response["payload"]
            served = sum(
                int(summary.get("served", 0))
                for summary in stats.get("kinds", {}).values()
            )
            error = last_health.get("relative_error", {}).get("p95")
            served_series.append((float(frame), float(served)))
            if error is not None:
                error_series.append((float(frame), float(error)))
            drift = last_health.get("drift", {}).get("velocity")
            churn = last_health.get("neighbor_churn", {}).get("last")
            print(
                f"[{frame}] v{stats.get('version')}  nodes {stats.get('nodes')}  "
                f"served {served}  rel_err_p95 {_format_number(error)}  "
                f"drift {_format_number(drift)}  churn {_format_number(churn)}",
                flush=True,
            )
            if frame + 1 < args.iterations:
                await asyncio.sleep(args.interval)
    finally:
        await client.close()

    print()
    print(
        render_series(
            served_series,
            width=60,
            height=8,
            title="served queries (cumulative)",
            x_label="frame",
            y_label="served",
        )
    )
    if error_series:
        print(
            render_series(
                error_series,
                width=60,
                height=8,
                title="p95 relative error",
                x_label="frame",
                y_label="rel err",
            )
        )
    print(_format_health_text(last_health), end="")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    if args.iterations < 1:
        print("error: --iterations must be at least 1", file=sys.stderr)
        return 2
    if args.interval < 0:
        print("error: --interval must be non-negative", file=sys.stderr)
        return 2
    try:
        return asyncio.run(_watch_async(args))
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# Parsers
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the coordinate-serving daemon and drive load against it.",
    )
    groups = parser.add_subparsers(dest="group", required=True)

    serve = groups.add_parser(
        "serve-daemon", help="serve coordinates over TCP on sharded live stores"
    )
    source = serve.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--snapshot", type=Path, default=None, help="snapshot JSON from 'repro serve'"
    )
    source.add_argument(
        "--scenario", default=None, help="registered scenario to run and serve"
    )
    source.add_argument(
        "--synthetic",
        type=int,
        default=None,
        metavar="N",
        help="serve a synthetic clustered universe of N nodes",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 picks an ephemeral port")
    serve.add_argument("--shards", type=int, default=2, help="shard count")
    serve.add_argument(
        "--index", choices=INDEX_KINDS, default="vptree", help="per-shard index kind"
    )
    serve.add_argument("--history", type=int, default=4, help="retained generations")
    serve.add_argument("--cache-entries", type=int, default=8192)
    serve.add_argument(
        "--window",
        type=int,
        default=32,
        help="per-connection in-flight window (backpressure threshold)",
    )
    serve.add_argument(
        "--admission-limit",
        type=int,
        default=1024,
        help="global in-flight limit; excess requests get an overloaded error",
    )
    serve.add_argument("--seed", type=int, default=7, help="seed for --synthetic")
    serve.add_argument(
        "--ready-file",
        type=Path,
        default=None,
        help="write 'host port' here once the socket is bound",
    )
    serve.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="stop automatically after this long (scripted runs)",
    )
    serve.add_argument(
        "--trace-spans",
        action="store_true",
        help="record per-stage span histograms (span_ms) on the request path",
    )
    serve.set_defaults(handler=_cmd_serve_daemon)

    load = groups.add_parser(
        "load", help="replay a deterministic workload against a running daemon"
    )
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument(
        "--port", type=int, default=None, help="daemon TCP port (TCP mode)"
    )
    load.add_argument(
        "--gateway",
        default=None,
        metavar="URL",
        help="drive an HTTP gateway instead of a TCP daemon "
        "(http://host:port; requires --tenant and --api-key)",
    )
    load.add_argument(
        "--tenant", default=None, help="tenant name for --gateway mode"
    )
    load.add_argument(
        "--api-key", default=None, help="tenant API key for --gateway mode"
    )
    load.add_argument("--count", type=int, default=1000, help="number of queries")
    load.add_argument(
        "--mix", choices=sorted(QUERY_MIXES), default="mixed", help="query mix"
    )
    load.add_argument("--seed", type=int, default=0, help="workload seed")
    load.add_argument("--k", type=int, default=3, help="k for knn queries")
    load.add_argument(
        "--radius", type=float, default=50.0, help="radius (ms) for range queries"
    )
    load.add_argument(
        "--mode", choices=LOAD_MODES, default="closed", help="closed or open loop"
    )
    load.add_argument(
        "--concurrency", type=int, default=8, help="closed-loop worker count"
    )
    load.add_argument("--connections", type=int, default=1, help="TCP connections")
    load.add_argument(
        "--rate", type=float, default=None, help="open-loop arrival rate (q/s)"
    )
    load.add_argument(
        "--verify-oracle",
        action="store_true",
        help="download the snapshot and verify byte-identical results "
        "against the single-store linear oracle",
    )
    load.add_argument(
        "--shutdown",
        action="store_true",
        help="send a shutdown request to the daemon after the run",
    )
    load.add_argument(
        "--out", type=Path, default=None, help="write the load report as JSON"
    )
    load.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the load run's telemetry registry as Prometheus text",
    )
    load.add_argument(
        "--health-out",
        type=Path,
        default=None,
        help="write the daemon's coordinate-health report section as JSON",
    )
    load.add_argument(
        "--events-out",
        type=Path,
        default=None,
        help="write the daemon's structured event log as JSONL",
    )
    load.add_argument(
        "--deterministic-timing",
        action="store_true",
        help="record hash-derived synthetic latencies instead of the wall "
        "clock, making histograms and --metrics-out byte-reproducible",
    )
    load.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="per-request timeout in seconds (timeouts count as errors)",
    )
    load.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="install a deterministic fault schedule on the daemon for the "
        "run: comma-separated kind@at+duration[:key=value...] (kinds: "
        "shard-kill, shard-slow, publish-stall, publish-drop, "
        "admission-burst); recovery SLOs are evaluated after the run",
    )
    load.add_argument(
        "--chaos-out",
        type=Path,
        default=None,
        help="write the chaos report (fault lifecycle, SLO inputs and "
        "verdicts) as JSON; re-gate later with python -m repro.chaos.slo",
    )
    load.set_defaults(handler=_cmd_load)

    metrics = groups.add_parser(
        "metrics", help="fetch a daemon's telemetry in Prometheus text format"
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=int, required=True)
    metrics.add_argument(
        "--out", type=Path, default=None, help="write to a file instead of stdout"
    )
    metrics.set_defaults(handler=_cmd_metrics)

    health = groups.add_parser(
        "health", help="fetch a daemon's coordinate-health report"
    )
    health.add_argument("--host", default="127.0.0.1")
    health.add_argument("--port", type=int, required=True)
    health.add_argument(
        "--sections",
        default=None,
        help="comma-separated health sections (default: all); e.g. "
        "'generation,relative_error,drift,neighbor_churn' excludes the "
        "timer-based staleness section for deterministic output",
    )
    health.add_argument(
        "--json", action="store_true", help="emit the payload as sorted JSON"
    )
    health.add_argument(
        "--out", type=Path, default=None, help="write to a file instead of stdout"
    )
    health.set_defaults(handler=_cmd_health)

    watch = groups.add_parser(
        "watch", help="poll a daemon and render a live text dashboard"
    )
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, required=True)
    watch.add_argument(
        "--interval", type=float, default=1.0, help="seconds between polls"
    )
    watch.add_argument(
        "--iterations", type=int, default=5, help="number of polls before exiting"
    )
    watch.set_defaults(handler=_cmd_watch)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
