"""Core algorithms from the paper: Vivaldi, filters, windows, heuristics.

The sub-modules mirror the paper's structure:

* :mod:`repro.core.coordinate` -- Euclidean coordinate algebra (with the
  optional *height* extension from Dabek et al.).
* :mod:`repro.core.vivaldi` -- the Vivaldi update rule (Figure 1 of the
  paper) plus the confidence-building margin from Section IV-B.
* :mod:`repro.core.filters` -- per-link latency filters, chiefly the Moving
  Percentile (MP) filter from Section IV.
* :mod:`repro.core.windows` -- the two-window change-detection scheme
  (Kifer/Ben-David/Gehrke) from Section V-A.
* :mod:`repro.core.energy` -- the Szekely-Rizzo energy distance used by the
  ENERGY heuristic.
* :mod:`repro.core.heuristics` -- the four application-level update
  heuristics plus APPLICATION/CENTROID (Section V-B and V-G).
* :mod:`repro.core.node` -- :class:`CoordinateNode`, the complete per-host
  coordinate subsystem (system- and application-level coordinates).
* :mod:`repro.core.config` -- configuration dataclasses and presets.
"""

from __future__ import annotations

from repro.core.config import FilterConfig, HeuristicConfig, NodeConfig
from repro.core.coordinate import Coordinate, centroid
from repro.core.energy import energy_distance
from repro.core.filters import (
    EWMAFilter,
    FilterBank,
    LatencyFilter,
    MedianFilter,
    MovingPercentileFilter,
    NoFilter,
    ThresholdFilter,
    make_filter,
)
from repro.core.heuristics import (
    ApplicationCentroidHeuristic,
    ApplicationHeuristic,
    EnergyHeuristic,
    RelativeHeuristic,
    SystemHeuristic,
    UpdateHeuristic,
    make_heuristic,
)
from repro.core.node import CoordinateNode, ObservationResult
from repro.core.vectorized import VectorizedNodeState, unsupported_reasons
from repro.core.vivaldi import VivaldiConfig, VivaldiState, vivaldi_update
from repro.core.windows import ChangeDetectionWindows

__all__ = [
    "ApplicationCentroidHeuristic",
    "ApplicationHeuristic",
    "ChangeDetectionWindows",
    "Coordinate",
    "CoordinateNode",
    "EWMAFilter",
    "EnergyHeuristic",
    "FilterBank",
    "FilterConfig",
    "HeuristicConfig",
    "LatencyFilter",
    "MedianFilter",
    "MovingPercentileFilter",
    "NoFilter",
    "NodeConfig",
    "ObservationResult",
    "RelativeHeuristic",
    "SystemHeuristic",
    "ThresholdFilter",
    "UpdateHeuristic",
    "VectorizedNodeState",
    "VivaldiConfig",
    "VivaldiState",
    "centroid",
    "energy_distance",
    "make_filter",
    "make_heuristic",
    "unsupported_reasons",
    "vivaldi_update",
]
