"""Energy distance between multi-dimensional samples (Szekely & Rizzo).

The ENERGY heuristic (Section V-B) decides whether the start window ``W_s``
and the current window ``W_c`` of system-level coordinates have diverged by
computing the *energy distance*:

.. math::

    e(A, B) = \\frac{n_1 n_2}{n_1 + n_2}
              \\Bigl( \\frac{2}{n_1 n_2} \\sum_i \\sum_j \\lVert a_i - b_j \\rVert
                    - \\frac{1}{n_1^2} \\sum_i \\sum_j \\lVert a_i - a_j \\rVert
                    - \\frac{1}{n_2^2} \\sum_i \\sum_j \\lVert b_i - b_j \\rVert \\Bigr)

The statistic is non-negative, zero when the two samples share a
distribution (in expectation), and grows with the separation between the
two clouds of points, which makes it a natural multi-dimensional
change-detection test.

Two implementations are provided: a plain nested-loop version operating on
:class:`~repro.core.coordinate.Coordinate` sequences (used for the small
windows in the heuristics) and a vectorised NumPy version for the larger
arrays the analysis code manipulates.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.coordinate import Coordinate

__all__ = [
    "energy_distance",
    "energy_distance_arrays",
    "energy_distance_coordinates_naive",
    "energy_test_statistic",
    "pairwise_mean_distance",
]


def _mean_cross_distance(a: Sequence[Coordinate], b: Sequence[Coordinate]) -> float:
    total = 0.0
    for left in a:
        for right in b:
            total += left.euclidean_distance(right)
    return total / (len(a) * len(b))


def pairwise_mean_distance(points: Sequence[Coordinate]) -> float:
    """Mean pairwise Euclidean distance within one sample (self-pairs included).

    The energy-distance definition divides the within-sample double sums by
    ``n^2``, i.e. it includes the zero-distance self pairs, so this helper
    does the same.
    """
    if not points:
        raise ValueError("cannot compute pairwise distances of an empty sample")
    n = len(points)
    total = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            total += points[i].euclidean_distance(points[j])
    # Each unordered pair appears twice in the n^2 double sum; self-pairs
    # contribute zero.
    return (2.0 * total) / (n * n)


def energy_distance(sample_a: Sequence[Coordinate], sample_b: Sequence[Coordinate]) -> float:
    """Energy distance ``e(A, B)`` between two coordinate samples.

    Raises :class:`ValueError` when either sample is empty.  Mixed
    dimensionalities are rejected.  The computation is delegated to the
    vectorised implementation because the heuristics evaluate this on every
    observation (the windows are small but the call volume is large);
    :func:`energy_distance_coordinates_naive` retains the straightforward
    nested-loop version used by the property tests as an oracle.
    """
    if not sample_a or not sample_b:
        raise ValueError("energy distance requires two non-empty samples")
    dims = sample_a[0].dimensions
    for point in (*sample_a, *sample_b):
        if point.dimensions != dims:
            raise ValueError("all coordinates must share the same dimensionality")
    a = np.asarray([point.components for point in sample_a], dtype=float)
    b = np.asarray([point.components for point in sample_b], dtype=float)
    return energy_distance_arrays(a, b)


def energy_distance_coordinates_naive(
    sample_a: Sequence[Coordinate], sample_b: Sequence[Coordinate]
) -> float:
    """Nested-loop reference implementation of :func:`energy_distance`."""
    if not sample_a or not sample_b:
        raise ValueError("energy distance requires two non-empty samples")
    n1 = len(sample_a)
    n2 = len(sample_b)
    cross = _mean_cross_distance(sample_a, sample_b)
    within_a = pairwise_mean_distance(sample_a)
    within_b = pairwise_mean_distance(sample_b)
    scale = (n1 * n2) / (n1 + n2)
    value = scale * (2.0 * cross - within_a - within_b)
    # Numerical noise can push the statistic a hair below zero for
    # identically distributed samples; clamp so callers can rely on >= 0.
    return max(0.0, value)


def _as_matrix(sample: np.ndarray | Sequence[Sequence[float]]) -> np.ndarray:
    matrix = np.asarray(sample, dtype=float)
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ValueError("samples must be non-empty 2-D arrays of shape (n, d)")
    return matrix


def _mean_pairwise_numpy(a: np.ndarray, b: np.ndarray) -> float:
    # Pairwise Euclidean distances via broadcasting; fine for the window
    # sizes used here (tens to a few thousand points).
    diff = a[:, None, :] - b[None, :, :]
    return float(np.sqrt((diff * diff).sum(axis=2)).mean())


def energy_distance_arrays(
    sample_a: np.ndarray | Sequence[Sequence[float]],
    sample_b: np.ndarray | Sequence[Sequence[float]],
) -> float:
    """Vectorised energy distance over ``(n, d)`` arrays of points."""
    a = _as_matrix(sample_a)
    b = _as_matrix(sample_b)
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimensionality mismatch: {a.shape[1]} vs {b.shape[1]}"
        )
    n1, n2 = a.shape[0], b.shape[0]
    cross = _mean_pairwise_numpy(a, b)
    within_a = _mean_pairwise_numpy(a, a)
    within_b = _mean_pairwise_numpy(b, b)
    scale = (n1 * n2) / (n1 + n2)
    return max(0.0, scale * (2.0 * cross - within_a - within_b))


def energy_test_statistic(
    sample_a: Sequence[Coordinate],
    sample_b: Sequence[Coordinate],
    *,
    normalise: bool = False,
) -> float:
    """Energy statistic, optionally normalised by the within-sample spread.

    The raw statistic grows with the absolute scale of the coordinates, so
    a threshold tuned for one deployment may not transfer to another.  With
    ``normalise=True`` the statistic is divided by the average within-sample
    mean pairwise distance, yielding a scale-free variant (used by the
    ablation benchmarks; the paper uses the raw statistic with ``tau = 8``).
    """
    value = energy_distance(sample_a, sample_b)
    if not normalise:
        return value
    spread = 0.5 * (pairwise_mean_distance(sample_a) + pairwise_mean_distance(sample_b))
    if spread <= 0.0 or math.isclose(spread, 0.0):
        return 0.0 if value == 0.0 else math.inf
    return value / spread
