"""Application-level coordinate update heuristics (Section V of the paper).

The coordinate subsystem maintains two views of a node's position:

* the **system-level coordinate** ``c_s`` -- updated by Vivaldi on every
  observation and always the freshest estimate;
* the **application-level coordinate** ``c_a`` -- only updated when a
  heuristic decides the system coordinate has undergone a *significant*
  change, so that applications (which may react to updates with expensive
  work such as process migration) are not churned by noise.

Four heuristics from the paper, plus the APPLICATION/CENTROID hybrid used in
Section V-G to show that the *when* of window-based detection matters as
much as the *what* (the centroid value):

========================  ===========================================================
SYSTEM                    update when ``||c_s(t) - c_s(t-1)|| > tau``
APPLICATION               update when ``||c_a - c_s|| > tau``
RELATIVE                  two-window: update when the centroid displacement exceeds
                          ``eps_r`` times the distance to the nearest known neighbor
ENERGY                    two-window: update when the Szekely-Rizzo energy distance
                          between the windows exceeds ``tau``
APPLICATION/CENTROID      APPLICATION's trigger, but sets ``c_a`` to the centroid of
                          a window of recent system coordinates
========================  ===========================================================

Each heuristic exposes ``observe(system_coordinate, nearest_neighbor=None)``
returning the new application coordinate when an update fires and ``None``
otherwise, plus the running ``application_coordinate`` property.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Protocol, runtime_checkable

from repro.core.coordinate import Coordinate, centroid
from repro.core.energy import energy_distance
from repro.core.windows import ChangeDetectionWindows

__all__ = [
    "UpdateHeuristic",
    "SystemHeuristic",
    "ApplicationHeuristic",
    "RelativeHeuristic",
    "EnergyHeuristic",
    "ApplicationCentroidHeuristic",
    "AlwaysUpdateHeuristic",
    "make_heuristic",
]


@runtime_checkable
class UpdateHeuristic(Protocol):
    """Decides when (and to what) the application coordinate is updated."""

    @property
    def application_coordinate(self) -> Optional[Coordinate]:
        """The current application-level coordinate (``None`` before first update)."""
        ...

    @property
    def update_count(self) -> int:
        """How many times the application coordinate has been changed."""
        ...

    def observe(
        self,
        system_coordinate: Coordinate,
        nearest_neighbor: Optional[Coordinate] = None,
    ) -> Optional[Coordinate]:
        """Consume one system-coordinate update.

        Returns the new application coordinate when the heuristic fires, or
        ``None`` when the application's view is unchanged.
        """
        ...

    def reset(self) -> None:
        """Discard all internal state."""
        ...


class _BaseHeuristic:
    """Shared bookkeeping for the concrete heuristics."""

    __slots__ = ("_application", "_updates", "_observations")

    def __init__(self) -> None:
        self._application: Optional[Coordinate] = None
        self._updates = 0
        self._observations = 0

    @property
    def application_coordinate(self) -> Optional[Coordinate]:
        return self._application

    @property
    def update_count(self) -> int:
        return self._updates

    @property
    def observation_count(self) -> int:
        """Total system-coordinate updates seen."""
        return self._observations

    def _set_application(self, value: Coordinate) -> Coordinate:
        self._application = value
        self._updates += 1
        return value

    def reset(self) -> None:
        self._application = None
        self._updates = 0
        self._observations = 0


class AlwaysUpdateHeuristic(_BaseHeuristic):
    """Degenerate heuristic: ``c_a`` tracks ``c_s`` exactly.

    This is what an application using raw (filtered) Vivaldi sees; it is the
    baseline the paper calls the "Raw MP Filter" in Figures 11 and 13.
    """

    __slots__ = ()

    def observe(
        self,
        system_coordinate: Coordinate,
        nearest_neighbor: Optional[Coordinate] = None,
    ) -> Optional[Coordinate]:
        self._observations += 1
        return self._set_application(system_coordinate)


class SystemHeuristic(_BaseHeuristic):
    """SYSTEM: update when consecutive system coordinates move more than ``tau``.

    Simple, but pathological when many consecutive moves stay just under the
    threshold: the application coordinate silently drifts arbitrarily far
    from the system one.
    """

    __slots__ = ("threshold_ms", "_previous_system")

    def __init__(self, threshold_ms: float = 16.0) -> None:
        super().__init__()
        if threshold_ms < 0.0:
            raise ValueError(f"threshold_ms must be non-negative, got {threshold_ms}")
        self.threshold_ms = threshold_ms
        self._previous_system: Optional[Coordinate] = None

    def observe(
        self,
        system_coordinate: Coordinate,
        nearest_neighbor: Optional[Coordinate] = None,
    ) -> Optional[Coordinate]:
        self._observations += 1
        previous = self._previous_system
        self._previous_system = system_coordinate
        if self._application is None or previous is None:
            return self._set_application(system_coordinate)
        if previous.euclidean_distance(system_coordinate) > self.threshold_ms:
            return self._set_application(system_coordinate)
        return None

    def reset(self) -> None:
        super().reset()
        self._previous_system = None


class ApplicationHeuristic(_BaseHeuristic):
    """APPLICATION: update when ``c_a`` has strayed more than ``tau`` from ``c_s``.

    Expresses "notify on cumulative drift"; oscillations beneath the
    threshold never surface to the application.
    """

    __slots__ = ("threshold_ms",)

    def __init__(self, threshold_ms: float = 16.0) -> None:
        super().__init__()
        if threshold_ms < 0.0:
            raise ValueError(f"threshold_ms must be non-negative, got {threshold_ms}")
        self.threshold_ms = threshold_ms

    def observe(
        self,
        system_coordinate: Coordinate,
        nearest_neighbor: Optional[Coordinate] = None,
    ) -> Optional[Coordinate]:
        self._observations += 1
        if self._application is None:
            return self._set_application(system_coordinate)
        if self._application.euclidean_distance(system_coordinate) > self.threshold_ms:
            return self._set_application(system_coordinate)
        return None


class ApplicationCentroidHeuristic(_BaseHeuristic):
    """APPLICATION/CENTROID (Section V-G).

    Uses APPLICATION's distance-to-system trigger, but when it fires the
    application coordinate is set to the centroid of a window of recent
    system coordinates.  The paper shows this is more stable than plain
    APPLICATION yet still fragile to the threshold choice, demonstrating
    that the window-based heuristics' advantage lies in *when* they fire,
    not merely in using a centroid.
    """

    __slots__ = ("threshold_ms", "window_size", "_recent")

    def __init__(self, threshold_ms: float = 16.0, window_size: int = 32) -> None:
        super().__init__()
        if threshold_ms < 0.0:
            raise ValueError(f"threshold_ms must be non-negative, got {threshold_ms}")
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        self.threshold_ms = threshold_ms
        self.window_size = window_size
        self._recent: Deque[Coordinate] = deque(maxlen=window_size)

    def observe(
        self,
        system_coordinate: Coordinate,
        nearest_neighbor: Optional[Coordinate] = None,
    ) -> Optional[Coordinate]:
        self._observations += 1
        self._recent.append(system_coordinate)
        if self._application is None:
            return self._set_application(centroid(list(self._recent)))
        if self._application.euclidean_distance(system_coordinate) > self.threshold_ms:
            return self._set_application(centroid(list(self._recent)))
        return None

    def reset(self) -> None:
        super().reset()
        self._recent.clear()


class RelativeHeuristic(_BaseHeuristic):
    """RELATIVE: window-based detection scaled by the local neighborhood.

    Maintains the two change-detection windows of system coordinates and
    fires when the displacement between the window centroids exceeds
    ``eps_r`` times the distance from the start centroid to the nearest
    known neighbor.  Updates are therefore *relative to the node's locale*:
    a 5 ms wobble matters for a node whose nearest neighbor is 10 ms away
    but not for one whose nearest neighbor is 200 ms away.
    """

    __slots__ = ("relative_threshold", "window_size", "_windows", "_last_neighbor")

    def __init__(self, relative_threshold: float = 0.3, window_size: int = 32) -> None:
        super().__init__()
        if relative_threshold <= 0.0:
            raise ValueError(
                f"relative_threshold must be positive, got {relative_threshold}"
            )
        self.relative_threshold = relative_threshold
        self.window_size = window_size
        self._windows: ChangeDetectionWindows[Coordinate] = ChangeDetectionWindows(window_size)
        self._last_neighbor: Optional[Coordinate] = None

    def observe(
        self,
        system_coordinate: Coordinate,
        nearest_neighbor: Optional[Coordinate] = None,
    ) -> Optional[Coordinate]:
        self._observations += 1
        if nearest_neighbor is not None:
            self._last_neighbor = nearest_neighbor
        self._windows.add(system_coordinate)

        if self._application is None:
            return self._set_application(system_coordinate)
        if not self._windows.ready:
            return None

        start = self._windows.start_window
        current = self._windows.current_window
        start_centroid = centroid(start)
        current_centroid = centroid(current)
        displacement = start_centroid.euclidean_distance(current_centroid)

        neighbor = self._last_neighbor
        if neighbor is None:
            # Without a known neighbor the locale scale is undefined; fall
            # back to an absolute comparison against the displacement itself
            # (i.e. never fire), which matches a node that has not yet
            # learned any peer coordinates.
            return None
        locale_scale = start_centroid.euclidean_distance(neighbor)
        if locale_scale <= 0.0:
            return None
        if displacement / locale_scale > self.relative_threshold:
            self._windows.declare_change_point()
            return self._set_application(current_centroid)
        return None

    def reset(self) -> None:
        super().reset()
        self._windows.reset()
        self._last_neighbor = None


class EnergyHeuristic(_BaseHeuristic):
    """ENERGY: window-based detection with the Szekely-Rizzo energy distance.

    Fires when ``e(W_s, W_c) > tau``; on firing, the application coordinate
    becomes the centroid of the current window and both windows reset
    (a change point in the Kifer et al. sense).  The paper deploys this
    heuristic with ``window_size = 32`` and ``tau = 8`` on PlanetLab.
    """

    __slots__ = ("threshold", "window_size", "_windows")

    def __init__(self, threshold: float = 8.0, window_size: int = 32) -> None:
        super().__init__()
        if threshold < 0.0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        if window_size < 2:
            raise ValueError(f"window_size must be >= 2, got {window_size}")
        self.threshold = threshold
        self.window_size = window_size
        self._windows: ChangeDetectionWindows[Coordinate] = ChangeDetectionWindows(window_size)

    def observe(
        self,
        system_coordinate: Coordinate,
        nearest_neighbor: Optional[Coordinate] = None,
    ) -> Optional[Coordinate]:
        self._observations += 1
        self._windows.add(system_coordinate)
        if self._application is None:
            return self._set_application(system_coordinate)
        if not self._windows.ready:
            return None
        start = self._windows.start_window
        current = self._windows.current_window
        statistic = energy_distance(start, current)
        if statistic > self.threshold:
            self._windows.declare_change_point()
            return self._set_application(centroid(current))
        return None

    def reset(self) -> None:
        super().reset()
        self._windows.reset()


#: Registry for configuration-driven construction.
_HEURISTIC_KINDS = {
    "always": AlwaysUpdateHeuristic,
    "raw": AlwaysUpdateHeuristic,
    "system": SystemHeuristic,
    "application": ApplicationHeuristic,
    "application_centroid": ApplicationCentroidHeuristic,
    "relative": RelativeHeuristic,
    "energy": EnergyHeuristic,
}


def make_heuristic(kind: str, **kwargs: object) -> UpdateHeuristic:
    """Instantiate an update heuristic by name.

    ``kind`` is one of ``always``/``raw``, ``system``, ``application``,
    ``application_centroid``, ``relative``, ``energy``.
    """
    try:
        factory = _HEURISTIC_KINDS[kind.lower()]
    except KeyError:
        known = ", ".join(sorted(set(_HEURISTIC_KINDS)))
        raise ValueError(
            f"unknown heuristic kind {kind!r}; expected one of: {known}"
        ) from None
    return factory(**kwargs)  # type: ignore[arg-type]
